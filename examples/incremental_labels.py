"""Incremental labeling with warm-started chains.

A realistic annotation workflow: labels arrive in batches on a fixed
network, and after each batch the classifier must be refreshed.  Warm
starting each per-class chain from the previous stationary pair reaches
the same fixed point in a fraction of the iterations.

Run:  python examples/incremental_labels.py
"""

import numpy as np

from repro import TMark, make_dblp
from repro.ml.metrics import accuracy
from repro.ml.splits import stratified_fraction_split


def main() -> None:
    hin = make_dblp(seed=0)
    y = hin.y
    rng = np.random.default_rng(7)

    # Labels arrive in five batches of ~8% of the nodes each.
    batches = [stratified_fraction_split(y, 0.08, rng=rng) for _ in range(5)]

    warm_model = TMark(alpha=0.8, gamma=0.6, label_threshold=0.8, tol=1e-10)
    known = np.zeros(hin.n_nodes, dtype=bool)
    print(f"{'batch':<7}{'labeled':>9}{'accuracy':>10}{'warm iters':>12}{'cold iters':>12}")
    for batch_no, batch in enumerate(batches, start=1):
        known |= batch
        train = hin.masked(known)

        warm_model.fit(train, warm_start=batch_no > 1)
        warm_iters = sum(h.n_iterations for h in warm_model.result_.histories)

        cold_model = TMark(alpha=0.8, gamma=0.6, label_threshold=0.8, tol=1e-10)
        cold_model.fit(train)
        cold_iters = sum(h.n_iterations for h in cold_model.result_.histories)

        acc = accuracy(y[~known], warm_model.predict()[~known])
        agree = float(np.mean(warm_model.predict() == cold_model.predict()))
        print(
            f"{batch_no:<7}{int(known.sum()):>9}{acc:>10.3f}"
            f"{warm_iters:>12}{cold_iters:>12}   (agreement {agree:.3f})"
        )
    print(
        "\nWarm starts always agree with a from-scratch fit.  At the "
        "paper's alpha=0.8 the restart term makes every chain converge in "
        "~10 iterations per class regardless of the starting point, so the "
        "saving is small; with weaker restarts (alpha <= 0.3, slower "
        "geometric contraction) warm starts cut 10-20% of the iterations "
        "(see benchmarks/bench_ablation_warm_start.py)."
    )


if __name__ == "__main__":
    main()
