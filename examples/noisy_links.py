"""Why relation weighting matters: classification under junk links.

The paper motivates T-Mark with HINs that "contain many useless links".
This script makes that concrete: it injects a purely random extra link
type into the DBLP-like network at growing volume and compares T-Mark
against the equal-weight wvRN+RL diffusion.  Note the mechanism the
numbers reveal: T-Mark's z actually *rises* with the junk volume (z
tracks usage), yet accuracy holds — random links spread each class
chain's mass uniformly, a per-chain constant that cancels in the
ranking, whereas wvRN's neighbour vote is corrupted directly.

Run:  python examples/noisy_links.py
"""

import numpy as np

from repro import TMark, WvRNRL, make_dblp
from repro.experiments.robustness import inject_noise_relation
from repro.ml.metrics import accuracy
from repro.ml.splits import stratified_fraction_split


def main() -> None:
    clean = make_dblp(seed=0)
    labels = clean.y
    base_links = clean.tensor.nnz // 2
    mask = stratified_fraction_split(labels, 0.2, rng=np.random.default_rng(1))

    print(f"{'noise x':<10}{'T-Mark':>10}{'wvRN+RL':>10}{'z(noise)':>12}")
    for level in (0.0, 1.0, 2.0, 4.0):
        hin = (
            clean
            if level == 0
            else inject_noise_relation(clean, int(level * base_links), seed=7)
        )
        train = hin.masked(mask)

        model = TMark(alpha=0.8, gamma=0.6, label_threshold=0.8).fit(train)
        tmark_acc = accuracy(labels[~mask], model.predict()[~mask])

        wvrn_scores = WvRNRL().fit_predict(train)
        wvrn_acc = accuracy(labels[~mask], np.argmax(wvrn_scores, 1)[~mask])

        if level > 0:
            # The stationary importance of the junk relation vs the
            # uniform share 1/m (it grows with usage — see docstring).
            z_noise = float(
                model.result_.relation_scores[hin.relation_index("noise")].mean()
            )
            uniform = 1.0 / hin.n_relations
            z_text = f"{z_noise:.3f}/{uniform:.3f}"
        else:
            z_text = "-"
        print(f"{level:<10.1f}{tmark_acc:>10.3f}{wvrn_acc:>10.3f}{z_text:>12}")

    print(
        "\nThe junk relation dominates the link count, yet T-Mark holds its "
        "accuracy while the equal-weight diffusion collapses.  Random links "
        "only add a per-chain uniform constant to T-Mark's stationary x "
        "(rank-neutral); wvRN's neighbour averaging has no such shield."
    )


if __name__ == "__main__":
    main()
