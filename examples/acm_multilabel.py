"""Multi-label index-term prediction on the ACM-like HIN (section 6.4).

Publications carry several index terms and are linked through six
relation types.  T-Mark runs one chain per label; multi-label decisions
use prior matching.  Also prints the Fig. 5 result: the per-class
relative importance of the six link types, with "concept" and
"conference" on top.

Run:  python examples/acm_multilabel.py
"""

import numpy as np

from repro import TMark, make_acm
from repro.ml.metrics import multilabel_macro_f1
from repro.ml.splits import multilabel_fraction_split


def main() -> None:
    hin = make_acm(seed=0)
    print(f"network: {hin}")
    mean_labels = hin.label_matrix.sum(axis=1).mean()
    print(f"mean index terms per paper: {mean_labels:.2f}\n")

    print(f"{'fraction':<10}{'Macro-F1':>10}")
    model = None
    for fraction in (0.1, 0.3, 0.5, 0.7, 0.9):
        mask = multilabel_fraction_split(
            hin.label_matrix, fraction, rng=np.random.default_rng(1)
        )
        model = TMark(alpha=0.9, gamma=0.4, label_threshold=0.95).fit(
            hin.masked(mask)
        )
        predictions = model.predict_multilabel()
        score = multilabel_macro_f1(hin.label_matrix[~mask], predictions[~mask])
        print(f"{fraction:<10.1f}{score:>10.3f}")

    # Fig. 5: relative importance of the six ACM link types.
    print("\nmean link-type importance across classes (Fig. 5):")
    importance = model.result_.relation_scores.mean(axis=1)
    order = np.argsort(-importance)
    for k in order:
        print(f"  {hin.relation_names[k]:<12s} {importance[k]:.4f}")
    print(
        "\n'concept' and 'conference' links matter most — nodes sharing "
        "them usually share index terms, as the paper observes."
    )


if __name__ == "__main__":
    main()
