"""Movie-genre prediction on the sparse-director HIN (paper section 6.2).

Demonstrates the regime where per-link-type information is extremely
sparse: hundreds of director link types each covering a handful of
movies.  Compares T-Mark against the EMR ensemble (the paper's winner on
this dataset) and prints the per-genre director rankings of Table 5.

Run:  python examples/movie_genres.py
"""

import numpy as np

from repro import TMark, make_movies
from repro.baselines import EMR
from repro.hin.stats import hin_summary
from repro.ml.metrics import accuracy
from repro.ml.splits import stratified_fraction_split


def main() -> None:
    hin = make_movies(seed=0)
    summary = hin_summary(hin)
    mean_links = np.mean([rel.n_links for rel in summary.relations])
    print(f"network: {hin}")
    print(
        f"{hin.n_relations} director link types, mean {mean_links:.1f} link "
        "entries each — per-relation information is scarce\n"
    )

    labels = hin.y
    train_mask = stratified_fraction_split(labels, 0.3, rng=np.random.default_rng(0))
    train_hin = hin.masked(train_mask)
    test_mask = ~train_mask

    tmark = TMark(alpha=0.9, gamma=0.4, label_threshold=0.95).fit(train_hin)
    tmark_acc = accuracy(labels[test_mask], tmark.predict()[test_mask])
    print(f"T-Mark accuracy (30% labels): {tmark_acc:.3f}")

    emr_scores = EMR(n_iterations=2).fit_predict(train_hin)
    emr_acc = accuracy(
        labels[test_mask], np.argmax(emr_scores, axis=1)[test_mask]
    )
    print(f"EMR accuracy    (30% labels): {emr_acc:.3f}")
    print(
        "(the paper's Table 4: on this sparse-link dataset the ensemble "
        "is competitive with — or better than — the tensor walk)\n"
    )

    director_genres = hin.metadata["director_genres"]
    for genre in hin.label_names:
        top = tmark.result_.top_relations(genre, count=5)
        marks = [
            f"{name}{'*' if director_genres[name] == genre else ''}"
            for name in top
        ]
        print(f"top directors for {genre}: {', '.join(marks)}")
    print("(* = the generator's ground-truth preferred genre matches)")


if __name__ == "__main__":
    main()
