"""Quickstart: classify authors in a DBLP-like HIN with T-Mark.

Builds the calibrated DBLP-like network (4 research areas, 20 conference
link types), hides 90% of the labels, runs T-Mark, and prints held-out
accuracy plus the most important conference link types per area.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import TMark, make_dblp
from repro.ml.metrics import accuracy
from repro.ml.splits import stratified_fraction_split


def main() -> None:
    # 1. A heterogeneous information network: authors linked through 20
    #    conference link types, bag-of-words title features, 4 areas.
    hin = make_dblp(seed=0)
    print(f"network: {hin}")

    # 2. Keep labels on a stratified 10% of nodes (the training set).
    labels = hin.y
    train_mask = stratified_fraction_split(
        labels, 0.1, rng=np.random.default_rng(42)
    )
    train_hin = hin.masked(train_mask)
    print(f"labeled nodes: {train_mask.sum()} / {hin.n_nodes}")

    # 3. Fit T-Mark (paper's DBLP parameters: alpha=0.8, gamma=0.6).
    model = TMark(alpha=0.8, gamma=0.6, label_threshold=0.8)
    model.fit(train_hin)

    # 4. Transductive predictions for every node; score the held-out 90%.
    predictions = model.predict()
    test_mask = ~train_mask
    acc = accuracy(labels[test_mask], predictions[test_mask])
    print(f"held-out accuracy with 10% labels: {acc:.3f}")

    # 5. The second output of the paper: per-class link-type importance.
    for area in hin.label_names:
        top = model.result_.top_relations(area, count=5)
        print(f"top conferences for {area}: {', '.join(top)}")


if __name__ == "__main__":
    main()
