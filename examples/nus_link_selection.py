"""Link selection on the NUS-like image HIN (paper section 6.3).

Builds two HINs over the *same* images, labels and features — one linked
through relevance-selected tags (Tagset1), one through frequent-but-
uninformative tags (Tagset2) — and shows that T-Mark with relevant links
reaches high accuracy from 10% labels while frequent links cap far lower
regardless of supervision (the paper's Tables 8-10).

Run:  python examples/nus_link_selection.py
"""

import numpy as np

from repro import TMark, make_nus
from repro.hin.stats import relation_homophily
from repro.ml.metrics import accuracy
from repro.ml.splits import stratified_fraction_split

SEED = 0


def evaluate(tagset: str, fraction: float) -> float:
    hin = make_nus(tagset=tagset, seed=SEED)
    labels = hin.y
    mask = stratified_fraction_split(
        labels, fraction, rng=np.random.default_rng(1)
    )
    model = TMark(alpha=0.9, gamma=0.4, label_threshold=0.95).fit(hin.masked(mask))
    return accuracy(labels[~mask], model.predict()[~mask])


def main() -> None:
    for tagset in ("tagset1", "tagset2"):
        hin = make_nus(tagset=tagset, seed=SEED)
        homophily = np.nanmean(
            [relation_homophily(hin, name) for name in hin.relation_names]
        )
        print(
            f"{tagset}: {hin.n_relations} tag link types, "
            f"{hin.tensor.nnz} links, mean homophily {homophily:.2f}"
        )
    print()

    print(f"{'fraction':<10}{'Tagset1':>10}{'Tagset2':>10}")
    for fraction in (0.1, 0.3, 0.5, 0.7, 0.9):
        acc1 = evaluate("tagset1", fraction)
        acc2 = evaluate("tagset2", fraction)
        print(f"{fraction:<10.1f}{acc1:>10.3f}{acc2:>10.3f}")
    print(
        "\nRelevant links dominate: more supervision cannot rescue a HIN "
        "built from uninformative link types (paper Table 8)."
    )

    # Per-class tag rankings (Tables 9/10): with Tagset1 the two classes
    # pull apart clearly.
    hin = make_nus(tagset="tagset1", seed=SEED)
    mask = stratified_fraction_split(hin.y, 0.3, rng=np.random.default_rng(1))
    model = TMark(alpha=0.9, gamma=0.4, label_threshold=0.95).fit(hin.masked(mask))
    print()
    for cls in hin.label_names:
        top = model.result_.top_relations(cls, count=12)
        print(f"top tags for {cls}: {', '.join(top)}")


if __name__ == "__main__":
    main()
