"""Building your own HIN with HINBuilder and running the full toolkit.

Shows the end-to-end API a downstream user needs: incremental network
construction, persistence, summary statistics, meta-path relations,
MultiRank co-ranking, and T-Mark classification.

Run:  python examples/custom_hin.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import HINBuilder, MultiRank, TMark, load_hin, save_hin
from repro.hin import hin_summary, with_metapath_relations


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. Build a small citation/venue network by hand --------------
    builder = HINBuilder(label_names=["systems", "theory"])
    for idx in range(40):
        field = "systems" if idx < 20 else "theory"
        # Two-topic bag-of-words features with noise.
        topic = np.zeros(6)
        topic[:3] = rng.poisson(2.0, size=3) if field == "systems" else 0
        topic[3:] = rng.poisson(2.0, size=3) if field == "theory" else 0
        topic += rng.poisson(0.3, size=6)
        builder.add_node(f"paper_{idx}", features=topic, labels=[field])

    # Same-venue cliques (mostly within-field) and cross-field citations.
    for start, field in ((0, "systems"), (20, "theory")):
        members = [f"paper_{start + i}" for i in range(20)]
        for _ in range(30):
            u, v = rng.choice(members, size=2, replace=False)
            builder.add_link(u, v, f"venue-{field}")
    for _ in range(25):
        u, v = rng.choice(40, size=2, replace=False)
        builder.add_link(f"paper_{u}", f"paper_{v}", "citation", directed=True)

    hin = builder.build(metadata={"source": "examples/custom_hin.py"})
    print(hin_summary(hin), "\n")

    # --- 2. Persist and reload -----------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = save_hin(hin, Path(tmp) / "custom.npz")
        hin = load_hin(path)
        print(f"round-tripped through {path.name}\n")

    # --- 3. Derived meta-path relations ---------------------------------
    extended = with_metapath_relations(hin, {"co-citation": ["citation", "citation"]})
    print(f"relations after adding a meta-path: {extended.relation_names}\n")

    # --- 4. Unsupervised MultiRank co-ranking ----------------------------
    ranking = MultiRank().rank(extended)
    top_nodes = [extended.node_names[i] for i in ranking.top_objects(3)]
    top_relations = [extended.relation_names[k] for k in ranking.top_relations(2)]
    print(f"MultiRank: central papers {top_nodes}, dominant links {top_relations}\n")

    # --- 5. Semi-supervised T-Mark classification -------------------------
    mask = np.zeros(extended.n_nodes, dtype=bool)
    mask[::4] = True  # keep 25% of labels
    model = TMark(alpha=0.8, gamma=0.5).fit(extended.masked(mask))
    predictions = model.predict()
    acc = float(np.mean(predictions[~mask] == extended.y[~mask]))
    print(f"T-Mark accuracy on the held-out 75%: {acc:.3f}")
    for field in extended.label_names:
        print(
            f"link ranking for {field}: "
            + ", ".join(model.result_.top_relations(field, count=4))
        )


if __name__ == "__main__":
    main()
