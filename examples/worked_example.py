"""The paper's section 3.2 / 4.3 worked example, step by step.

Reconstructs the four-publication bibliography HIN, prints the tensor
matricizations A_(1) / A_(3), the transition tensors O and R, the
feature transition matrix W, and the stationary distributions — the
exact computational walkthrough of the paper.

Run:  python examples/worked_example.py
"""

import numpy as np

from repro import TMark, make_worked_example
from repro.core.features import cosine_similarity_matrix, feature_transition_matrix
from repro.tensor.transition import NodeTransitionTensor, RelationTransitionTensor

np.set_printoptions(precision=2, suppress=True, linewidth=120)


def main() -> None:
    hin = make_worked_example()
    print("The bibliography HIN of section 3.2:")
    print(f"  nodes: {', '.join(hin.node_names)}")
    print(f"  relations: {', '.join(hin.relation_names)}")
    print(f"  labeled: p1 = DM, p2 = CV; to predict: p3, p4\n")

    # --- Section 3.2: tensor representation and matricizations --------
    tensor = hin.tensor
    print(f"tensor A has size {tensor.shape} with {tensor.nnz} nonzeros")
    print("\n1-mode matricization A_(1) (4 x 12):")
    print(tensor.unfold(1).toarray())
    print("\n3-mode matricization A_(3) (3 x 16):")
    print(tensor.unfold(3).toarray())

    # --- Transition tensors O (Eq. 1) and R (Eq. 2) --------------------
    o_tensor = NodeTransitionTensor(tensor)
    r_tensor = RelationTransitionTensor(tensor)
    print("\ntensor O (columns of each relation slice sum to 1):")
    dense_o = o_tensor.to_dense()
    for k, name in enumerate(hin.relation_names):
        print(f"  slice {name}:")
        print(dense_o[:, :, k])
    print("\ntensor R fibre check: every (i, j) fibre sums to 1:",
          bool(np.allclose(r_tensor.to_dense().sum(axis=2), 1.0)))

    # --- Section 4.2/4.3: the feature transition matrix W -------------
    print("\ncosine similarity matrix C:")
    print(cosine_similarity_matrix(hin.features))
    print("\ncolumn-normalised W:")
    print(feature_transition_matrix(hin.features))

    # --- Section 4.3: run Algorithm 1 ---------------------------------
    model = TMark(alpha=0.8, gamma=0.5).fit(hin)
    result = model.result_
    print("\nstationary node distributions [x^DM, x^CV]:")
    print(result.node_scores)
    print("\nstationary relation distributions [z^DM, z^CV]:")
    print(result.relation_scores)

    predictions = model.predict()
    for node in ("p3", "p4"):
        label = hin.label_names[predictions[hin.node_index(node)]]
        truth = hin.metadata["ground_truth"][node]
        status = "correct" if label == truth else "WRONG"
        print(f"prediction for {node}: {label} (ground truth {truth}) -> {status}")

    print("\nDM relation ranking (co-author/citation should beat "
          "same-conference, as in the paper):")
    for name, score in result.ranked_relations("DM"):
        print(f"  {name}: {score:.3f}")


if __name__ == "__main__":
    main()
