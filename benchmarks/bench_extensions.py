"""Extension-baseline comparison on DBLP (beyond the paper's roster).

ZooBP [15] and GNetMine [35] are both *cited* by the paper but not in
its comparison table; WeightedWvRN is this library's diagnostic variant.
Expected shape: T-Mark leads the group overall — the cited methods are
solid diffusion/regularisation baselines but share the equal-weighting
limitation the paper targets.
"""

import numpy as np

from benchmarks.conftest import (
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_TRIALS,
    run_once,
    write_report,
)
from repro.experiments import run_experiment


def test_extensions_comparison(benchmark):
    report = run_once(
        benchmark,
        run_experiment,
        "extensions",
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        n_trials=BENCH_TRIALS,
    )
    write_report(report)
    print()
    print(report)

    grid = report.data["grid"]
    means = {name: np.mean(grid.means(name)) for name in grid.method_names}

    # T-Mark leads (or co-leads) the extension group overall.
    assert means["T-Mark"] >= max(means.values()) - 0.02

    # The cited baselines are credible: everyone far above the 0.25
    # four-class chance level at every fraction.
    for name, cells in grid.cells.items():
        for cell in cells:
            assert cell.mean > 0.5, f"{name} collapsed to {cell.mean:.3f}"