"""Ablation — are the method comparisons stable across dataset sizes?

DESIGN.md claims the calibrated generators' *comparisons* (who wins) are
insensitive to scale, which is what justifies running the grids at
reduced sizes.  This bench measures T-Mark and wvRN+RL at two scales of
the DBLP generator and checks the ordering and levels hold; it also
records the runtime growth of a T-Mark fit (expected roughly linear in
the link count, per the O(D) cost model).
"""

import time

import numpy as np

from benchmarks.conftest import BENCH_SEED, RESULTS_DIR, run_once
from repro.baselines import WvRNRL
from repro.core import TMark
from repro.datasets import make_dblp
from repro.ml.metrics import accuracy
from repro.ml.splits import stratified_fraction_split
from repro.utils.rng import spawn_rngs


def _evaluate(hin, n_trials=3):
    y = hin.y
    tmark_accs, wvrn_accs = [], []
    for rng in spawn_rngs(BENCH_SEED, n_trials):
        mask = stratified_fraction_split(y, 0.1, rng=rng)
        train = hin.masked(mask)
        model = TMark(alpha=0.8, gamma=0.6, label_threshold=0.8).fit(train)
        tmark_accs.append(accuracy(y[~mask], model.predict()[~mask]))
        scores = WvRNRL().fit_predict(train)
        wvrn_accs.append(accuracy(y[~mask], np.argmax(scores, 1)[~mask]))
    return float(np.mean(tmark_accs)), float(np.mean(wvrn_accs))


def test_ablation_scaling(benchmark):
    def run_scales():
        results = {}
        for scale in (0.5, 1.0):
            hin = make_dblp(
                n_authors=int(400 * scale),
                attendees_per_conference=max(10, int(35 * scale**0.5)),
                seed=BENCH_SEED,
            )
            mask = stratified_fraction_split(
                hin.y, 0.1, rng=np.random.default_rng(BENCH_SEED)
            )
            train = hin.masked(mask)
            started = time.perf_counter()
            TMark(alpha=0.8, gamma=0.6, label_threshold=0.8).fit(train)
            fit_seconds = time.perf_counter() - started
            tmark, wvrn = _evaluate(hin)
            results[scale] = {
                "n": hin.n_nodes,
                "links": hin.tensor.nnz,
                "tmark": tmark,
                "wvrn": wvrn,
                "fit_seconds": fit_seconds,
            }
        return results

    results = run_once(benchmark, run_scales)
    lines = ["Ablation — scale stability (DBLP, 10% labels):"]
    for scale, res in results.items():
        lines.append(
            f"  scale={scale}: n={res['n']} links={res['links']} "
            f"T-Mark={res['tmark']:.3f} wvRN={res['wvrn']:.3f} "
            f"fit={res['fit_seconds'] * 1000:.0f}ms"
        )
    report = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_scaling.txt").write_text(report + "\n")
    print("\n" + report)

    small, large = results[0.5], results[1.0]
    # The winner is the same at both scales...
    assert small["tmark"] >= small["wvrn"] - 0.03
    assert large["tmark"] >= large["wvrn"] - 0.03
    # ...and T-Mark's level moves by less than 10 accuracy points.
    assert abs(small["tmark"] - large["tmark"]) < 0.10
    # Runtime growth is far from quadratic in the link count.
    link_ratio = large["links"] / small["links"]
    time_ratio = large["fit_seconds"] / max(small["fit_seconds"], 1e-4)
    assert time_ratio < link_ratio**2 * 3