"""Ablation — the Eq. 12 iterative label update (T-Mark's extension).

DESIGN.md calls out two design choices here: (a) the update itself
(on = T-Mark, off = TensorRrCc) and (b) the reading of the "relative
threshold" lambda (candidate-relative, our default, vs the literal
absolute test, which never fires on realistic score scales).

Expected shape: in the low-label regime the update helps; the absolute
mode behaves exactly like no update at all.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, RESULTS_DIR, run_once
from repro.core import TMark, TensorRrCc
from repro.datasets import make_dblp
from repro.ml.metrics import accuracy
from repro.ml.splits import stratified_fraction_split
from repro.utils.rng import spawn_rngs


@pytest.fixture(scope="module")
def dblp():
    return make_dblp(
        n_authors=max(80, int(400 * BENCH_SCALE)),
        attendees_per_conference=max(10, int(35 * BENCH_SCALE)),
        seed=BENCH_SEED,
    )


def _mean_accuracy(hin, model_factory, fraction=0.1, n_trials=3):
    y = hin.y
    accs = []
    for rng in spawn_rngs(BENCH_SEED, n_trials):
        mask = stratified_fraction_split(y, fraction, rng=rng)
        model = model_factory().fit(hin.masked(mask))
        accs.append(accuracy(y[~mask], model.predict()[~mask]))
    return float(np.mean(accs))


def test_ablation_label_update(benchmark, dblp):
    variants = {
        "update (relative, lambda=0.8)": lambda: TMark(
            alpha=0.8, gamma=0.6, label_threshold=0.8
        ),
        "no update (TensorRrCc)": lambda: TensorRrCc(alpha=0.8, gamma=0.6),
        "update (absolute, lambda=0.8)": lambda: TMark(
            alpha=0.8, gamma=0.6, label_threshold=0.8, threshold_mode="absolute"
        ),
    }

    def run_all():
        return {name: _mean_accuracy(dblp, fac) for name, fac in variants.items()}

    results = run_once(benchmark, run_all)
    lines = ["Ablation — iterative label update (DBLP, 10% labels):"]
    lines += [f"  {name}: {acc:.3f}" for name, acc in results.items()]
    report = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_label_update.txt").write_text(report + "\n")
    print("\n" + report)

    with_update = results["update (relative, lambda=0.8)"]
    without = results["no update (TensorRrCc)"]
    absolute = results["update (absolute, lambda=0.8)"]

    # The T-Mark extension pays off at 10% labels.
    assert with_update >= without - 0.01

    # The literal absolute threshold never accepts anyone -> identical
    # to the no-update baseline.
    assert abs(absolute - without) < 1e-9
