"""Table 11 — multi-label Macro-F1 on ACM, 9 methods x fractions.

Paper's shape: T-Mark (and TensorRrCc) dominate across the grid and are
*dramatically* better than everyone else at 10-30% labels; wvRN+RL and
EMR perform poorly throughout because they treat all link types equally;
Macro-F1 grows with supervision for the leaders.
"""

import numpy as np

from benchmarks.conftest import (
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_TRIALS,
    run_once,
    write_report,
)
from repro.experiments import run_experiment


def test_table11_acm_macro_f1(benchmark):
    report = run_once(
        benchmark,
        run_experiment,
        "table11",
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        n_trials=BENCH_TRIALS,
    )
    write_report(report)
    print()
    print(report)

    grid = report.data["grid"]
    means = {name: np.mean(grid.means(name)) for name in grid.method_names}
    best = max(means.values())

    # The tensor-chain pair leads or co-leads the multi-label grid.
    # (Known deviation, recorded in EXPERIMENTS.md: our wvRN+RL shares
    # the fair prior-matching multi-label decision rule, so it does not
    # collapse to the paper's 0.10-0.18 band and stays competitive.)
    assert means["T-Mark"] >= best - 0.06

    # The weight-blind classifiers trail T-Mark clearly on average
    # (paper: ICA 0.049-0.99 erratic, EMR 0.27-0.47, Hcc slow to start).
    assert means["T-Mark"] > means["ICA"] + 0.05
    assert means["T-Mark"] > means["EMR"] + 0.05
    assert means["T-Mark"] > means["Hcc"]

    # Low-label regime: T-Mark ahead of every conventional collective
    # classifier at 10% labels (the paper's headline on ACM).
    low_idx = 0
    tmark_low = grid.cells["T-Mark"][low_idx].mean
    for name in ("Hcc", "Hcc-ss", "EMR", "ICA"):
        assert tmark_low > grid.cells[name][low_idx].mean

    # Supervision helps the leader.
    assert grid.cells["T-Mark"][-1].mean >= grid.cells["T-Mark"][0].mean
