"""Streaming-update benchmark: incremental + warm must beat cold rebuilds.

The streaming pipeline exists to make per-batch updates cheap: after a
delta batch, :class:`~repro.stream.IncrementalOperators` renormalises
only the touched columns/fibres instead of rebuilding ``(O, R, W)``
from scratch, and the warm-started chains reconverge from the previous
stationary state instead of from the Eq. 11 cold start.  This bench
pins that promise on a ``q = 8`` synthetic workload (~800 nodes):

1. **Speedup >= 3x.**  Per batch, the incremental path (operator patch
   + warm refit) must be at least 3x faster than the cold path
   (``apply_batch`` + ``build_operators`` + cold fit) summed over the
   replay.
2. **Same answers.**  With ``update_labels=False`` the chain has one
   fixed point; the incremental and cold fits must produce identical
   argmax predictions on the final graph (and near-identical scores).

Results append to ``BENCH_stream_updates.json`` at the repo root.

Run standalone (CI does this)::

    PYTHONPATH=src python -m benchmarks.bench_stream_updates --assert

or under pytest as part of the bench suite.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.tmark import TMark, build_operators
from repro.datasets.synthetic import RelationSpec, make_synthetic_hin
from repro.stream import StreamingSession, apply_batch, synthetic_delta_log

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_stream_updates.json"

#: ``update_labels=False`` keeps the chain a contraction with a unique
#: fixed point, so warm and cold fits converge to the same answers and
#: the prediction-agreement assertion is well-defined.
MODEL_PARAMS = dict(alpha=0.85, gamma=0.4, update_labels=False, tol=1e-8)

#: Link-heavy delta mix: the streaming case this subsystem targets
#: (structure evolves continuously; features/labels change sometimes).
OP_WEIGHTS = {
    "add_link": 0.62,
    "remove_link": 0.28,
    "set_label": 0.04,
    "update_features": 0.04,
    "add_node": 0.02,
}


def _workload(seed: int = 0, n_nodes: int = 800, n_classes: int = 8):
    """Seed graph (40% labeled) + a 100-delta journal in 10 batches."""
    label_names = [f"c{c}" for c in range(n_classes)]
    hin = make_synthetic_hin(
        n_nodes,
        label_names,
        [
            RelationSpec("cites", n_links=4 * n_nodes, homophily=0.85),
            RelationSpec("co_author", n_links=3 * n_nodes, homophily=0.75),
            RelationSpec("venue", n_links=2 * n_nodes, homophily=0.6),
        ],
        vocab_size=5000,
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    train = hin.masked(rng.random(hin.n_nodes) < 0.4)
    log = synthetic_delta_log(
        train, 100, batch_size=10, seed=seed + 1, op_weights=OP_WEIGHTS
    )
    return train, log


def run_bench(seed: int = 0, assert_results: bool = True) -> dict:
    """Replay the workload both ways; returns (and records) the results."""
    train, log = _workload(seed)
    batches = log.batches()
    # Warm the BLAS/gemm and sparse kernels before timing anything, so
    # first-call setup cost doesn't land on whichever path runs first.
    build_operators(train)

    # Each path replays the journal `repeats` times from scratch and
    # keeps its best total, so a background-load spike on one pass
    # doesn't decide the comparison.
    repeats = 3

    # Incremental path: one streaming session, warm throughout.
    incremental_seconds = np.inf
    warm_iterations = []
    session = None
    for _ in range(repeats):
        session = StreamingSession(train, TMark(**MODEL_PARAMS))
        session.fit()
        total = 0.0
        warm_iterations = []
        for batch in batches:
            started = time.perf_counter()
            update = session.apply(batch)
            total += time.perf_counter() - started
            warm_iterations.append(update.iterations)
        incremental_seconds = min(incremental_seconds, total)

    # Cold path: full rebuild + cold fit after every batch.
    cold_seconds = np.inf
    cold_model = None
    cold_iterations = []
    for _ in range(repeats):
        total = 0.0
        cold_hin = train
        cold_iterations = []
        for batch in batches:
            started = time.perf_counter()
            cold_hin = apply_batch(cold_hin, batch)
            operators = build_operators(cold_hin)
            cold_model = TMark(**MODEL_PARAMS)
            cold_model.fit(cold_hin, operators=operators)
            total += time.perf_counter() - started
            cold_iterations.append(
                max(h.n_iterations for h in cold_model.result_.histories)
            )
        cold_seconds = min(cold_seconds, total)

    speedup = cold_seconds / incremental_seconds
    predictions_agree = bool(
        np.array_equal(
            np.argmax(session.result.node_scores, axis=1),
            np.argmax(cold_model.result_.node_scores, axis=1),
        )
    )
    max_divergence = float(
        np.max(np.abs(session.result.node_scores - cold_model.result_.node_scores))
    )

    results = {
        "n_nodes": train.n_nodes,
        "n_final_nodes": session.hin.n_nodes,
        "n_classes": train.n_labels,
        "n_relations": train.n_relations,
        "n_deltas": len(log),
        "n_batches": len(batches),
        "incremental_seconds": incremental_seconds,
        "cold_seconds": cold_seconds,
        "speedup": speedup,
        "mean_warm_iterations": float(np.mean(warm_iterations)),
        "mean_cold_iterations": float(np.mean(cold_iterations)),
        "predictions_agree": predictions_agree,
        "max_divergence": max_divergence,
    }
    _record(results)
    if assert_results:
        assert speedup >= 3.0, (
            f"incremental+warm replay only {speedup:.2f}x faster than cold "
            f"rebuild+fit (required: >= 3x)"
        )
        assert predictions_agree, (
            f"warm and cold fits disagree on argmax predictions "
            f"(max score divergence {max_divergence:.2e})"
        )
    return results


def _record(results: dict) -> Path:
    """Append one entry to the ``BENCH_stream_updates.json`` trajectory."""
    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    else:
        payload = {"bench": "stream_updates", "entries": []}
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), **results}
    payload["entries"].append(entry)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return BENCH_PATH


def test_stream_update_speedup():
    """Bench-suite entry: >=3x speedup and identical predictions."""
    results = run_bench(assert_results=True)
    assert results["n_deltas"] == 100
    assert results["n_batches"] in (9, 10)
    assert results["max_divergence"] < 1e-6


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--assert",
        dest="assert_results",
        action="store_true",
        help="fail (non-zero exit) when a threshold is violated",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    results = run_bench(seed=args.seed, assert_results=args.assert_results)
    for key, value in results.items():
        print(f"{key}: {value}")
    print(f"[recorded -> {BENCH_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
