"""Table 2 — top-5 conferences per research area (DBLP link ranking).

Paper's shape: the top-5 link types T-Mark ranks for each research area
are (almost all) that area's own conferences, with cross-community
venues like CIKM occasionally crossing over.
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once, write_report
from repro.experiments import run_experiment


def test_table2_conference_ranking(benchmark):
    report = run_once(
        benchmark, run_experiment, "table2", scale=BENCH_SCALE, seed=BENCH_SEED
    )
    write_report(report)
    print()
    print(report)

    # Paper shape: top-5 lists are dominated by the area's own venues
    # (Table 2 has 4/5 or 5/5 per area).
    assert report.data["precision"] >= 0.6

    # Every area's #1 conference belongs to that area.
    areas = report.data["conference_areas"]
    for area, ranking in report.data["rankings"].items():
        assert areas[ranking[0]] == area, (
            f"{area}'s top-ranked conference {ranking[0]} is from "
            f"{areas[ranking[0]]}"
        )
