"""Tables 6 & 7 — the two NUS tag sets and their structural contrast.

Paper's shape: Tagset1 (selected by class-connection probability) is
far more homophilous than Tagset2 (selected by raw frequency), while
Tagset2 contributes more links.
"""

import numpy as np

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once, write_report
from repro.experiments import run_experiment


def test_table6_7_tagset_statistics(benchmark):
    report = run_once(
        benchmark, run_experiment, "table6_7", scale=BENCH_SCALE, seed=BENCH_SEED
    )
    write_report(report)
    print()
    print(report)

    homophily1 = np.nanmean(list(report.data["tagset1_homophily"].values()))
    homophily2 = np.nanmean(list(report.data["tagset2_homophily"].values()))

    # The selection criterion shows: relevance-selected tags are much
    # more class-aligned than frequency-selected ones.
    assert homophily1 > homophily2 + 0.15

    # Both sets carry the paper's 41 tags.
    assert len(report.data["tagset1_homophily"]) == 41
    assert len(report.data["tagset2_homophily"]) == 41
