"""Table 5 — top-10 directors per movie genre (Movies link ranking).

Paper's shape: the per-genre rankings differ strongly across genres
("most directors prefer one specific type of movie"), so a director
top-ranked for one genre usually reflects their actual filmography.
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once, write_report
from repro.experiments import run_experiment


def test_table5_director_ranking(benchmark):
    report = run_once(
        benchmark, run_experiment, "table5", scale=BENCH_SCALE, seed=BENCH_SEED
    )
    write_report(report)
    print()
    print(report)

    # Most top-10 directors match their generator ground-truth genre.
    assert report.data["precision"] >= 0.5

    # Rankings differ across genres: no two genres share their full
    # top-10 (the paper: "they almost have different rankings in five
    # genres").
    rankings = report.data["rankings"]
    genres = list(rankings)
    for a_idx, genre_a in enumerate(genres):
        for genre_b in genres[a_idx + 1:]:
            overlap = len(set(rankings[genre_a]) & set(rankings[genre_b]))
            assert overlap < 10, f"{genre_a} and {genre_b} have identical top-10"
