"""Ablation — sparsifying the feature transition matrix W.

The dense cosine W is O(n^2) memory; ``similarity_top_k`` keeps only the
strongest k similarities per column.  Expected shape: accuracy within a
small tolerance of the dense model while the transition matrix itself is
orders of magnitude sparser.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, RESULTS_DIR, run_once
from repro.core import TMark
from repro.datasets import make_dblp
from repro.ml.metrics import accuracy
from repro.ml.splits import stratified_fraction_split


@pytest.fixture(scope="module")
def dblp():
    return make_dblp(
        n_authors=max(80, int(400 * BENCH_SCALE)),
        attendees_per_conference=max(10, int(35 * BENCH_SCALE)),
        seed=BENCH_SEED,
    )


def test_ablation_w_sparsification(benchmark, dblp):
    y = dblp.y
    mask = stratified_fraction_split(y, 0.3, rng=np.random.default_rng(BENCH_SEED))
    train = dblp.masked(mask)

    def run_variants():
        results = {}
        for name, top_k in (("dense", None), ("top-100", 100), ("top-25", 25)):
            model = TMark(
                alpha=0.8, gamma=0.6, label_threshold=0.8, similarity_top_k=top_k
            ).fit(train)
            results[name] = accuracy(y[~mask], model.predict()[~mask])
        return results

    results = run_once(benchmark, run_variants)
    lines = ["Ablation — W sparsification (DBLP, 30% labels):"]
    lines += [f"  {name}: {acc:.3f}" for name, acc in results.items()]
    report = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_w_sparsification.txt").write_text(report + "\n")
    print("\n" + report)

    # A moderate cut keeps the dense model's accuracy; an aggressive cut
    # is allowed to cost some, but must stay far above chance (0.25).
    assert results["top-100"] >= results["dense"] - 0.05
    assert results["top-25"] >= results["dense"] - 0.15
    assert results["top-25"] > 0.5
