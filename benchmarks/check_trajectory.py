"""Gate the nightly bench run on the committed BENCH_*.json guards.

Each ``BENCH_*.json`` trajectory at the repo root may carry a top-level
``guards`` list.  A guard pins one numeric or boolean field of every
entry::

    {"field": "speedup", "min": 3.0}
    {"field": "cells_identical", "equals": true}
    {"field": "speedup", "min": 2.0, "gate": "multicore"}

* ``min`` / ``max`` — inclusive bounds on a numeric field.
* ``equals`` — exact match (booleans, counts).
* ``gate`` — name of a boolean entry field; when the entry's gate field
  is absent or falsy the guard is skipped for that entry.  This is how
  hardware-dependent guards (a parallel speedup needs >= 4 cores)
  coexist with single-core CI runners: the timing is still *recorded*,
  it just is not *asserted*.

Entries missing a guarded field fail — a renamed field silently
un-guarding a trajectory is exactly the regression mode this script
exists to catch.

Every file is checked even when an earlier one is missing, malformed or
violated, so one nightly run reports the *complete* set of problems.
The exit status tells the gate step which kind it saw:

* ``0`` — every guard of every trajectory holds.
* ``2`` — structural problem: no arguments, a missing file, unreadable
  JSON, or a malformed guard (the gate could not fully evaluate).
* ``3`` — one or more guard violations (all of them are listed).

Structural problems take precedence: a run that could not check
everything must not masquerade as a clean — or merely violated — one.

Usage (nightly CI)::

    python benchmarks/check_trajectory.py BENCH_*.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Exit statuses (see the module docstring).
EXIT_OK = 0
EXIT_STRUCTURAL = 2
EXIT_VIOLATIONS = 3


def check_file(path: Path) -> tuple[list[str], list[str]]:
    """One trajectory's ``(violations, structural_errors)`` (empty = clean)."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [], [f"{path.name}: unreadable trajectory ({exc})"]
    if not isinstance(payload, dict):
        return [], [f"{path.name}: trajectory is not a JSON object"]
    guards = payload.get("guards", [])
    entries = payload.get("entries", [])
    violations: list[str] = []
    structural: list[str] = []
    if not entries:
        structural.append(f"{path.name}: trajectory has no entries")
    for guard in guards:
        if not isinstance(guard, dict) or not guard.get("field"):
            structural.append(
                f"{path.name}: guard without a 'field': {guard!r}"
            )
            continue
        field = guard["field"]
        for index, entry in enumerate(entries):
            stamp = entry.get("timestamp", f"entry {index}")
            gate = guard.get("gate")
            if gate is not None and not entry.get(gate):
                continue
            if field not in entry:
                violations.append(
                    f"{path.name} [{stamp}]: guarded field {field!r} missing"
                )
                continue
            value = entry[field]
            if "equals" in guard and value != guard["equals"]:
                violations.append(
                    f"{path.name} [{stamp}]: {field} = {value!r}, "
                    f"required == {guard['equals']!r}"
                )
            if "min" in guard and not value >= guard["min"]:
                violations.append(
                    f"{path.name} [{stamp}]: {field} = {value}, "
                    f"required >= {guard['min']}"
                )
            if "max" in guard and not value <= guard["max"]:
                violations.append(
                    f"{path.name} [{stamp}]: {field} = {value}, "
                    f"required <= {guard['max']}"
                )
    return violations, structural


def main(argv=None) -> int:
    paths = [Path(arg) for arg in (argv if argv is not None else sys.argv[1:])]
    if not paths:
        print("usage: check_trajectory.py BENCH_*.json")
        return EXIT_STRUCTURAL
    all_violations: list[str] = []
    all_structural: list[str] = []
    for path in paths:
        if not path.exists():
            print(f"{path.name}: MISSING")
            all_structural.append(f"no such trajectory file: {path}")
            continue
        violations, structural = check_file(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            payload = {}
        if not isinstance(payload, dict):
            payload = {}
        n_guards = len(payload.get("guards", []))
        n_entries = len(payload.get("entries", []))
        status = "FAIL" if violations or structural else "ok"
        print(
            f"{path.name}: {n_entries} entries x {n_guards} guards — {status}"
        )
        all_violations.extend(violations)
        all_structural.extend(structural)
    if all_violations or all_structural:
        print()
        for problem in all_structural:
            print(f"STRUCTURAL: {problem}")
        for violation in all_violations:
            print(f"VIOLATION: {violation}")
    if all_structural:
        return EXIT_STRUCTURAL
    if all_violations:
        return EXIT_VIOLATIONS
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
