"""Gate the nightly bench run on the committed BENCH_*.json guards.

Each ``BENCH_*.json`` trajectory at the repo root may carry a top-level
``guards`` list.  A guard pins one numeric or boolean field of every
entry::

    {"field": "speedup", "min": 3.0}
    {"field": "cells_identical", "equals": true}
    {"field": "speedup", "min": 2.0, "gate": "multicore"}

* ``min`` / ``max`` — inclusive bounds on a numeric field.
* ``equals`` — exact match (booleans, counts).
* ``gate`` — name of a boolean entry field; when the entry's gate field
  is absent or falsy the guard is skipped for that entry.  This is how
  hardware-dependent guards (a parallel speedup needs >= 4 cores)
  coexist with single-core CI runners: the timing is still *recorded*,
  it just is not *asserted*.

Entries missing a guarded field fail — a renamed field silently
un-guarding a trajectory is exactly the regression mode this script
exists to catch.

Usage (nightly CI)::

    python benchmarks/check_trajectory.py BENCH_*.json

Exit status 1 when any guard is violated, with one line per violation.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def check_file(path: Path) -> list[str]:
    """All guard violations in one trajectory file (empty = clean)."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    guards = payload.get("guards", [])
    entries = payload.get("entries", [])
    violations = []
    if not entries:
        violations.append(f"{path.name}: trajectory has no entries")
    for guard in guards:
        field = guard.get("field")
        if not field:
            violations.append(f"{path.name}: guard without a 'field': {guard!r}")
            continue
        for index, entry in enumerate(entries):
            stamp = entry.get("timestamp", f"entry {index}")
            gate = guard.get("gate")
            if gate is not None and not entry.get(gate):
                continue
            if field not in entry:
                violations.append(
                    f"{path.name} [{stamp}]: guarded field {field!r} missing"
                )
                continue
            value = entry[field]
            if "equals" in guard and value != guard["equals"]:
                violations.append(
                    f"{path.name} [{stamp}]: {field} = {value!r}, "
                    f"required == {guard['equals']!r}"
                )
            if "min" in guard and not value >= guard["min"]:
                violations.append(
                    f"{path.name} [{stamp}]: {field} = {value}, "
                    f"required >= {guard['min']}"
                )
            if "max" in guard and not value <= guard["max"]:
                violations.append(
                    f"{path.name} [{stamp}]: {field} = {value}, "
                    f"required <= {guard['max']}"
                )
    return violations


def main(argv=None) -> int:
    paths = [Path(arg) for arg in (argv if argv is not None else sys.argv[1:])]
    if not paths:
        print("usage: check_trajectory.py BENCH_*.json")
        return 2
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"no such trajectory file: {path}")
        return 2
    all_violations = []
    for path in paths:
        violations = check_file(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        n_guards = len(payload.get("guards", []))
        n_entries = len(payload.get("entries", []))
        status = "FAIL" if violations else "ok"
        print(
            f"{path.name}: {n_entries} entries x {n_guards} guards — {status}"
        )
        all_violations.extend(violations)
    if all_violations:
        print()
        for violation in all_violations:
            print(f"VIOLATION: {violation}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
