"""Ablation — is relation weighting really the secret sauce?

T-Mark's core claim is that exploiting per-link-type relevance is what
beats the classic collective classifiers.  This bench stages the
cleanest version of that comparison on DBLP (heterogeneous venue
purity):

* **wvRN+RL** — equal-weight diffusion (no weighting);
* **WeightedWvRN** — the same diffusion over a graph reweighted by
  training-set homophily estimates (explicit weighting, no tensor);
* **ZooBP** — linearised belief propagation (equal coupling);
* **T-Mark** — learned stationary relation weights + features.

Measured shape (an honest negative result worth recording): *estimated*
weights do not beat equal weights for the diffusion — on this DBLP even
the noisy venues carry positive signal, so downweighting them loses
about as much as it saves, and the estimates add variance.  T-Mark still
tops the group at moderate supervision because its advantage is not the
weighting alone but the combination with the feature walk and the
semi-supervised restart (and its z needs no labeled link pairs).
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, RESULTS_DIR, run_once
from repro.baselines import WeightedWvRN, WvRNRL, ZooBP
from repro.core import TMark
from repro.datasets import get_dataset
from repro.ml.metrics import accuracy
from repro.ml.splits import stratified_fraction_split
from repro.utils.rng import spawn_rngs


@pytest.fixture(scope="module")
def dblp():
    return get_dataset("dblp", scale=BENCH_SCALE, seed=BENCH_SEED)


def test_ablation_relation_weighting(benchmark, dblp):
    y = dblp.y
    methods = {
        "wvRN+RL (equal weights)": lambda: WvRNRL(),
        "WeightedWvRN (estimated weights)": lambda: WeightedWvRN(),
        "ZooBP (equal coupling)": lambda: ZooBP(),
        "T-Mark (learned weights + features)": lambda: TMark(
            alpha=0.8, gamma=0.6, label_threshold=0.8
        ),
    }

    def run_all():
        results = {}
        for name, factory in methods.items():
            accs = []
            for rng in spawn_rngs(BENCH_SEED, 5):
                mask = stratified_fraction_split(y, 0.3, rng=rng)
                scores = factory().fit_predict(dblp.masked(mask))
                predictions = np.argmax(scores, axis=1)
                accs.append(accuracy(y[~mask], predictions[~mask]))
            results[name] = float(np.mean(accs))
        return results

    results = run_once(benchmark, run_all)
    lines = ["Ablation — relation weighting (DBLP, 30% labels):"]
    lines += [f"  {name}: {acc:.3f}" for name, acc in results.items()]
    report = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_relation_weighting.txt").write_text(report + "\n")
    print("\n" + report)

    plain = results["wvRN+RL (equal weights)"]
    weighted = results["WeightedWvRN (estimated weights)"]
    tmark = results["T-Mark (learned weights + features)"]
    zoobp = results["ZooBP (equal coupling)"]

    # The negative result: estimated weights neither help nor hurt the
    # diffusion much (see the module docstring).
    assert abs(weighted - plain) < 0.05
    # T-Mark leads the group...
    assert tmark >= max(results.values()) - 0.01
    # ...and clearly beats the equal-coupling belief propagation.
    assert tmark > zoobp + 0.02