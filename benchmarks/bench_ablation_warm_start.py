"""Ablation — warm-starting the chains when labels arrive incrementally.

The ICDE abstract frames T-Mark as an *incremental* HIN classification
method: when additional labels arrive on the same network, restarting
the per-class chains from the previous stationary pair should converge
in a fraction of the cold-start iterations while reaching the same
fixed point.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, RESULTS_DIR, run_once
from repro.core import TMark
from repro.datasets import make_dblp
from repro.ml.splits import stratified_fraction_split


@pytest.fixture(scope="module")
def dblp():
    return make_dblp(
        n_authors=max(80, int(400 * BENCH_SCALE)),
        attendees_per_conference=max(10, int(35 * BENCH_SCALE**0.5)),
        seed=BENCH_SEED,
    )


def test_ablation_warm_start(benchmark, dblp):
    y = dblp.y
    rng = np.random.default_rng(BENCH_SEED)
    first = stratified_fraction_split(y, 0.1, rng=rng)
    extra = stratified_fraction_split(y, 0.1, rng=rng)
    second = first | extra

    def run_one(alpha):
        model = TMark(alpha=alpha, gamma=0.6, label_threshold=0.8, tol=1e-10)
        model.fit(dblp.masked(first))
        model.fit(dblp.masked(second), warm_start=True)
        warm_iters = sum(h.n_iterations for h in model.result_.histories)
        warm_scores = model.result_.node_scores.copy()

        cold = TMark(alpha=alpha, gamma=0.6, label_threshold=0.8, tol=1e-10)
        cold.fit(dblp.masked(second))
        cold_iters = sum(h.n_iterations for h in cold.result_.histories)
        agreement = float(
            np.mean(np.argmax(warm_scores, 1) == np.argmax(cold.result_.node_scores, 1))
        )
        return {"warm": warm_iters, "cold": cold_iters, "agreement": agreement}

    def run_variants():
        # alpha=0.8: the restart dominates and convergence is fast from
        # any start (savings ~0).  alpha=0.3: slower geometric
        # contraction, where the warm start pays.
        return {alpha: run_one(alpha) for alpha in (0.8, 0.3)}

    results = run_once(benchmark, run_variants)
    lines = ["Ablation — warm start on incremental labels (DBLP):"]
    for alpha, res in results.items():
        lines.append(
            f"  alpha={alpha}: cold={res['cold']} iters, warm={res['warm']} "
            f"iters, prediction agreement {res['agreement']:.3f}"
        )
    report = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_warm_start.txt").write_text(report + "\n")
    print("\n" + report)

    # Warm start never costs iterations and lands on (essentially) the
    # same predictions at both restart strengths...
    for res in results.values():
        assert res["warm"] <= res["cold"] + 1
        assert res["agreement"] > 0.95
    # ...and at the weak restart it saves real work.
    assert results[0.3]["warm"] < results[0.3]["cold"]