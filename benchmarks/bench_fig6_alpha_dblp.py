"""Fig. 6 — T-Mark accuracy vs the restart parameter alpha on DBLP.

Paper's shape: accuracy first rises with alpha, peaks around 0.8, then
drops toward alpha -> 1 (pure restart leaves nothing for propagation).
"""

import numpy as np

from benchmarks.conftest import (
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_TRIALS,
    run_once,
    write_report,
)
from repro.experiments import run_experiment


def test_fig6_alpha_sweep_dblp(benchmark):
    report = run_once(
        benchmark,
        run_experiment,
        "fig6",
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        n_trials=BENCH_TRIALS,
    )
    write_report(report)
    print()
    print(report)

    alphas = report.data["alphas"]
    accuracy = report.data["accuracy"]
    peak_idx = int(np.argmax(accuracy))

    # The peak sits in the interior, toward the high end (paper: 0.8).
    assert 0.3 <= alphas[peak_idx] <= 0.95

    # Rising flank: the peak clearly beats the smallest alpha.
    assert accuracy[peak_idx] > accuracy[0]

    # Falling flank: alpha ~ 1 is worse than the peak (the paper: "when
    # alpha is larger than 0.8 the labeled information cannot increase
    # the accuracy").
    assert accuracy[peak_idx] >= accuracy[-1]
