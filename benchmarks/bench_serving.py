"""Serving benchmark: classify throughput under a live update stream.

The daemon's contract is that reads never block on reconvergence: the
updater thread rebuilds snapshots in the background and installs them
with an atomic reference swap, so ``/classify`` latency should be flat
whether or not updates are in flight.  This bench pins that promise on
the synthetic stream workload:

1. **Throughput floor.**  Reader threads hammering ``POST /classify``
   over keep-alive connections while label-flip deltas stream through
   ``POST /update`` must sustain >= 50 requests/second (a deliberately
   conservative floor for the stdlib ``http.server`` stack on a shared
   CI runner).
2. **Tail latency.**  p99 classify latency stays under 250 ms.
3. **No errors, real concurrency.**  Every response is HTTP 200 and at
   least one update batch reconverged *during* the measured window —
   otherwise the bench silently degrades to a read-only measurement.

Results append to ``BENCH_serving.json`` at the repo root; the nightly
gate asserts the committed guards over the whole trajectory.

Run standalone (CI does this)::

    PYTHONPATH=src python -m benchmarks.bench_serving --assert

or under pytest as part of the bench suite.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from pathlib import Path

import numpy as np

from repro.experiments.streaming import build_streaming_session
from repro.serve import PredictionDaemon
from repro.stream import GraphDelta

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_serving.json"

#: Measured read window (seconds).  Long enough for several reconverges
#: to land inside it, short enough for the nightly wall-clock budget.
MEASURE_SECONDS = 2.0
N_READERS = 4
BATCH_SIZE = 16
#: Pause between update batches; ~MEASURE_SECONDS / UPDATE_PERIOD
#: reconvergences overlap the measured reads.
UPDATE_PERIOD = 0.15


def _percentiles(latencies):
    array = np.asarray(latencies, dtype=float)
    p50, p95, p99 = np.percentile(array, [50.0, 95.0, 99.0])
    return float(p50), float(p95), float(p99)


def run_bench(seed: int = 0, assert_results: bool = True) -> dict:
    """Drive the daemon with concurrent readers + updates; record."""
    session = build_streaming_session(scale=1.0, seed=seed)
    daemon = PredictionDaemon(session).start()
    node_names = list(daemon.state.snapshot.node_names)
    label_names = list(daemon.state.snapshot.label_names)
    rng = np.random.default_rng(seed)
    latencies: list[list[float]] = [[] for _ in range(N_READERS)]
    errors = [0]
    stop = threading.Event()

    def reader(slot: int):
        connection = http.client.HTTPConnection(
            daemon.host, daemon.port, timeout=10
        )
        picks = rng.choice(len(node_names), size=(256, BATCH_SIZE))
        bodies = [
            json.dumps({"nodes": [node_names[i] for i in row]}).encode()
            for row in picks
        ]
        request = 0
        while not stop.is_set():
            body = bodies[request % len(bodies)]
            request += 1
            started = time.perf_counter()
            connection.request(
                "POST",
                "/classify",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            response.read()
            latencies[slot].append(time.perf_counter() - started)
            if response.status != 200:
                errors[0] += 1
        connection.close()

    def updater():
        connection = http.client.HTTPConnection(
            daemon.host, daemon.port, timeout=10
        )
        flip = 0
        while not stop.is_set():
            node = node_names[flip % len(node_names)]
            label = label_names[flip % len(label_names)]
            flip += 1
            delta = GraphDelta.set_label(node, [label]).to_dict()
            connection.request(
                "POST",
                "/update",
                body=json.dumps({"deltas": [delta]}).encode(),
                headers={"Content-Type": "application/json"},
            )
            connection.getresponse().read()
            stop.wait(UPDATE_PERIOD)
        connection.close()

    threads = [
        threading.Thread(target=reader, args=(slot,))
        for slot in range(N_READERS)
    ]
    threads.append(threading.Thread(target=updater))
    applied_before = daemon.applied_updates
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(MEASURE_SECONDS)
    stop.set()
    for thread in threads:
        thread.join(timeout=30)
    elapsed = time.perf_counter() - started
    daemon.flush()
    updates_applied = daemon.applied_updates - applied_before
    final_version = daemon.state.snapshot.version
    daemon.stop()

    all_latencies = [value for slot in latencies for value in slot]
    p50, p95, p99 = _percentiles(all_latencies)
    qps = len(all_latencies) / elapsed

    results = {
        "n_nodes": len(node_names),
        "n_classes": len(label_names),
        "n_readers": N_READERS,
        "batch_size": BATCH_SIZE,
        "measure_seconds": elapsed,
        "requests": len(all_latencies),
        "qps": qps,
        "p50_seconds": p50,
        "p95_seconds": p95,
        "p99_seconds": p99,
        "errors": errors[0],
        "updates_applied": updates_applied,
        "final_snapshot_version": final_version,
    }
    _record(results)
    if assert_results:
        assert errors[0] == 0, f"{errors[0]} non-200 classify responses"
        assert qps >= 50.0, (
            f"classify throughput {qps:.0f} qps under update stream "
            f"(required: >= 50)"
        )
        assert p99 <= 0.25, (
            f"p99 classify latency {p99 * 1e3:.1f} ms (required: <= 250 ms)"
        )
        assert updates_applied >= 1, (
            "no update reconverged during the measured window; the bench "
            "degenerated to a read-only measurement"
        )
    return results


def _record(results: dict) -> Path:
    """Append one entry to the ``BENCH_serving.json`` trajectory."""
    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    else:
        payload = {"bench": "serving", "entries": []}
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), **results}
    payload["entries"].append(entry)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return BENCH_PATH


def test_serving_throughput_under_updates():
    """Bench-suite entry: qps/tail-latency floors with live updates."""
    results = run_bench(assert_results=True)
    assert results["requests"] > 0
    assert results["final_snapshot_version"] >= results["updates_applied"]


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--assert",
        dest="assert_results",
        action="store_true",
        help="fail (non-zero exit) when a threshold is violated",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    results = run_bench(seed=args.seed, assert_results=args.assert_results)
    for key, value in results.items():
        print(f"{key}: {value}")
    print(f"[recorded -> {BENCH_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
