"""Micro-benchmarks of the computational kernels.

Unlike the table/figure benches (one full experiment per timer run),
these time the inner loops repeatedly: the O / R tensor-vector products
(the section 4.5 cost model says each is O(D) in the nonzero count) and
one full T-Mark fit.
"""

import numpy as np
import pytest

from repro.core import TMark
from repro.datasets import make_dblp
from repro.tensor.transition import build_transition_tensors
from repro.utils.rng import ensure_rng
from tests.conftest import random_sparse_tensor


@pytest.fixture(scope="module")
def medium_tensor():
    rng = ensure_rng(0)
    return random_sparse_tensor(rng, n=500, m=10, density=0.002)


@pytest.fixture(scope="module")
def transition_pair(medium_tensor):
    return build_transition_tensors(medium_tensor)


def test_kernel_o_propagate(benchmark, transition_pair):
    o_tensor, _ = transition_pair
    n, _, m = o_tensor.shape
    x = np.full(n, 1.0 / n)
    z = np.full(m, 1.0 / m)
    result = benchmark(o_tensor.propagate, x, z)
    assert result.shape == (n,)
    assert np.isclose(result.sum(), 1.0)


def test_kernel_r_propagate(benchmark, transition_pair):
    _, r_tensor = transition_pair
    n, _, m = r_tensor.shape
    x = np.full(n, 1.0 / n)
    result = benchmark(r_tensor.propagate, x)
    assert result.shape == (m,)
    assert np.isclose(result.sum(), 1.0)


def test_kernel_transition_build(benchmark, medium_tensor):
    o_tensor, r_tensor = benchmark(build_transition_tensors, medium_tensor)
    assert o_tensor.shape == medium_tensor.shape
    assert r_tensor.shape == medium_tensor.shape


def test_kernel_tmark_fit(benchmark):
    hin = make_dblp(n_authors=200, attendees_per_conference=20, seed=0)
    mask = np.zeros(hin.n_nodes, dtype=bool)
    mask[::5] = True
    train = hin.masked(mask)

    def fit():
        return TMark(alpha=0.8, gamma=0.6, label_threshold=0.8).fit(train)

    model = benchmark(fit)
    assert model.result_.node_scores.shape == (hin.n_nodes, hin.n_labels)


def test_kernel_cost_scales_with_nnz(benchmark):
    """Section 4.5: the per-iteration cost is O(D) in the nonzeros.

    Timed as one unit: propagation on a tensor with 4x the nonzeros of
    the medium one must not be more than ~25x slower (generous bound —
    we only guard against accidentally quadratic implementations).
    """
    import time

    rng = ensure_rng(1)
    small = random_sparse_tensor(rng, n=400, m=8, density=0.002)
    large = random_sparse_tensor(rng, n=800, m=8, density=0.002)

    def measure(tensor):
        o_tensor, _ = build_transition_tensors(tensor)
        n, _, m = tensor.shape
        x = np.full(n, 1.0 / n)
        z = np.full(m, 1.0 / m)
        started = time.perf_counter()
        for _ in range(30):
            o_tensor.propagate(x, z)
        return time.perf_counter() - started

    time_small = measure(small)
    time_large = benchmark.pedantic(
        measure, args=(large,), rounds=1, iterations=1
    )
    assert time_large < max(time_small, 1e-4) * 25


def test_kernel_batched_vs_looped_fit(benchmark):
    """The batched multi-class fit must beat q sequential chains by >= 2x.

    Timed on a 12-class synthetic HIN (n=800, m=3, dense feature walk):
    the looped reference advances one class chain at a time via
    ``_run_chain`` while the batched path advances all q columns in
    lockstep through ``propagate_many``.  Both consume the same cached
    operators, so the comparison isolates the kernel layer.  Best-of-4
    timing damps scheduler noise.
    """
    import time

    from repro.core.tmark import build_operators
    from tests.conftest import small_labeled_hin

    n, q = 800, 12
    hin = small_labeled_hin(seed=1, n=n, q=q, m=3)
    rng = ensure_rng(0)
    train = hin.masked(rng.random(n) < 0.3)
    kwargs = dict(alpha=0.85, gamma=0.5, tol=1e-9)
    probe = TMark(**kwargs)
    operators = build_operators(
        train,
        similarity_top_k=probe.similarity_top_k,
        similarity_metric=probe.similarity_metric,
    )
    label_matrix = train.label_matrix.astype(float)

    def batched_fit():
        return TMark(**kwargs).fit(train, operators=operators)

    def looped_fit():
        model = TMark(**kwargs)
        for c in range(q):
            model._run_chain(
                operators.o_tensor,
                operators.r_tensor,
                operators.w_matrix,
                label_matrix[:, c],
            )

    def best_of(func, rounds=4):
        times = []
        for _ in range(rounds):
            started = time.perf_counter()
            func()
            times.append(time.perf_counter() - started)
        return min(times)

    looped_time = best_of(looped_fit)
    batched_time = benchmark.pedantic(
        best_of, args=(batched_fit,), rounds=1, iterations=1
    )
    model = batched_fit()
    assert model.result_.node_scores.shape == (train.n_nodes, q)
    assert looped_time >= 2.0 * batched_time, (
        f"batched fit only {looped_time / batched_time:.2f}x faster "
        f"(looped {looped_time:.4f}s, batched {batched_time:.4f}s)"
    )


def test_kernel_chunked_topk_w(benchmark):
    """Chunked top-k W on a 2000-node feature matrix (O(n * chunk) memory)."""
    from repro.core.features import topk_cosine_transition_matrix

    rng = ensure_rng(2)
    features = rng.poisson(1.0, size=(2000, 60)).astype(float)
    matrix = benchmark.pedantic(
        topk_cosine_transition_matrix,
        args=(features, 20),
        kwargs={"chunk_size": 256},
        rounds=1,
        iterations=1,
    )
    cols = np.asarray(matrix.sum(axis=0)).ravel()
    assert np.allclose(cols, 1.0)
