"""Extension — robustness to an injected useless link type.

The paper's motivation: "HIN is a complex network which contains many
useless links" and methods that cannot weight link types are hurt by
them.  This bench injects a purely random extra relation into DBLP at
growing volumes and compares T-Mark (learned relation weights) against
wvRN+RL (equal weights).

Expected shape: T-Mark's accuracy degrades gently; wvRN+RL's collapses
roughly in proportion to the noise volume — the crossover that justifies
the whole approach.
"""

from benchmarks.conftest import (
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_TRIALS,
    run_once,
    write_report,
)
from repro.experiments import run_experiment


def test_noise_robustness(benchmark):
    report = run_once(
        benchmark,
        run_experiment,
        "noise",
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        n_trials=BENCH_TRIALS,
    )
    write_report(report)
    print()
    print(report)

    tmark = report.data["tmark"]
    wvrn = report.data["wvrn"]

    # On the clean network the two are comparable.
    assert abs(tmark[0] - wvrn[0]) < 0.08

    # At the heaviest noise level T-Mark holds while wvRN collapses.
    assert tmark[-1] > tmark[0] - 0.10, "T-Mark degraded too much"
    assert wvrn[-1] < wvrn[0] - 0.20, "wvRN did not degrade as expected"
    assert tmark[-1] > wvrn[-1] + 0.15

    # T-Mark dominates at every noisy level.
    for level_idx in range(1, len(tmark)):
        assert tmark[level_idx] >= wvrn[level_idx] - 0.02