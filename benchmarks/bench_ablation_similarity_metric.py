"""Ablation — the node-similarity metric behind W (section 4.2).

The paper picks cosine similarity but notes that "many distance metrics
have been developed" for the feature transition graph.  This bench
compares cosine / RBF / generalised-Jaccard W matrices inside T-Mark on
DBLP.  Expected shape: on bag-of-words features all three are usable;
cosine and Jaccard (both overlap-based) are close, and no metric
collapses the classifier.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, RESULTS_DIR, run_once
from repro.core import TMark
from repro.core.features import SIMILARITY_METRICS
from repro.datasets import make_dblp
from repro.ml.metrics import accuracy
from repro.ml.splits import stratified_fraction_split


@pytest.fixture(scope="module")
def dblp():
    return make_dblp(
        n_authors=max(80, int(400 * BENCH_SCALE)),
        attendees_per_conference=max(10, int(35 * BENCH_SCALE**0.5)),
        seed=BENCH_SEED,
    )


def test_ablation_similarity_metric(benchmark, dblp):
    y = dblp.y
    mask = stratified_fraction_split(y, 0.3, rng=np.random.default_rng(BENCH_SEED))
    train = dblp.masked(mask)

    def run_variants():
        results = {}
        for metric in SIMILARITY_METRICS:
            model = TMark(
                alpha=0.8,
                gamma=0.6,
                label_threshold=0.8,
                similarity_metric=metric,
            ).fit(train)
            results[metric] = accuracy(y[~mask], model.predict()[~mask])
        return results

    results = run_once(benchmark, run_variants)
    lines = ["Ablation — W similarity metric (DBLP, 30% labels):"]
    lines += [f"  {metric}: {acc:.3f}" for metric, acc in results.items()]
    report = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_similarity_metric.txt").write_text(report + "\n")
    print("\n" + report)

    best = max(results.values())
    # The paper's cosine choice is (near-)optimal on bag-of-words.
    assert results["cosine"] >= best - 0.05
    # No metric collapses below the relation-only regime.
    for metric, acc in results.items():
        assert acc > 0.5, f"{metric} collapsed to {acc:.3f}"