"""Solver benchmark: acceleration must pay for itself on slow chains.

The :mod:`repro.solvers` accelerators promise two things (see the
package docstring): accelerated fits land on the *same* stationary point
as the plain power iteration (argmax-identical predictions), and on
slow-mixing chains they get there in materially fewer iterations.  This
bench pins both on a deliberately slow workload: a strongly homophilous
two-relation HIN with a tiny restart weight (``alpha = 0.01``), whose
per-class chains decay at rate ~0.93 — about 30 plain iterations per
residual decade at ``tol = 1e-10``.

1. **Same answers, always.**  Every accelerated solver's node argmax
   must match the plain fit exactly, and every chain must converge.
2. **Anderson cuts iterations by >= 1.5x.**  Total chain iterations
   (summed over classes) under ``solver="anderson"`` must be at least
   :data:`REDUCTION_FLOOR` times fewer than plain.  (Measured ~11x;
   the floor is the ISSUE's acceptance threshold, kept loose so noisy
   CI machines never flake on it.)  Aitken and auto are recorded for
   the trajectory but only Anderson is guarded — it is the solver the
   adaptive policy escalates to.

Results append to ``BENCH_solvers.json`` at the repo root.

Run standalone (nightly CI does this)::

    PYTHONPATH=src python -m benchmarks.bench_solvers --assert

or under pytest as part of the bench suite.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.tmark import TMark
from repro.datasets.synthetic import RelationSpec, make_synthetic_hin

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_solvers.json"

#: Anderson must need at least this factor fewer total iterations.
REDUCTION_FLOOR = 1.5

#: The accelerated solvers measured against the plain baseline.
ACCELERATED = ("anderson", "aitken", "auto")

#: Chain hyper-parameters: a tiny restart weight makes the walk nearly
#: periodic on the homophilous graph, which is exactly the slow-mixing
#: regime the solvers exist for.
ALPHA, GAMMA, TOL, MAX_ITER = 0.01, 0.5, 1e-10, 6000


def _workload(seed: int = 7, n_nodes: int = 80):
    """A strongly homophilous 3-class HIN whose chains mix slowly."""
    return make_synthetic_hin(
        n_nodes,
        ["a", "b", "c"],
        [
            RelationSpec("strong", n_links=4 * n_nodes, homophily=0.98),
            RelationSpec("weak", n_links=n_nodes, homophily=0.95),
        ],
        feature_noise=0.05,
        seed=seed,
    )


def _fit(hin, solver: str):
    """Fit one solver; return (total iterations, argmax, seconds, ok)."""
    model = TMark(
        alpha=ALPHA,
        gamma=GAMMA,
        tol=TOL,
        max_iter=MAX_ITER,
        update_labels=False,
        solver=solver,
    )
    started = time.perf_counter()
    model.fit(hin)
    seconds = time.perf_counter() - started
    result = model.result_
    iterations = sum(h.n_iterations for h in result.histories)
    converged = all(h.converged for h in result.histories)
    return iterations, result.node_scores.argmax(axis=1), seconds, converged


def run_bench(seed: int = 7, assert_results: bool = True) -> dict:
    """Fit the slow workload under every solver; record the comparison."""
    hin = _workload(seed)
    plain_iters, plain_argmax, plain_seconds, plain_ok = _fit(hin, "plain")

    results = {
        "n_nodes": hin.n_nodes,
        "n_classes": hin.n_labels,
        "alpha": ALPHA,
        "gamma": GAMMA,
        "tol": TOL,
        "plain_iterations": plain_iters,
        "plain_seconds": plain_seconds,
        "all_converged": bool(plain_ok),
        "all_argmax_identical": True,
    }
    for solver in ACCELERATED:
        iters, argmax, seconds, ok = _fit(hin, solver)
        identical = bool(np.array_equal(argmax, plain_argmax))
        results[f"{solver}_iterations"] = iters
        results[f"{solver}_seconds"] = seconds
        results[f"{solver}_reduction"] = plain_iters / iters
        results[f"{solver}_argmax_identical"] = identical
        results["all_converged"] = results["all_converged"] and ok
        results["all_argmax_identical"] = (
            results["all_argmax_identical"] and identical
        )

    _record(results)
    if assert_results:
        assert results["all_converged"], "a solver failed to converge"
        assert results["all_argmax_identical"], (
            "an accelerated solver changed predictions: "
            + ", ".join(
                f"{s}={results[f'{s}_argmax_identical']}" for s in ACCELERATED
            )
        )
        assert results["anderson_reduction"] >= REDUCTION_FLOOR, (
            f"anderson only cut iterations {results['anderson_reduction']:.2f}x "
            f"(required: >= {REDUCTION_FLOOR}x; plain={plain_iters}, "
            f"anderson={results['anderson_iterations']})"
        )
    return results


def _record(results: dict) -> Path:
    """Append one entry to the ``BENCH_solvers.json`` trajectory."""
    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    else:
        payload = {
            "bench": "solvers",
            # Nightly CI re-checks every entry against these bounds
            # (benchmarks/check_trajectory.py).
            "guards": [
                {"field": "all_argmax_identical", "equals": True},
                {"field": "all_converged", "equals": True},
                {"field": "anderson_reduction", "min": REDUCTION_FLOOR},
            ],
            "entries": [],
        }
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), **results}
    payload["entries"].append(entry)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return BENCH_PATH


def test_solver_acceleration():
    """Bench-suite entry: argmax-identical + Anderson reduction floor."""
    results = run_bench(assert_results=True)
    assert results["anderson_reduction"] >= REDUCTION_FLOOR


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--assert",
        dest="assert_results",
        action="store_true",
        help="fail (non-zero exit) when a threshold is violated",
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    results = run_bench(seed=args.seed, assert_results=args.assert_results)
    for key, value in results.items():
        print(f"{key}: {value}")
    print(f"[recorded -> {BENCH_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
