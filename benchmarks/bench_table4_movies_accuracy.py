"""Table 4 — node classification accuracy on Movies, 9 methods x fractions.

Paper's shape: everyone is far below their DBLP numbers (0.44 -> 0.63
for the leaders) because the director link types are extremely sparse
and the tag features weak; EMR's link-aggregating ensemble is in the
winning group; accuracy climbs steadily with the label fraction.
"""

import numpy as np

from benchmarks.conftest import (
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_TRIALS,
    run_once,
    write_report,
)
from repro.experiments import run_experiment


def test_table4_movies_accuracy(benchmark):
    report = run_once(
        benchmark,
        run_experiment,
        "table4",
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        n_trials=BENCH_TRIALS,
    )
    write_report(report)
    print()
    print(report)

    grid = report.data["grid"]
    means = {name: np.mean(grid.means(name)) for name in grid.method_names}
    best = max(means.values())

    # The defining contrast with Table 3: nobody gets DBLP-level accuracy
    # at low label fractions.
    low_idx = 0
    assert all(cells[low_idx].mean < 0.8 for cells in grid.cells.values())

    # EMR and T-Mark are both in the leading group (paper: EMR first,
    # T-Mark second); neither collapses the way wvRN/ICA do in the paper.
    assert means["EMR"] >= best - 0.08
    assert means["T-Mark"] >= best - 0.08

    # Supervision helps: the leaders improve from 10% to 90% labels.
    for name in ("T-Mark", "EMR"):
        assert grid.cells[name][-1].mean > grid.cells[name][0].mean + 0.1

    # The attribute-only GI trails the leaders (paper: 0.29-0.39 band).
    assert means["GI"] < best - 0.05
