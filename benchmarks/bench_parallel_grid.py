"""Parallel-grid benchmark: the worker pool must pay for itself.

:func:`repro.experiments.harness.run_grid` with ``workers=N`` farms the
grid cells out to a fork-based process pool
(:mod:`repro.experiments.parallel`).  Because every cell derives its RNG
from a position-independent :func:`cell_seed_sequence`, the parallel
grid is *bit-identical* to the serial one — parallelism buys wall-clock
only.  This bench pins both halves of that promise on a ``q = 12``
synthetic workload (12 classes, ~600 nodes, 12 grid cells):

1. **Same answers, always.**  Every ``(method, fraction)`` cell of the
   4-worker grid must match the serial grid bit-for-bit (mean *and*
   sample std), on any machine.
2. **Speedup >= 2x, when the cores exist.**  With at least 4 usable
   cores, the 4-worker grid must run the 12 cells at least 2x faster
   than the serial loop.  On smaller machines (CI runners with 1-2
   cores) the timing half is recorded but not asserted — the entry's
   ``multicore`` field gates the guard (see
   ``benchmarks/check_trajectory.py``).

Results append to ``BENCH_parallel_grid.json`` at the repo root.

Run standalone (nightly CI does this)::

    PYTHONPATH=src python -m benchmarks.bench_parallel_grid --assert

or under pytest as part of the bench suite.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.tmark import TMark
from repro.datasets.synthetic import RelationSpec, make_synthetic_hin
from repro.experiments.harness import run_grid
from repro.experiments.parallel import available_workers, fork_available

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_parallel_grid.json"

#: Workers used for the parallel half of the comparison.
N_WORKERS = 4

#: The timing guard only applies when the pool can actually run
#: N_WORKERS cells concurrently.
SPEEDUP_FLOOR = 2.0

FRACTIONS = (0.1, 0.3, 0.5, 0.7)


def _workload(seed: int = 0, n_nodes: int = 600, n_classes: int = 12):
    """A q=12 HIN plus a 3-method roster -> 12 grid cells."""
    label_names = [f"c{c}" for c in range(n_classes)]
    hin = make_synthetic_hin(
        n_nodes,
        label_names,
        [
            RelationSpec("cites", n_links=4 * n_nodes, homophily=0.85),
            RelationSpec("co_author", n_links=3 * n_nodes, homophily=0.75),
        ],
        vocab_size=4000,
        seed=seed,
    )
    methods = [
        ("TMark", lambda: TMark(alpha=0.85, gamma=0.4, tol=1e-8)),
        ("TMark-a7", lambda: TMark(alpha=0.7, gamma=0.4, tol=1e-8)),
        ("TMark-g2", lambda: TMark(alpha=0.85, gamma=0.2, tol=1e-8)),
    ]
    return hin, methods


def _cells(grid):
    """Flatten a GridResult into {(method, fraction): (mean, std)}."""
    return {
        (method, fraction): (cell.mean, cell.std)
        for method, cells in grid.cells.items()
        for fraction, cell in zip(grid.fractions, cells)
    }


def run_bench(seed: int = 0, assert_results: bool = True) -> dict:
    """Run the grid serially and with 4 workers; record the comparison."""
    hin, methods = _workload(seed)
    multicore = fork_available() and available_workers() >= N_WORKERS

    # Warm the kernels (operator build + one fit) outside the timings.
    run_grid(hin, methods[:1], (FRACTIONS[0],), n_trials=1, seed=seed)

    # Best-of-repeats per path, so one background-load spike does not
    # decide the comparison.
    repeats = 2
    serial_seconds, serial_grid = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        grid = run_grid(hin, methods, FRACTIONS, n_trials=2, seed=seed)
        serial_seconds = min(serial_seconds, time.perf_counter() - started)
        serial_grid = grid

    parallel_seconds, parallel_grid = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        grid = run_grid(
            hin, methods, FRACTIONS, n_trials=2, seed=seed, workers=N_WORKERS
        )
        parallel_seconds = min(parallel_seconds, time.perf_counter() - started)
        parallel_grid = grid

    serial_cells = _cells(serial_grid)
    parallel_cells = _cells(parallel_grid)
    mismatched = sorted(
        f"{method}@{fraction:g}"
        for key in set(serial_cells) | set(parallel_cells)
        if serial_cells.get(key) != parallel_cells.get(key)
        for method, fraction in [key]
    )
    speedup = serial_seconds / parallel_seconds

    results = {
        "n_nodes": hin.n_nodes,
        "n_classes": hin.n_labels,
        "n_cells": len(serial_cells),
        "n_workers": N_WORKERS,
        "usable_cores": available_workers(),
        "multicore": bool(multicore),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
        "cells_identical": not mismatched,
        "n_mismatched_cells": len(mismatched),
    }
    _record(results)
    if assert_results:
        assert not mismatched, (
            f"parallel grid diverged from serial in {len(mismatched)} "
            f"cell(s): {', '.join(mismatched)}"
        )
        if multicore:
            assert speedup >= SPEEDUP_FLOOR, (
                f"{N_WORKERS}-worker grid only {speedup:.2f}x faster than "
                f"serial (required: >= {SPEEDUP_FLOOR}x on "
                f"{available_workers()} cores)"
            )
    return results


def _record(results: dict) -> Path:
    """Append one entry to the ``BENCH_parallel_grid.json`` trajectory."""
    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    else:
        payload = {
            "bench": "parallel_grid",
            # Nightly CI re-checks every entry against these bounds
            # (benchmarks/check_trajectory.py).  The speedup guard is
            # gated on the entry's ``multicore`` flag: single-core
            # runners record timings but cannot meaningfully assert
            # them.
            "guards": [
                {"field": "cells_identical", "equals": True},
                {"field": "speedup", "min": SPEEDUP_FLOOR, "gate": "multicore"},
            ],
            "entries": [],
        }
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), **results}
    payload["entries"].append(entry)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return BENCH_PATH


def test_parallel_grid_identical():
    """Bench-suite entry: bit-identical cells (+ speedup on multicore)."""
    results = run_bench(assert_results=True)
    assert results["n_cells"] == 12
    assert results["cells_identical"]


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--assert",
        dest="assert_results",
        action="store_true",
        help="fail (non-zero exit) when a threshold is violated",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    results = run_bench(seed=args.seed, assert_results=args.assert_results)
    for key, value in results.items():
        print(f"{key}: {value}")
    print(f"[recorded -> {BENCH_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
