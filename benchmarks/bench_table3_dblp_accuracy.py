"""Table 3 — node classification accuracy on DBLP, 9 methods x 9 fractions.

Paper's shape: T-Mark best essentially everywhere (0.928 -> 0.940);
TensorRrCc a hair behind; the collective baselines (Hcc, Hcc-ss, ICA,
wvRN+RL) in the 0.80-0.94 band; EMR below them; the attribute-only deep
nets (HN, GI) clearly weaker, GI especially so with scant labels.
"""

import numpy as np

from benchmarks.conftest import (
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_TRIALS,
    run_once,
    write_report,
)
from repro.experiments import run_experiment


def test_table3_dblp_accuracy(benchmark):
    report = run_once(
        benchmark,
        run_experiment,
        "table3",
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        n_trials=BENCH_TRIALS,
    )
    write_report(report)
    print()
    print(report)

    grid = report.data["grid"]
    means = {name: np.mean(grid.means(name)) for name in grid.method_names}

    # T-Mark wins on average (ties with TensorRrCc tolerated within noise).
    best = max(means.values())
    assert means["T-Mark"] >= best - 0.01

    # The paper's extension: T-Mark >= TensorRrCc overall.
    assert means["T-Mark"] >= means["TensorRrCc"] - 0.005

    # Attribute-only deep nets trail the collective methods.
    assert means["T-Mark"] > means["HN"] + 0.05
    assert means["T-Mark"] > means["GI"] + 0.05

    # Low-label regime: T-Mark's semi-supervised walk gives it a clear
    # edge at 10% labels (paper: 0.928 vs <=0.917 for everyone else).
    low_idx = grid.fractions.index(0.1) if 0.1 in grid.fractions else 0
    tmark_low = grid.cells["T-Mark"][low_idx].mean
    for name in ("ICA", "EMR", "HN", "GI"):
        assert tmark_low > grid.cells[name][low_idx].mean

    # Accuracy is in the paper's broad band, not degenerate.
    assert 0.75 <= means["T-Mark"] <= 1.0
