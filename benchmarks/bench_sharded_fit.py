"""Sharded-fit benchmark: shard workers must pay for themselves.

:meth:`TMark.fit` with ``shards=K, workers=N`` dispatches the
per-iteration O-propagation / R-contraction products to fork workers
(:mod:`repro.shard`).  Under the ``"rows"`` policy every worker computes
complete output rows with the exact serial operation sequence, so the
sharded fit is *bit-identical* to the serial one — sharding buys
wall-clock only.  This bench pins both halves of that promise on a
``q = 8`` synthetic workload (~30k nodes, ~900k links):

1. **Same answers, always.**  The 4-shard stationary scores must match
   the serial ones bit-for-bit (``scores_identical``), and an
   ``anderson``-accelerated sharded fit must predict the same classes
   as its serial twin (``argmax_identical_anderson``) — on any machine,
   gating nothing.
2. **Speedup >= 1.8x, when the cores exist.**  With at least 4 usable
   cores, the 4-worker sharded fit must run at least 1.8x faster than
   the serial loop.  On smaller machines (CI runners with 1-2 cores)
   the timing half is recorded but not asserted — the entry's
   ``multicore`` field gates the guard (see
   ``benchmarks/check_trajectory.py``).

Results append to ``BENCH_sharded_fit.json`` at the repo root.

Run standalone (nightly CI does this)::

    PYTHONPATH=src python -m benchmarks.bench_sharded_fit --assert

or under pytest as part of the bench suite.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.tmark import TMark, TMarkOperators
from repro.datasets.synthetic import RelationSpec, make_synthetic_hin
from repro.experiments.parallel import available_workers, fork_available
from repro.tensor.transition import build_transition_tensors

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_sharded_fit.json"

#: Shards and workers used for the sharded half of the comparison.
N_SHARDS = 4

#: The timing guard only applies when N_SHARDS workers can actually run
#: concurrently.
SPEEDUP_FLOOR = 1.8


def _workload(seed: int = 0, n_nodes: int = 30_000, n_classes: int = 8):
    """A large sparse HIN: the propagation products dominate the fit."""
    label_names = [f"c{c}" for c in range(n_classes)]
    hin = make_synthetic_hin(
        n_nodes,
        label_names,
        [
            RelationSpec("cites", n_links=18 * n_nodes, homophily=0.85),
            RelationSpec("co_author", n_links=12 * n_nodes, homophily=0.75),
        ],
        vocab_size=100,
        seed=seed,
    )
    # gamma=0 never touches W, so build only the (O, R) pair — the
    # default build_operators would materialise a dense 30k x 30k
    # similarity matrix (7.2 GB) the fit then ignores.  Sharing one
    # operator triple across every fit keeps the timings about the
    # chain loop, not the build.
    o_tensor, r_tensor = build_transition_tensors(hin.tensor)
    operators = TMarkOperators(
        o_tensor=o_tensor,
        r_tensor=r_tensor,
        w_matrix=None,
        shape=(hin.n_nodes, hin.n_relations),
        similarity_top_k=None,
        similarity_metric="cosine",
    )
    return hin, operators


def _fit(hin, operators, *, solver=None, shards=None, workers=None):
    # gamma=0: the O / R products are the sharded hot path under test.
    model = TMark(alpha=0.85, gamma=0.0, tol=1e-8, max_iter=60)
    model.fit(
        hin,
        operators=operators,
        solver=solver,
        shards=shards,
        workers=workers,
    )
    return model


def run_bench(seed: int = 0, assert_results: bool = True) -> dict:
    """Fit serially and with 4 shard workers; record the comparison."""
    hin, operators = _workload(seed)
    multicore = fork_available() and available_workers() >= N_SHARDS

    # Warm the kernels (one fit) outside the timings.
    _fit(hin, operators)

    # Best-of-repeats per path, so one background-load spike does not
    # decide the comparison.
    repeats = 2
    serial_seconds, serial = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        model = _fit(hin, operators)
        serial_seconds = min(serial_seconds, time.perf_counter() - started)
        serial = model

    sharded_seconds, sharded = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        model = _fit(hin, operators, shards=N_SHARDS, workers=N_SHARDS)
        sharded_seconds = min(sharded_seconds, time.perf_counter() - started)
        sharded = model

    scores_identical = bool(
        np.array_equal(
            serial.result_.node_scores, sharded.result_.node_scores
        )
        and np.array_equal(
            serial.result_.relation_scores, sharded.result_.relation_scores
        )
    )

    serial_anderson = _fit(hin, operators, solver="anderson")
    sharded_anderson = _fit(
        hin, operators, solver="anderson", shards=N_SHARDS, workers=N_SHARDS
    )
    argmax_identical_anderson = bool(
        np.array_equal(serial_anderson.predict(), sharded_anderson.predict())
    )
    speedup = serial_seconds / sharded_seconds

    results = {
        "n_nodes": hin.n_nodes,
        "n_classes": hin.n_labels,
        "n_shards": N_SHARDS,
        "usable_cores": available_workers(),
        "multicore": bool(multicore),
        "serial_seconds": serial_seconds,
        "sharded_seconds": sharded_seconds,
        "speedup": speedup,
        "scores_identical": scores_identical,
        "argmax_identical_anderson": argmax_identical_anderson,
        "iterations": max(
            h.n_iterations for h in serial.result_.histories
        ),
    }
    _record(results)
    if assert_results:
        assert scores_identical, (
            f"{N_SHARDS}-shard fit diverged bitwise from the serial fit "
            f"on {hin.n_nodes} nodes"
        )
        assert argmax_identical_anderson, (
            f"{N_SHARDS}-shard anderson fit predicts different classes "
            "than the serial anderson fit"
        )
        if multicore:
            assert speedup >= SPEEDUP_FLOOR, (
                f"{N_SHARDS}-worker sharded fit only {speedup:.2f}x faster "
                f"than serial (required: >= {SPEEDUP_FLOOR}x on "
                f"{available_workers()} cores)"
            )
    return results


def _record(results: dict) -> Path:
    """Append one entry to the ``BENCH_sharded_fit.json`` trajectory."""
    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    else:
        payload = {
            "bench": "sharded_fit",
            # Nightly CI re-checks every entry against these bounds
            # (benchmarks/check_trajectory.py).  The identity guards are
            # ungated — bit-identity holds on any machine; the speedup
            # guard is gated on the entry's ``multicore`` flag.
            "guards": [
                {"field": "scores_identical", "equals": True},
                {"field": "argmax_identical_anderson", "equals": True},
                {"field": "speedup", "min": SPEEDUP_FLOOR, "gate": "multicore"},
            ],
            "entries": [],
        }
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), **results}
    payload["entries"].append(entry)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return BENCH_PATH


def test_sharded_fit_identical():
    """Bench-suite entry: bit-identical scores (+ speedup on multicore)."""
    results = run_bench(assert_results=True)
    assert results["scores_identical"]
    assert results["argmax_identical_anderson"]


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--assert",
        dest="assert_results",
        action="store_true",
        help="fail (non-zero exit) when a threshold is violated",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    results = run_bench(seed=args.seed, assert_results=args.assert_results)
    for key, value in results.items():
        print(f"{key}: {value}")
    print(f"[recorded -> {BENCH_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
