"""Fig. 7 — T-Mark accuracy vs alpha on NUS (Tagset1).

Paper's shape: on NUS the curve keeps climbing as alpha grows (with the
increment flattening past ~0.6), so large alpha is never harmful the way
it is on DBLP; the paper uses alpha = 0.9 here.
"""

import numpy as np

from benchmarks.conftest import (
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_TRIALS,
    run_once,
    write_report,
)
from repro.experiments import run_experiment


def test_fig7_alpha_sweep_nus(benchmark):
    report = run_once(
        benchmark,
        run_experiment,
        "fig7",
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        n_trials=BENCH_TRIALS,
    )
    write_report(report)
    print()
    print(report)

    alphas = np.asarray(report.data["alphas"])
    accuracy = np.asarray(report.data["accuracy"])

    # High-alpha region beats low-alpha region on average.
    low = accuracy[alphas <= 0.3].mean()
    high = accuracy[alphas >= 0.7].mean()
    assert high >= low

    # No catastrophic collapse anywhere in the sweep.
    assert accuracy.min() > 0.5
