"""Table 8 — T-Mark accuracy on NUS: Tagset1 HIN vs Tagset2 HIN.

Paper's shape: with relevant links (Tagset1) accuracy is ~0.95 already
at 10% labels and flat; with frequent-but-irrelevant links (Tagset2) it
caps around 0.69 no matter how much supervision is added.  The gap must
persist at *every* fraction.
"""

from benchmarks.conftest import (
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_TRIALS,
    run_once,
    write_report,
)
from repro.experiments import run_experiment


def test_table8_link_selection(benchmark):
    report = run_once(
        benchmark,
        run_experiment,
        "table8",
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        n_trials=BENCH_TRIALS,
    )
    write_report(report)
    print()
    print(report)

    grid = report.data["grid"]
    tagset1 = grid.means("Tagset1")
    tagset2 = grid.means("Tagset2")

    # Relevant links dominate at every label fraction.
    for f_idx, fraction in enumerate(grid.fractions):
        assert tagset1[f_idx] > tagset2[f_idx] + 0.1, (
            f"no Tagset1 advantage at fraction {fraction}"
        )

    # Tagset1 is strong from the smallest fraction (paper: 0.955 at 10%).
    assert tagset1[0] > 0.8

    # Tagset2 stays capped well below Tagset1's level even at 90% labels
    # (paper: 0.692 vs 0.961).
    assert tagset2[-1] < tagset1[-1] - 0.1
