"""Fig. 9 — T-Mark accuracy vs gamma on NUS (Tagset1).

Paper's shape: the curve is flat for gamma in [0, ~0.4] (the tag links
alone suffice) and then *drops* as the weak SIFT features take over;
feature-only is the worst point by far.
"""

import numpy as np

from benchmarks.conftest import (
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_TRIALS,
    run_once,
    write_report,
)
from repro.experiments import run_experiment


def test_fig9_gamma_sweep_nus(benchmark):
    report = run_once(
        benchmark,
        run_experiment,
        "fig9",
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        n_trials=BENCH_TRIALS,
    )
    write_report(report)
    print()
    print(report)

    gammas = np.asarray(report.data["gammas"])
    accuracy = np.asarray(report.data["accuracy"])

    relation_only = accuracy[0]
    feature_only = accuracy[-1]

    # The relational signal alone is strong; features alone are weak.
    assert relation_only > feature_only + 0.1

    # Low-gamma plateau: gamma = 0.4 is within noise of gamma = 0.
    low_region = accuracy[gammas <= 0.4]
    assert low_region.min() > relation_only - 0.1

    # Monotone-ish decline into the feature corner.
    high_region = accuracy[gammas >= 0.8]
    assert high_region.mean() < low_region.mean()
