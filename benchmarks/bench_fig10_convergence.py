"""Fig. 10 — convergence of the T-Mark iteration on all four datasets.

Paper's shape: the residual rho_t = ||x_t - x_{t-1}|| + ||z_t - z_{t-1}||
"drops to zero or keeps stable when the iteration number is larger than
10" on every dataset.
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once, write_report
from repro.experiments import run_experiment


def test_fig10_convergence_curves(benchmark):
    report = run_once(
        benchmark, run_experiment, "fig10", scale=BENCH_SCALE, seed=BENCH_SEED
    )
    write_report(report)
    print()
    print(report)

    curves = report.data["curves"]
    assert set(curves) == {"DBLP", "Movies", "NUS", "ACM"}

    for name, curve in curves.items():
        # Every chain converges...
        assert report.data["converged"][name], f"{name} did not converge"
        # ...quickly (paper: stable past iteration ~10; allow head-room).
        assert len(curve) <= 50, f"{name} took {len(curve)} iterations"
        # ...to a residual below the tolerance.
        assert curve[-1] < 1e-6
        # And the tail is far below the head (real decay, not a plateau).
        assert curve[-1] < curve[0] * 1e-3
