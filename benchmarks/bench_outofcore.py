"""Out-of-core scale benchmark: million-node fits in bounded memory.

The :mod:`repro.ooc` tier promises that a T-Mark fit over an on-disk
:class:`~repro.ooc.store.GraphStore` touches only ``O(nnz/chunk)``
resident memory while landing on the same stationary point as the
in-RAM path.  This bench pins the promise at scale: a synthetic
homophilous HIN with **2 million nodes and ~2.2 million links**
(:func:`repro.ooc.generate_ooc_store`) is generated straight to disk,
then fitted out-of-core in a *forked child process* whose peak RSS is
self-reported (``benchmarks/_mem.py``).

1. **Bounded memory.**  The fit child's peak RSS must stay at or below
   :data:`RSS_RATIO_CEILING` (50%) of the *analytic materialized
   footprint* — the bytes the in-memory path would pin for the same
   graph (COO tensor + normalised O/R structures + dense features +
   labels; see :func:`analytic_inmemory_footprint`).  Measured ~0.32.
2. **Convergence.**  Every per-class chain converges at ``tol = 1e-6``.
3. **Throughput.**  Edge throughput (``nnz * total chain iterations /
   fit seconds``) must clear :data:`THROUGHPUT_FLOOR` edges/s —
   measured ~1.2M/s; the floor is 10x looser so CI machines never
   flake on it.

The workload runs ``gamma = 0`` (no feature walk): at this scale a
dense ``W`` is impossible and a top-k ``W`` is a separate ablation —
the features still count toward the in-memory footprint because the
in-RAM ``HIN`` materializes them regardless.

Results append to ``BENCH_outofcore.json`` at the repo root; the guards
are gated on ``full_scale`` so reduced-size smoke runs
(``REPRO_OOC_BENCH_NODES``) record without asserting.

Run standalone (nightly CI does this)::

    PYTHONPATH=src python -m benchmarks.bench_outofcore --assert
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from benchmarks._mem import measure_in_child

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_outofcore.json"

#: The fit child's peak RSS over the analytic in-memory footprint.
RSS_RATIO_CEILING = 0.5

#: Minimum edges/second through the chunked chain updates.
THROUGHPUT_FLOOR = 100_000.0

#: Full-scale workload (the ISSUE's >= 2M nodes / >= 2M links floor).
FULL_NODES = 2_000_000
FULL_LINKS = 2_200_000

#: Chain hyper-parameters: restart-dominated, so the 2M-node fit
#: converges in ~10 iterations — the bench measures memory and
#: throughput, not mixing time.
ALPHA, GAMMA, TOL, MAX_ITER = 0.9, 0.0, 1e-6, 200

N_RELATIONS, N_LABELS, N_FEATURES = 2, 2, 64


def analytic_inmemory_footprint(
    n: int, m: int, q: int, d: int, nnz: int, n_pairs: int | None = None
) -> int:
    """Bytes the in-RAM path would pin for the same graph (documented).

    Components (4-byte sparse indices, the scipy default at this scale):

    * COO adjacency tensor: ``(3, nnz)`` int64 coords + float64 values;
    * normalised ``O``: per-relation CSC data+indices over ``nnz``,
      ``m`` indptr vectors, the ``(m, n)`` non-dangling indicator;
    * normalised ``R``: per-relation CSC over ``nnz`` plus the
      linked-pair indicator pattern (``<= nnz`` entries) and indptr;
    * dense features ``(n, d)`` float64 and the ``(n, q)`` bool labels.

    Deliberately *excluded*: the dense ``n x n`` fibre-sum intermediate
    the in-RAM ``R`` build allocates (32 TB at 2M nodes — the in-memory
    path cannot run at all, which only understates this footprint), the
    feature-walk matrix ``W`` (not built at ``gamma = 0`` on either
    path) and the chain state ``X``/``Z`` (identical on both paths).
    """
    if n_pairs is None:
        n_pairs = nnz
    coo = nnz * (3 * 8 + 8)
    o_tensor = nnz * (8 + 4) + m * (n + 1) * 4 + n * m
    r_tensor = nnz * (8 + 4) + n_pairs * (8 + 4) + (n + 1) * 4
    features = n * d * 8
    labels = n * q
    return coo + o_tensor + r_tensor + features + labels


def _generate(store_dir: str, n_nodes: int, n_links: int, seed: int) -> dict:
    """Child workload: write the synthetic store; report size + time."""
    from repro.ooc import generate_ooc_store

    started = time.perf_counter()
    store = generate_ooc_store(
        store_dir,
        n_nodes=n_nodes,
        n_links=n_links,
        n_relations=N_RELATIONS,
        n_labels=N_LABELS,
        n_features=N_FEATURES,
        seed=seed,
    )
    return {
        "n_nodes": store.n_nodes,
        "n_links": store.nnz,
        "generate_seconds": time.perf_counter() - started,
    }


def _fit(store_dir: str) -> dict:
    """Child workload: out-of-core fit; report convergence + accuracy."""
    import numpy as np

    from repro.ooc import fit_from_store

    started = time.perf_counter()
    model = fit_from_store(
        store_dir, alpha=ALPHA, gamma=GAMMA, tol=TOL, max_iter=MAX_ITER
    )
    seconds = time.perf_counter() - started
    result = model.result_
    truth = np.load(Path(store_dir) / "ground_truth.npy", mmap_mode="r")
    predicted = result.node_scores.argmax(axis=1)
    accuracy = float(np.mean(predicted == truth))
    return {
        "fit_seconds": seconds,
        "total_iterations": int(sum(h.n_iterations for h in result.histories)),
        "converged": bool(all(h.converged for h in result.histories)),
        "accuracy": accuracy,
    }


def run_bench(
    seed: int = 0,
    assert_results: bool = True,
    store_dir: str | None = None,
    n_nodes: int | None = None,
    n_links: int | None = None,
) -> dict:
    """Generate the scale store and fit it out-of-core, both in children."""
    n_nodes = n_nodes or int(os.environ.get("REPRO_OOC_BENCH_NODES", FULL_NODES))
    n_links = n_links or max(int(n_nodes * FULL_LINKS / FULL_NODES), 1)
    keep = store_dir is not None
    store_dir = store_dir or tempfile.mkdtemp(prefix="bench_ooc_")
    try:
        gen, gen_rss = measure_in_child(_generate, store_dir, n_nodes, n_links, seed)
        fit, fit_rss = measure_in_child(_fit, store_dir)
    finally:
        if not keep:
            shutil.rmtree(store_dir, ignore_errors=True)

    footprint = analytic_inmemory_footprint(
        gen["n_nodes"], N_RELATIONS, N_LABELS, N_FEATURES, gen["n_links"]
    )
    throughput = gen["n_links"] * fit["total_iterations"] / fit["fit_seconds"]
    results = {
        **gen,
        **fit,
        "alpha": ALPHA,
        "gamma": GAMMA,
        "tol": TOL,
        "n_features": N_FEATURES,
        "generate_rss_bytes": gen_rss,
        "fit_rss_bytes": fit_rss,
        "materialized_footprint_bytes": footprint,
        "rss_ratio": fit_rss / footprint,
        "edge_throughput": throughput,
        "full_scale": gen["n_nodes"] >= FULL_NODES and gen["n_links"] >= 2_000_000,
    }
    _record(results)
    if assert_results:
        assert results["converged"], "an out-of-core chain failed to converge"
        assert results["rss_ratio"] <= RSS_RATIO_CEILING, (
            f"fit child peaked at {fit_rss / 1e6:.0f} MB = "
            f"{results['rss_ratio']:.2f}x the {footprint / 1e6:.0f} MB "
            f"materialized footprint (ceiling: {RSS_RATIO_CEILING})"
        )
        assert throughput >= THROUGHPUT_FLOOR, (
            f"edge throughput {throughput:,.0f}/s below the "
            f"{THROUGHPUT_FLOOR:,.0f}/s floor"
        )
    return results


def _record(results: dict) -> Path:
    """Append one entry to the ``BENCH_outofcore.json`` trajectory."""
    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    else:
        payload = {
            "bench": "outofcore",
            # Nightly CI re-checks every entry against these bounds
            # (benchmarks/check_trajectory.py); reduced-scale smoke
            # entries record with full_scale=false and are not asserted.
            "guards": [
                {"field": "converged", "equals": True, "gate": "full_scale"},
                {
                    "field": "rss_ratio",
                    "max": RSS_RATIO_CEILING,
                    "gate": "full_scale",
                },
                {"field": "n_nodes", "min": FULL_NODES, "gate": "full_scale"},
                {"field": "n_links", "min": 2_000_000, "gate": "full_scale"},
                {
                    "field": "edge_throughput",
                    "min": THROUGHPUT_FLOOR,
                    "gate": "full_scale",
                },
            ],
            "entries": [],
        }
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), **results}
    payload["entries"].append(entry)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return BENCH_PATH


def test_outofcore_scale():
    """Bench-suite entry: bounded RSS + convergence at the env's scale."""
    results = run_bench(assert_results=False)
    assert results["converged"]
    if results["full_scale"]:
        assert results["rss_ratio"] <= RSS_RATIO_CEILING


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--assert",
        dest="assert_results",
        action="store_true",
        help="fail (non-zero exit) when a threshold is violated",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--store-dir",
        default=None,
        help="build (and keep) the store here instead of a temp directory",
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--links", type=int, default=None)
    args = parser.parse_args(argv)
    results = run_bench(
        seed=args.seed,
        assert_results=args.assert_results,
        store_dir=args.store_dir,
        n_nodes=args.nodes,
        n_links=args.links,
    )
    for key, value in results.items():
        print(f"{key}: {value}")
    print(f"[recorded -> {BENCH_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
