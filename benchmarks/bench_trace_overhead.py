"""Trace-overhead benchmark: observability must be free when disabled.

Four guarantees are measured and asserted on a reference T-Mark fit
(precomputed operators, fixed iteration count):

1. **Disabled recorder <2%.**  With the default
   :data:`~repro.obs.NULL_RECORDER` the instrumented chain loop pays
   only a handful of hoisted-flag branch checks per iteration.  The
   bench times that exact guard pattern directly and asserts the total
   is under 2% of the measured fit wall-clock.
2. **Phase coverage within 10%.**  A traced fit's per-iteration phase
   timings (the five :data:`~repro.obs.CHAIN_PHASES`) must sum to
   within 10% of the fit's own measured wall-clock, so per-phase
   attribution can be trusted by future perf work.
3. **Invariant probes <5% on top of tracing.**  The per-iteration
   ``invariant_probe`` reductions (simplex mass drift, min entries,
   negativity counts — see :mod:`repro.obs.health`) ride inside the
   already-traced emit block.  Comparing a probes-on traced fit against
   a probes-off traced fit isolates their cost, which must stay below
   5% of the traced fit wall-clock.  The probes are read-only, so all
   variants produce bit-identical scores (also asserted).
4. **Spans-enabled tracing <=5% over untraced.**  An enabled recorder
   now also collects hierarchical :func:`~repro.obs.spans.span` events
   (``fit_chains`` inside the fit, plus whatever ambient span encloses
   it).  The traced variant runs under an ambient root span so the full
   span machinery — contextvar resolution, parent linkage, one emit per
   close — is engaged, and its paired-median slowdown over the untraced
   fit must stay within 5% (``spans_overhead_fraction``, recorded with
   ``spans_enabled: true`` so the trajectory guard gates on it).

Results append to ``BENCH_trace_overhead.json`` at the repo root — the
start of the benchmark trajectory future perf PRs extend.

Run standalone (CI does this)::

    PYTHONPATH=src python -m benchmarks.bench_trace_overhead --assert

or under pytest as part of the bench suite.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import TMark
from repro.core.tmark import build_operators
from repro.datasets import make_dblp
from repro.obs import JsonlTraceRecorder, read_trace, summarize_trace, use_recorder
from repro.obs.spans import span

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_trace_overhead.json"

#: Chain hyper-parameters of the reference fit.  The tiny tolerance
#: keeps chains running until they hit an exact fixed point (or the
#: iteration budget); the fit is deterministic and tracing never
#: reorders a floating-point op, so the disabled and traced fits
#: execute an identical number of iterations either way.
FIT_PARAMS = dict(alpha=0.85, gamma=0.5, label_threshold=0.8, tol=1e-300, max_iter=60)

#: Branch checks per iteration in ``TMark._run_chains_batched`` when the
#: recorder is disabled (five phase guards + the emit-block guard).
GUARDS_PER_ITERATION = 7


def _reference_problem(seed: int = 0):
    """A DBLP-like training view plus its precomputed operator triple.

    Sized so one fit takes ~150 ms: large enough that per-rep scheduler
    jitter stays small against the single-digit-percent overhead
    fractions this bench asserts, small enough to keep the full
    three-variant measurement under half a minute.
    """
    hin = make_dblp(n_authors=2500, attendees_per_conference=60, seed=seed)
    rng = np.random.default_rng(seed)
    train = hin.masked(rng.random(hin.n_nodes) < 0.2)
    operators = build_operators(train)
    return train, operators


def _fit_once(train, operators, recorder=None) -> TMark:
    model = TMark(**FIT_PARAMS)
    model.fit(train, operators=operators, recorder=recorder)
    return model


def _disabled_guard_seconds(n_iterations: int, reps: int = 200) -> float:
    """Measure the per-fit cost of the disabled-recorder guard checks.

    Executes the exact pattern the chain loop runs when tracing is off —
    a hoisted boolean flag tested :data:`GUARDS_PER_ITERATION` times per
    iteration — ``reps`` times over ``n_iterations`` and returns the
    mean per-fit cost.
    """
    from repro.obs import NULL_RECORDER

    timed = NULL_RECORDER.enabled
    sink = 0
    started = time.perf_counter()
    for _ in range(n_iterations * reps):
        if timed:
            sink += 1
        if timed:
            sink += 1
        if timed:
            sink += 1
        if timed:
            sink += 1
        if timed:
            sink += 1
        if timed:
            sink += 1
        if timed:
            sink += 1
    elapsed = time.perf_counter() - started
    assert sink == 0
    return elapsed / reps


def run_bench(trace_dir=None, repeats: int = 5, assert_results: bool = True) -> dict:
    """Run the overhead measurement; returns (and records) the results."""
    train, operators = _reference_problem()
    trace_dir = Path(tempfile.mkdtemp(prefix="trace-bench-")) if trace_dir is None else Path(trace_dir)

    _fit_once(train, operators)  # warm-up (allocator, caches)
    disabled_times, enabled_times, probed_times = [], [], []
    model = traced_model = probed_model = None
    last_trace = None
    for rep in range(repeats):  # interleaved rounds damp scheduler drift
        started = time.perf_counter()
        model = _fit_once(train, operators)
        disabled_times.append(time.perf_counter() - started)
        last_unprobed_trace = trace_dir / f"trace_unprobed_{rep}.jsonl"
        with JsonlTraceRecorder(last_unprobed_trace, probes=False) as recorder:
            # The ambient root span makes this the full spans-enabled
            # path: contextvar lookup, parent linkage for the nested
            # fit_chains span, and one span event per close.
            started = time.perf_counter()
            with use_recorder(recorder), span("bench_fit"):
                traced_model = _fit_once(train, operators, recorder=recorder)
            enabled_times.append(time.perf_counter() - started)
        last_trace = trace_dir / f"trace_{rep}.jsonl"
        with JsonlTraceRecorder(last_trace, probes=True) as recorder:
            started = time.perf_counter()
            probed_model = _fit_once(train, operators, recorder=recorder)
            probed_times.append(time.perf_counter() - started)

    n_iterations = max(h.n_iterations for h in model.result_.histories)
    disabled_best = min(disabled_times)
    enabled_best = min(enabled_times)
    probed_best = min(probed_times)

    def _same_scores(other) -> bool:
        return bool(
            np.array_equal(
                model.result_.node_scores, other.result_.node_scores
            )
            and np.array_equal(
                model.result_.relation_scores, other.result_.relation_scores
            )
        )

    scores_identical = _same_scores(probed_model)
    traced_identical = _same_scores(traced_model)

    summary = summarize_trace(read_trace(last_trace))
    # Coverage is judged on the probes-off trace: probe reductions and
    # their event writes happen outside the phase timers by design, so
    # they would dilute the attribution they have no part in.
    unprobed_summary = summarize_trace(read_trace(last_unprobed_trace))
    coverage = unprobed_summary.phase_coverage

    guard_seconds = _disabled_guard_seconds(n_iterations)
    guard_fraction = guard_seconds / disabled_best
    # Paired per-rep ratios: the probed and unprobed fits of one round
    # run back to back, so slow machine drift cancels inside each ratio;
    # the median over rounds then damps single-round scheduler spikes —
    # a far tighter estimator than the ratio of the two minima.
    probe_fraction = float(
        np.median([p / e for p, e in zip(probed_times, enabled_times)])
    ) - 1.0
    # The same paired estimator for the spans-enabled traced fit against
    # the untraced fit of the same round.
    spans_fraction = float(
        np.median([e / d for e, d in zip(enabled_times, disabled_times)])
    ) - 1.0

    results = {
        "n_nodes": train.n_nodes,
        "n_classes": train.n_labels,
        "n_relations": train.n_relations,
        "iterations": n_iterations,
        "repeats": repeats,
        "disabled_seconds": disabled_best,
        "enabled_seconds": enabled_best,
        "probed_seconds": probed_best,
        "tracing_overhead_fraction": enabled_best / disabled_best - 1.0,
        "probe_overhead_fraction": probe_fraction,
        "spans_enabled": True,
        "spans_overhead_fraction": spans_fraction,
        "n_spans": unprobed_summary.n_spans,
        "probed_scores_identical": scores_identical,
        "traced_scores_identical": traced_identical,
        "disabled_guard_seconds": guard_seconds,
        "disabled_guard_fraction": guard_fraction,
        "phase_coverage": coverage,
        "phase_totals": dict(summary.phase_totals),
        "n_probes": summary.n_probes,
        "max_mass_drift": summary.max_mass_drift,
        "trace_events": summary.n_events,
    }
    _record(results)
    if assert_results:
        assert guard_fraction < 0.02, (
            f"disabled recorder guard cost {guard_fraction:.4%} of the fit "
            f"(limit 2%)"
        )
        assert 0.90 <= coverage <= 1.05, (
            f"phase timings cover {coverage:.1%} of the traced fit "
            f"wall-clock (required: within 10%)"
        )
        assert probe_fraction < 0.05, (
            f"invariant probes cost {probe_fraction:.4%} on top of tracing "
            f"(limit 5%)"
        )
        assert spans_fraction <= 0.05, (
            f"spans-enabled tracing cost {spans_fraction:.4%} over the "
            f"untraced fit (limit 5%)"
        )
        assert scores_identical, (
            "probe-enabled fit diverged from the untraced fit (probes must "
            "be read-only)"
        )
        assert traced_identical, (
            "spans-enabled traced fit diverged from the untraced fit "
            "(tracing must never reorder a floating-point op)"
        )
        assert unprobed_summary.n_spans >= 2, (
            f"expected at least the bench_fit and fit_chains spans in the "
            f"traced fit, got {unprobed_summary.n_spans}"
        )
        assert summary.n_probes == n_iterations, (
            f"expected one invariant_probe per iteration, got "
            f"{summary.n_probes} for {n_iterations} iterations"
        )
    return results


def _record(results: dict) -> Path:
    """Append one entry to the ``BENCH_trace_overhead.json`` trajectory."""
    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    else:
        payload = {"bench": "trace_overhead", "entries": []}
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), **results}
    payload["entries"].append(entry)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return BENCH_PATH


def test_trace_overhead(tmp_path):
    """Bench-suite entry: guard <2%, coverage within 10%, probes <5%."""
    results = run_bench(trace_dir=tmp_path, repeats=3, assert_results=True)
    assert results["iterations"] > 0
    assert results["trace_events"] > results["iterations"]
    assert results["n_probes"] == results["iterations"]
    assert results["probed_scores_identical"]
    assert results["traced_scores_identical"]
    assert results["spans_enabled"] is True
    assert results["n_spans"] >= 2


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--assert",
        dest="assert_results",
        action="store_true",
        help="fail (non-zero exit) when a threshold is violated",
    )
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)
    results = run_bench(repeats=args.repeats, assert_results=args.assert_results)
    for key, value in results.items():
        print(f"{key}: {value}")
    print(f"[recorded -> {BENCH_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
