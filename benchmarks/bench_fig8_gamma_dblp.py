"""Fig. 8 — T-Mark accuracy vs the feature/relation mix gamma on DBLP.

Paper's shape: feature-only (gamma = 1) is clearly the worst; relation-
only (gamma = 0) is already strong; mixing both beats either extreme
(the paper peaks at gamma = 0.6).
"""

import numpy as np

from benchmarks.conftest import (
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_TRIALS,
    run_once,
    write_report,
)
from repro.experiments import run_experiment


def test_fig8_gamma_sweep_dblp(benchmark):
    report = run_once(
        benchmark,
        run_experiment,
        "fig8",
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        n_trials=BENCH_TRIALS,
    )
    write_report(report)
    print()
    print(report)

    gammas = report.data["gammas"]
    accuracy = report.data["accuracy"]
    assert gammas[0] == 0.0 and gammas[-1] == 1.0

    relation_only = accuracy[0]
    feature_only = accuracy[-1]
    best = max(accuracy)
    peak_idx = int(np.argmax(accuracy))

    # Mixing both sources beats either pure corner (the paper's central
    # Fig. 8 message: "the result is better when using both relational
    # and feature information").
    assert best > feature_only + 0.05
    assert best >= relation_only

    # The peak is interior — neither corner wins.
    assert 0 < peak_idx < len(gammas) - 1
