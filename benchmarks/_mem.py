"""Shared peak-RSS measurement helpers for the benchmark suite.

Linux reports ``ru_maxrss`` in KiB (macOS in bytes); these helpers
normalise to bytes.  ``measure_in_child`` is the primitive the
out-of-core bench builds on: the workload runs in a *forked* child that
self-reports its own high-water mark through a pipe, so the number
excludes the parent's allocations — ``RUSAGE_CHILDREN`` would conflate
every previously reaped child (workers, earlier measurements) into one
monotonic maximum.
"""

from __future__ import annotations

import resource
import sys
from multiprocessing import get_context


def peak_rss_bytes(who: str = "self") -> int:
    """Peak resident set size in bytes, for this process or its children.

    Parameters
    ----------
    who:
        ``"self"`` — this process's own high-water mark;
        ``"children"`` — the maximum over all *reaped* child processes
        (useful as a cheap upper bound when the child cannot report).
    """
    if who == "self":
        usage = resource.getrusage(resource.RUSAGE_SELF)
    elif who == "children":
        usage = resource.getrusage(resource.RUSAGE_CHILDREN)
    else:
        raise ValueError(f"who must be 'self' or 'children', got {who!r}")
    scale = 1 if sys.platform == "darwin" else 1024
    return int(usage.ru_maxrss) * scale


def measure_in_child(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` in a forked child; return ``(result, rss)``.

    ``rss`` is the child's own peak RSS in bytes, self-reported just
    before it exits.  Fork (not spawn) start method: the target and its
    arguments never cross a pickle boundary, so closures and open
    handles work, and the child's baseline RSS is the parent's resident
    set at fork time — keep the parent lean before calling.

    Raises ``RuntimeError`` when the child's workload raised (the repr
    travels back over the pipe) or died without reporting.
    """
    context = get_context("fork")
    receiver, sender = context.Pipe(duplex=False)

    def _target(conn):
        try:
            result = fn(*args, **kwargs)
            conn.send(("ok", result, peak_rss_bytes("self")))
        except BaseException as exc:  # report, don't hang the parent
            conn.send(("error", repr(exc), None))
        finally:
            conn.close()

    process = context.Process(target=_target, args=(sender,))
    process.start()
    sender.close()
    try:
        status, payload, rss = receiver.recv()
    except EOFError:
        process.join()
        raise RuntimeError(
            f"measured child died without reporting (exitcode {process.exitcode})"
        ) from None
    process.join()
    if status != "ok":
        raise RuntimeError(f"measured child failed: {payload}")
    return payload, rss
