"""Ablation — the Eq. 12 acceptance threshold lambda.

The paper introduces lambda but reports no value or sensitivity study.
This bench sweeps lambda at 10% labels on DBLP.  Expected shape: very
permissive thresholds (lambda <= ~0.5) destabilise the restart vector
(too many wrong acceptances get anchor-level restart mass) while strict
ones converge to the no-update TensorRrCc behaviour; a high-but-not-1
band is best.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, RESULTS_DIR, run_once
from repro.core import TMark, TensorRrCc
from repro.datasets import make_dblp
from repro.ml.metrics import accuracy
from repro.ml.splits import stratified_fraction_split
from repro.utils.rng import spawn_rngs

LAMBDAS = (0.2, 0.5, 0.7, 0.8, 0.9, 0.99)


@pytest.fixture(scope="module")
def dblp():
    return make_dblp(
        n_authors=max(80, int(400 * BENCH_SCALE)),
        attendees_per_conference=max(10, int(35 * BENCH_SCALE**0.5)),
        seed=BENCH_SEED,
    )


def _mean_accuracy(hin, factory, n_trials=3):
    y = hin.y
    accs = []
    for rng in spawn_rngs(BENCH_SEED, n_trials):
        mask = stratified_fraction_split(y, 0.1, rng=rng)
        model = factory().fit(hin.masked(mask))
        accs.append(accuracy(y[~mask], model.predict()[~mask]))
    return float(np.mean(accs))


def test_ablation_lambda_sweep(benchmark, dblp):
    def run_sweep():
        results = {}
        for lam in LAMBDAS:
            results[lam] = _mean_accuracy(
                dblp,
                lambda lam=lam: TMark(alpha=0.8, gamma=0.6, label_threshold=lam),
            )
        results["no-update"] = _mean_accuracy(
            dblp, lambda: TensorRrCc(alpha=0.8, gamma=0.6)
        )
        return results

    results = run_once(benchmark, run_sweep)
    lines = ["Ablation — Eq. 12 threshold lambda (DBLP, 10% labels):"]
    lines += [f"  lambda={key}: {acc:.3f}" for key, acc in results.items()]
    report = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_lambda.txt").write_text(report + "\n")
    print("\n" + report)

    frozen = results["no-update"]
    best_lambda = max(LAMBDAS, key=lambda lam: results[lam])

    # A high-but-not-maximal lambda beats the frozen restart.
    assert results[best_lambda] >= frozen - 0.01
    assert 0.5 < best_lambda <= 0.99

    # The permissive end is clearly worse than the best setting —
    # accepting half-confident nodes pollutes the restart vector.
    assert results[0.2] < results[best_lambda]