"""Tables 9 & 10 — per-class top-12 tag rankings in each NUS tag set.

Paper's shape: in Tagset1 the Scene and Object top-12 lists are almost
disjoint and semantically aligned with each class; in Tagset2 the two
lists largely coincide (the frequent tags discriminate nothing).
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once, write_report
from repro.experiments import run_experiment


def test_table9_10_per_class_tags(benchmark):
    report = run_once(
        benchmark, run_experiment, "table9_10", scale=BENCH_SCALE, seed=BENCH_SEED
    )
    write_report(report)
    print()
    print(report)

    overlap1 = report.data["tagset1"]["overlap"]
    overlap2 = report.data["tagset2"]["overlap"]

    # Tagset1's class rankings are "quite different" (paper) — Tagset2's
    # are "similar, only a small difference in orders".
    assert overlap1 <= 6
    assert overlap2 > overlap1

    # Tagset1 rankings align with the tags' ground-truth class: most of
    # the Scene top-12 are scene-flavoured tags, likewise for Object.
    tag_classes = report.data["tagset1"]["tag_classes"]
    rankings = report.data["tagset1"]["rankings"]
    for cls, ranked in rankings.items():
        hits = sum(1 for tag in ranked if tag_classes[tag] == cls)
        assert hits >= 8, f"{cls} top-12 only has {hits} matching tags"
