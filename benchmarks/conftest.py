"""Shared infrastructure for the benchmark suite.

Every ``bench_*`` file regenerates one paper table or figure:

* the experiment runs once inside the pytest-benchmark timer
  (``rounds=1`` — these are end-to-end experiment timings, not
  micro-benchmarks);
* the reproduced rows/series are written to ``benchmarks/results/<id>.txt``
  so the artefacts survive the run;
* assertions check the paper's *qualitative shape* (who wins, where the
  crossovers fall), not absolute numbers — the substrate is a calibrated
  synthetic generator, not the authors' datasets.

``REPRO_BENCH_SCALE`` (default 0.6) and ``REPRO_BENCH_TRIALS``
(default 2) trade fidelity for speed.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Dataset-size multiplier for all benches.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.6"))

#: Random splits per grid cell (the paper uses 10).
BENCH_TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "2"))

#: Root seed for all benches.
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

RESULTS_DIR = Path(__file__).parent / "results"


def write_report(report) -> Path:
    """Persist a runner report under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{report.experiment_id}.txt"
    path.write_text(str(report) + "\n", encoding="utf-8")
    return path


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_trials() -> int:
    return BENCH_TRIALS
