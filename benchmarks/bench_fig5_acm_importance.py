"""Fig. 5 — relative importance of the six ACM link types per class.

Paper's shape: the importance profiles are similar across classes, with
"concept" and "conference" clearly more important than the rest.
"""

import numpy as np

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once, write_report
from repro.experiments import run_experiment


def test_fig5_relation_importance(benchmark):
    report = run_once(
        benchmark, run_experiment, "fig5", scale=BENCH_SCALE, seed=BENCH_SEED
    )
    write_report(report)
    print()
    print(report)

    importance = report.data["mean_importance"]
    names = report.data["relation_names"]
    order = sorted(names, key=lambda n: -importance[n])

    # Concept and conference occupy the top two slots.
    assert set(order[:2]) == {"concept", "conference"}

    # Year (near-random links in the generator) is never a leader even
    # though it is the most voluminous link type.
    assert order.index("year") >= 2
    assert importance["concept"] > importance["year"]

    # Profiles are similar across classes (the paper: "the probability
    # distributions of link types over different classes are similar"):
    # the vast majority of classes put concept above year, and no class
    # inverts them by much.
    series = report.data["series"]
    concept_idx = names.index("concept")
    year_idx = names.index("year")
    wins = sum(
        1 for values in series.values() if values[concept_idx] > values[year_idx]
    )
    assert wins >= 0.7 * len(series)
    for cls, values in series.items():
        assert values[concept_idx] > values[year_idx] - 0.05, cls

    # Each class's importance vector is a distribution.
    for values in series.values():
        assert np.isclose(sum(values), 1.0)
