"""Extension — training-label noise and the Eq. 12 update.

The classic risk of ICA-style self-training is that mislabeled anchors
get *amplified* when confident predictions are folded back into the
supervision.  This bench corrupts a growing fraction of DBLP's training
labels and compares T-Mark (update on) against TensorRrCc (update off),
always evaluating against the true labels.

Expected shape: both degrade roughly linearly with the flip rate; the
update's advantage shrinks but does not invert — the candidate-relative
threshold only admits nodes that the *whole* walk agrees on, which keeps
single corrupted anchors from cascading.
"""

from benchmarks.conftest import (
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_TRIALS,
    run_once,
    write_report,
)
from repro.experiments import run_experiment


def test_label_noise_robustness(benchmark):
    report = run_once(
        benchmark,
        run_experiment,
        "label_noise",
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        n_trials=BENCH_TRIALS,
    )
    write_report(report)
    print()
    print(report)

    tmark = report.data["tmark"]
    frozen = report.data["tensorrrcc"]
    rates = report.data["rates"]

    # Noise hurts (sanity on the corruption machinery).
    assert tmark[-1] < tmark[0]
    assert frozen[-1] < frozen[0]

    # The update never falls behind the frozen restart by more than
    # noise — corrupted anchors are not catastrophically amplified.
    for idx, rate in enumerate(rates):
        assert tmark[idx] >= frozen[idx] - 0.03, f"update amplified noise at {rate}"

    # Degradation is graceful: 30% corrupted labels cost less than 20
    # accuracy points.
    assert tmark[0] - tmark[-1] < 0.20