"""Extension — the joint alpha x gamma sensitivity surface on DBLP.

The paper sweeps alpha (Fig. 6) and gamma (Fig. 8) separately; the joint
surface confirms the two stories compose: the optimum is interior in
gamma (both information sources help) and not at the alpha extremes.
"""

import numpy as np

from benchmarks.conftest import (
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_TRIALS,
    run_once,
    write_report,
)
from repro.experiments import run_experiment


def test_sensitivity_surface(benchmark):
    report = run_once(
        benchmark,
        run_experiment,
        "sensitivity",
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        n_trials=BENCH_TRIALS,
    )
    write_report(report)
    print()
    print(report)

    surface = np.asarray(report.data["surface"])
    gammas = report.data["gammas"]
    best = report.data["best"]

    # The best gamma is interior: mixing beats both pure corners.
    assert 0.0 < best["gamma"] < max(gammas)

    # Every alpha row prefers some interior gamma to the relational-only
    # corner or at least does not lose much to it (gamma column 0).
    interior_best = surface[:, 1:-1].max(axis=1)
    assert np.all(interior_best >= surface[:, 0] - 0.02)

    # The surface is well-behaved: no cell collapses below 0.5.
    assert surface.min() > 0.5