"""Sharded multi-process fits: contiguous node shards + fork workers.

Public surface:

* :func:`plan_shards` / :class:`ShardPlan` / :class:`Shard` — the
  balanced-nnz contiguous partitioner (rows policy for in-memory
  operators, chunk-aligned columns policy for store-backed ones).
* :func:`run_chains_sharded` — the multi-process twin of the serial
  chain runner (bit-identical scores under the rows policy for any
  shard count).
* :func:`shard_fallback_reason` — why sharding is unavailable here
  (``None`` when it is); callers fall back to the serial path with a
  ``RuntimeWarning`` exactly like the parallel grid does.

Entry points thread through the stack: ``TMark.fit(shards=K,
workers=N)``, :func:`repro.ooc.fit_from_store`,
``StreamingSession.reconverge`` and the CLI's ``run --shards``.
"""

from repro.shard.engine import run_chains_sharded, shard_fallback_reason
from repro.shard.plan import SHARD_POLICIES, Shard, ShardPlan, plan_shards

__all__ = [
    "SHARD_POLICIES",
    "Shard",
    "ShardPlan",
    "plan_shards",
    "run_chains_sharded",
    "shard_fallback_reason",
]
