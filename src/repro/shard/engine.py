"""The sharded chain runner: fork workers + shared buffers + fixed merge.

:func:`run_chains_sharded` is the multi-process twin of
``TMark._run_chains_batched``: the same lockstep per-class iteration,
with the two heavy per-iteration products — the O-propagation /
feature-walk and the R-contraction — dispatched shard by shard to
fork-based workers.  Everything else (Eq. 12 label updates, simplex
projections, solver proposals, residual bookkeeping, every telemetry
event) runs on the coordinator with the *literal* serial statements, so
the two runners cannot drift apart behaviourally.

Transport
---------
The iterate matrices (``x`` / ``z`` / the restart vectors / the fresh
``x`` halves) live in anonymous ``MAP_SHARED`` mmaps created before the
fork, so workers read the current iterate and write their output rows
with zero serialisation; the per-worker command pipes carry only the
active column list, the step weights and the (tiny) per-relation mass
vectors.  Workers build their operator row blocks lazily *after* the
fork — each child pays for its own shards only, and the parent never
holds a second operator copy.

Determinism
-----------
Under the ``"rows"`` policy every worker computes complete output rows
with the exact serial operation sequence (CSR row blocks reproduce the
matching rows of the full sparse products bit-for-bit), and every
column-global reduction — simplex projections, dangling-mass closed
forms, per-relation column sums — stays on the coordinator using the
same code the serial runner uses.  Scores are therefore bit-identical
for *any* shard count, including 1.  Under the ``"columns"`` policy
(store-backed chunked operators) each worker contributes a partial
product merged in fixed shard order: deterministic for a given K, and
argmax-identical across K — the accumulation-order caveat the chunked
operators already carry.

A worker exception travels back over the pipe as a formatted remote
traceback and re-raises on the coordinator as :class:`WorkerError`;
a dead worker (closed pipe) raises the same.  On platforms without
``fork`` — or inside an existing pool worker — callers consult
:func:`shard_fallback_reason` and run the serial path instead.
"""

from __future__ import annotations

import mmap
import time
import traceback
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.convergence import ChainHistory
from repro.core.labels import initial_label_vector, updated_label_vector
from repro.errors import ValidationError
from repro.experiments.parallel import (
    WorkerError,
    available_workers,
    fork_available,
    in_worker,
)
from repro.obs.recorder import CHAIN_PHASES, PhaseTimer, get_recorder
from repro.obs.spans import span
from repro.ooc.operators import _csc_block, release_pages
from repro.shard.plan import ShardPlan, plan_shards
from repro.solvers.base import PLAIN_SOLVER, make_solver, propose_safeguarded
from repro.tensor.transition import _column_sums
from repro.utils.simplex import project_to_simplex, uniform_distribution
from repro.utils.validation import check_positive_int


def shard_fallback_reason() -> str | None:
    """Why a sharded fit cannot run here (``None`` when it can).

    Mirrors the parallel-grid fallback contract: no nested pools (a
    sharded fit dispatched from inside a grid/trial worker runs
    serially), and no pools without the ``fork`` start method.
    """
    if in_worker():
        return "already inside a worker process (no nested pools)"
    if not fork_available():
        return "the 'fork' start method is unavailable on this platform"
    return None


def _shared_array(shape) -> np.ndarray:
    """A float64 array over an anonymous ``MAP_SHARED`` mapping.

    Created before the fork and inherited by every worker, so parent
    and children read and write the same physical pages — the zero-copy
    transport for the iterate matrices and output rows.
    """
    count = int(np.prod(shape))
    buffer = mmap.mmap(-1, max(count * 8, mmap.PAGESIZE))
    return np.frombuffer(buffer, dtype=np.float64, count=count).reshape(shape)


@dataclass
class _ShardContext:
    """Everything a worker needs, inherited through the fork."""

    policy: str
    n: int
    m: int
    alpha: float
    o_tensor: object
    r_tensor: object
    w_matrix: object  # None when beta == 0 (never touched then)
    X: np.ndarray     # (n, q) current x scores (read)
    L: np.ndarray     # (n, q) restart vectors (read)
    Z: np.ndarray     # (m, q) current z scores (read)
    XNEW: np.ndarray  # (n, q) fresh x halves (rows: write; r-round: read)
    P: np.ndarray | None     # (m + 1, n, q) rows-policy R products (write)
    PART: np.ndarray | None  # (S, n, q) columns-policy partials (write)


class _RowWorker:
    """Row-policy worker body: complete output rows, serial op order."""

    def __init__(self, context: _ShardContext, assigned):
        self.ctx = context
        self.assigned = list(assigned)
        self.o_nnz = tuple(context.o_tensor.relation_nnz)
        self.r_nnz = tuple(context.r_tensor.relation_nnz)
        self.o_blocks = {}
        self.r_blocks = {}
        self.pair_blocks = {}
        self.w_blocks = {}
        for shard in self.assigned:
            start, stop = shard.start, shard.stop
            self.o_blocks[shard.index] = context.o_tensor.row_blocks(start, stop)
            self.r_blocks[shard.index] = context.r_tensor.row_blocks(start, stop)
            self.pair_blocks[shard.index] = context.r_tensor.pair_rows(start, stop)
            if context.w_matrix is not None:
                w = context.w_matrix
                self.w_blocks[shard.index] = (
                    w[start:stop] if sp.issparse(w) else np.asarray(w)[start:stop]
                )

    def round_ox(self, active, rw, beta, dang):
        """Rows ``[start, stop)`` of the unprojected Eq. 10 step.

        Replicates the serial statements restricted to the shard's rows:
        ``alpha * l``, the per-relation ``z_k * (M_k @ x)`` accumulation
        with the *global* empty-slice skips, the coordinator-supplied
        dangling mass, and ``beta * (W @ x)``.
        """
        ctx = self.ctx
        x_act = ctx.X[:, active]
        z_act = ctx.Z[:, active] if rw > 0.0 else None
        for shard in self.assigned:
            start, stop = shard.start, shard.stop
            out = ctx.alpha * ctx.L[start:stop][:, active]
            if rw > 0.0:
                o_loc = np.zeros((stop - start, len(active)))
                for k, block in enumerate(self.o_blocks[shard.index]):
                    if self.o_nnz[k] == 0:
                        continue
                    contribution = block @ x_act
                    contribution *= z_act[k]
                    o_loc += contribution
                o_loc += dang / ctx.n
                out = out + rw * o_loc
            if beta > 0.0:
                out = out + beta * (self.w_blocks[shard.index] @ x_act)
            ctx.XNEW[start:stop][:, active] = out
        return None

    def round_r(self, active):
        """Rows of the Eq. 8 integrands ``x * (B_k @ x)`` into ``P``.

        The coordinator finishes the contraction with its own
        per-relation column sums, so nothing here crosses columns.
        """
        ctx = self.ctx
        y_act = ctx.XNEW[:, active]
        for shard in self.assigned:
            start, stop = shard.start, shard.stop
            y_loc = y_act[start:stop]
            for k, block in enumerate(self.r_blocks[shard.index]):
                if self.r_nnz[k] == 0:
                    continue
                ctx.P[k, start:stop][:, active] = y_loc * (block @ y_act)
            ctx.P[ctx.m, start:stop][:, active] = y_loc * (
                self.pair_blocks[shard.index] @ y_act
            )
        return None


class _ColumnWorker:
    """Column-policy worker body: chunk-streamed partial products."""

    def __init__(self, context: _ShardContext, assigned):
        self.ctx = context
        self.assigned = list(assigned)
        self.r_nnz = tuple(context.r_tensor.relation_nnz)

    def _chunks(self, start, stop, chunk):
        for j0 in range(start, stop, chunk):
            yield j0, min(j0 + chunk, stop)

    def round_ox(self, active, rw, beta, dang):
        """Partial ``rw * O`` + ``beta * W`` products over the shard's columns.

        Writes the ``(n, q_active)`` partial into ``PART[shard.index]``
        and returns the per-relation non-dangling coverage the
        coordinator needs for the closed-form dangling mass.
        """
        del dang  # columns policy: the coordinator derives it from coverage
        ctx = self.ctx
        x_act = ctx.X[:, active]
        covered_by_shard = {}
        for shard in self.assigned:
            start, stop = shard.start, shard.stop
            part = np.zeros((ctx.n, len(active)))
            if rw > 0.0:
                z_act = ctx.Z[:, active]
                o = ctx.o_tensor
                chunk = int(o.chunk_size)
                covered = np.zeros((ctx.m, len(active)))
                o_part = np.zeros_like(part)
                for k in range(ctx.m):
                    data, indices, indptr = o.relation_arrays(k)
                    acc = np.zeros_like(part)
                    nd_covered = np.zeros(len(active))
                    nd_row = o.nondangling_rows[k]
                    for j0, j1 in self._chunks(start, stop, chunk):
                        block = _csc_block(data, indices, indptr, j0, j1, ctx.n)
                        if block is not None:
                            acc += block @ x_act[j0:j1]
                        mask = np.asarray(nd_row[j0:j1])
                        if mask.any():
                            nd_covered += x_act[j0:j1][mask].sum(axis=0)
                    o_part += acc * z_act[k]
                    covered[k] = nd_covered
                    release_pages(data, indices, indptr, nd_row)
                part += rw * o_part
                covered_by_shard[shard.index] = covered
            if beta > 0.0:
                w = ctx.w_matrix
                if w.mode == "dense":
                    (dense,) = w.arrays()
                    part += beta * (dense[:, start:stop] @ x_act[start:stop])
                    release_pages(dense)
                else:
                    data, indices, indptr = w.arrays()
                    w_acc = np.zeros_like(part)
                    for j0, j1 in self._chunks(start, stop, int(w.chunk_size)):
                        block = _csc_block(data, indices, indptr, j0, j1, ctx.n)
                        if block is not None:
                            w_acc += block @ x_act[j0:j1]
                    part += beta * w_acc
                    release_pages(data, indices, indptr)
            ctx.PART[shard.index][:, active] = part
        return covered_by_shard

    def round_r(self, active):
        """Partial Eq. 8 reductions over the shard's columns.

        Returns ``{shard.index: (z_partial, linked_partial)}`` — small
        ``(m, q_active)`` / ``(q_active,)`` arrays the coordinator sums
        in fixed shard order.
        """
        ctx = self.ctx
        y_act = ctx.XNEW[:, active]
        r = ctx.r_tensor
        chunk = int(r.chunk_size)
        payload = {}
        for shard in self.assigned:
            start, stop = shard.start, shard.stop
            zp = np.zeros((ctx.m, len(active)))
            for k in range(ctx.m):
                if self.r_nnz[k] == 0:
                    continue
                data, indices, indptr = r.relation_arrays(k)
                acc = np.zeros_like(y_act)
                for j0, j1 in self._chunks(start, stop, chunk):
                    block = _csc_block(data, indices, indptr, j0, j1, ctx.n)
                    if block is not None:
                        acc += block @ y_act[j0:j1]
                zp[k] = _column_sums(y_act * acc)
                release_pages(data, indices, indptr)
            pair_indices, pair_indptr = r.pair_arrays()
            acc = np.zeros_like(y_act)
            for j0, j1 in self._chunks(start, stop, chunk):
                lo, hi = int(pair_indptr[j0]), int(pair_indptr[j1])
                if lo == hi:
                    continue
                local_indptr = np.asarray(
                    pair_indptr[j0 : j1 + 1], dtype=np.int64
                ) - lo
                block = sp.csc_matrix(
                    (np.ones(hi - lo), pair_indices[lo:hi], local_indptr),
                    shape=(ctx.n, j1 - j0),
                )
                acc += block @ y_act[j0:j1]
            linked = _column_sums(y_act * acc)
            release_pages(pair_indices, pair_indptr)
            payload[shard.index] = (zp, linked)
        return payload


def _worker_main(conn, context: _ShardContext, assigned) -> None:
    """Worker loop: build blocks lazily, answer rounds until ``stop``.

    Any exception — including a failed block build — is shipped back as
    an ``("err", type, message, traceback)`` reply so the coordinator
    re-raises it as a :class:`WorkerError` carrying the remote frames.
    """
    worker = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if message[0] == "stop":
            return
        try:
            if worker is None:
                body = _RowWorker if context.policy == "rows" else _ColumnWorker
                worker = body(context, assigned)
            if message[0] == "ox":
                _, active, rw, beta, dang = message
                payload = worker.round_ox(active, rw, beta, dang)
            elif message[0] == "r":
                payload = worker.round_r(message[1])
            else:
                raise ValidationError(f"unknown shard command {message[0]!r}")
            conn.send(("ok", payload))
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            try:
                conn.send(
                    ("err", type(exc).__name__, str(exc), traceback.format_exc())
                )
            except Exception:
                return


def _broadcast(conns, message):
    """Send one command to every worker; collect replies in worker order.

    Raises :class:`WorkerError` on an error reply (remote traceback in
    the message) or a dead pipe.
    """
    for conn in conns:
        conn.send(message)
    replies = []
    for index, conn in enumerate(conns):
        try:
            reply = conn.recv()
        except (EOFError, OSError):
            raise WorkerError(
                f"shard worker {index} died during {message[0]!r} "
                "(pipe closed before replying)"
            ) from None
        if reply[0] == "err":
            _, name, text, remote_tb = reply
            raise WorkerError(
                f"shard worker {index} failed during {message[0]!r}: "
                f"{name}: {text}\n--- remote traceback ---\n{remote_tb}"
            )
        replies.append(reply[1])
    return replies


def _merge_shard_payloads(replies) -> dict:
    """Fold per-worker ``{shard.index: value}`` replies into one mapping."""
    merged = {}
    for reply in replies:
        if reply:
            merged.update(reply)
    return merged


def run_chains_sharded(
    model,
    o_tensor,
    r_tensor,
    w_matrix,
    label_matrix,
    *,
    shards: int,
    workers: int | None = None,
    starts=None,
    recorder=None,
    solver: str = PLAIN_SOLVER,
):
    """Advance all per-class chains with the work sharded across forks.

    Drop-in replacement for ``TMark._run_chains_batched`` — same
    arguments plus ``shards`` / ``workers``, same
    ``(node_scores, relation_scores, histories)`` return, same event
    stream plus one ``shard_dispatch`` per shard and one
    ``boundary_exchange`` per iteration (all inside a ``shard_pool``
    span).  ``model`` supplies the chain hyper-parameters
    (``alpha`` / ``beta`` / ``tol`` / ``max_iter`` / label-update
    settings).  The caller is responsible for checking
    :func:`shard_fallback_reason` first.
    """
    rec = get_recorder() if recorder is None else recorder
    timed = rec.enabled
    probes_on = timed and rec.probes
    label_matrix = np.asarray(label_matrix, dtype=bool)
    n, q = label_matrix.shape
    m = r_tensor.shape[2]
    alpha, beta = model.alpha, model.beta
    relational_weight = model._relational_weight
    shards = check_positive_int(shards, "shards")
    if workers is not None:
        workers = check_positive_int(workers, "workers")
    plan = plan_shards(
        o_tensor, r_tensor, w_matrix if beta > 0.0 else None, shards
    )
    n_workers = min(plan.n_shards, workers or available_workers())
    # A dense feature-walk GEMM is the one product whose row blocks BLAS
    # does not reproduce bit-for-bit, so under the rows policy the
    # coordinator keeps it whole (the literal serial statement); sparse
    # W row blocks are exact and stay sharded.
    parent_feature_walk = (
        plan.policy == "rows" and beta > 0.0 and not sp.issparse(w_matrix)
    )

    L = _shared_array((n, q))
    X = _shared_array((n, q))
    Z = _shared_array((m, q))
    XNEW = _shared_array((n, q))
    rows_policy = plan.policy == "rows"
    P = _shared_array((m + 1, n, q)) if rows_policy else None
    PART = None if rows_policy else _shared_array((plan.n_shards, n, q))

    masks = [label_matrix[:, c] for c in range(q)]
    L[:] = np.column_stack([initial_label_vector(mask) for mask in masks])
    if starts is None:
        X[:] = L
        Z[:] = np.repeat(uniform_distribution(m)[:, None], q, axis=1)
    else:
        X[:] = np.column_stack(
            [
                project_to_simplex(np.asarray(starts[0][:, c], dtype=float))
                for c in range(q)
            ]
        )
        Z[:] = np.column_stack(
            [
                project_to_simplex(np.asarray(starts[1][:, c], dtype=float))
                for c in range(q)
            ]
        )
    histories = [
        ChainHistory(tol=model.tol, n_anchors=int(mask.sum())) for mask in masks
    ]
    use_solver = solver != PLAIN_SOLVER
    solvers = (
        [make_solver(solver, tol=model.tol) for _ in range(q)]
        if use_solver
        else None
    )
    if probes_on:
        o_dangling_share = float(o_tensor.dangling_share)
        r_unlinked_share = float(r_tensor.unlinked_share)
    r_nnz = tuple(r_tensor.relation_nnz)

    worker_beta = 0.0 if parent_feature_walk else beta
    context = _ShardContext(
        policy=plan.policy, n=n, m=m, alpha=alpha,
        o_tensor=o_tensor, r_tensor=r_tensor,
        w_matrix=w_matrix if worker_beta > 0.0 else None,
        X=X, L=L, Z=Z, XNEW=XNEW, P=P, PART=PART,
    )

    import multiprocessing

    mp = multiprocessing.get_context("fork")
    conns, procs = [], []
    with span(
        "shard_pool", recorder=rec, policy=plan.policy,
        n_shards=plan.n_shards, workers=n_workers,
    ):
        try:
            for widx in range(n_workers):
                assigned = [s for s in plan.shards if s.index % n_workers == widx]
                parent_conn, child_conn = mp.Pipe()
                proc = mp.Process(
                    target=_worker_main,
                    args=(child_conn, context, assigned),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                conns.append(parent_conn)
                procs.append(proc)
            if timed:
                for shard in plan.shards:
                    rec.emit(
                        "shard_dispatch",
                        index=shard.index,
                        start=shard.start,
                        stop=shard.stop,
                        nnz=shard.nnz,
                        halo_rows=shard.halo_size,
                        worker=shard.index % n_workers,
                        policy=plan.policy,
                    )
                rec.count("shard_dispatches", plan.n_shards)
            active = list(range(q))
            for t in range(1, model.max_iter + 1):
                if not active:
                    break
                if timed:
                    timer = PhaseTimer(CHAIN_PHASES)
                    timer.start("label_update")
                if model.update_labels and t > 2:
                    for c in active:
                        vector, n_accepted = updated_label_vector(
                            masks[c],
                            X[:, c],
                            model.label_threshold,
                            mode=model.threshold_mode,
                            return_accepted=True,
                        )
                        if use_solver and not np.array_equal(vector, L[:, c]):
                            solvers[c].map_changed()
                            if timed:
                                rec.emit(
                                    "solver_restart",
                                    t=t,
                                    class_index=c,
                                    solver=solvers[c].active_name,
                                    reason="label_update",
                                )
                                rec.count("solver_restarts")
                        L[:, c] = vector
                        histories[c].accepted_history.append(n_accepted)
                if timed:
                    timer.start("o_propagation")
                dang = (
                    o_tensor.dangling_mass(X[:, active], Z[:, active])
                    if rows_policy and relational_weight > 0.0
                    else None
                )
                exchange_started = time.perf_counter()
                ox_replies = _broadcast(
                    conns,
                    ("ox", list(active), relational_weight, worker_beta, dang),
                )
                exchange_seconds = time.perf_counter() - exchange_started
                if timed:
                    timer.start("feature_walk")
                if rows_policy:
                    x_new = XNEW[:, active]
                    if parent_feature_walk:
                        x_new = x_new + beta * (w_matrix @ X[:, active])
                else:
                    x_new = alpha * L[:, active]
                    for shard in plan.shards:
                        x_new += PART[shard.index][:, active]
                    if relational_weight > 0.0:
                        covered_map = _merge_shard_payloads(ox_replies)
                        covered = np.zeros((m, len(active)))
                        for shard in plan.shards:
                            covered += covered_map[shard.index]
                        x_act = X[:, active]
                        z_act = Z[:, active]
                        totals = _column_sums(x_act) * _column_sums(z_act)
                        dangling = np.maximum(
                            totals - _column_sums(z_act * covered), 0.0
                        )
                        x_new += relational_weight * (dangling / n)
                if timed:
                    timer.start("projection")
                for idx in range(len(active)):
                    x_new[:, idx] = project_to_simplex(x_new[:, idx])
                if use_solver:
                    if timed:
                        timer.stop()
                    for idx, c in enumerate(active):
                        accelerator = solvers[c]
                        step_started = time.perf_counter() if timed else 0.0
                        outcome, safe = propose_safeguarded(
                            accelerator,
                            X[:, c].copy(),
                            x_new[:, idx].copy(),
                            t=t,
                            residuals=histories[c].residuals,
                        )
                        if outcome == "none":
                            continue
                        if outcome == "rejected":
                            if timed:
                                rec.emit(
                                    "solver_restart",
                                    t=t,
                                    class_index=c,
                                    solver=accelerator.active_name,
                                    reason="safeguard",
                                    seconds=time.perf_counter() - step_started,
                                )
                                rec.count("solver_restarts")
                        else:
                            x_new[:, idx] = safe
                            if timed:
                                rec.emit(
                                    "solver_step",
                                    t=t,
                                    class_index=c,
                                    solver=accelerator.active_name,
                                    seconds=time.perf_counter() - step_started,
                                )
                                rec.count("solver_steps")
                if timed:
                    timer.start("r_contraction")
                XNEW[:, active] = x_new
                r_started = time.perf_counter()
                r_replies = _broadcast(conns, ("r", list(active)))
                exchange_seconds += time.perf_counter() - r_started
                z_new = np.empty((m, len(active)))
                if rows_policy:
                    for k in range(m):
                        if r_nnz[k] == 0:
                            z_new[k] = 0.0
                        else:
                            z_new[k] = _column_sums(P[k][:, active])
                    column_totals = _column_sums(x_new)
                    totals = column_totals * column_totals
                    linked_mass = _column_sums(P[m][:, active])
                else:
                    payloads = _merge_shard_payloads(r_replies)
                    z_partial = np.zeros((m, len(active)))
                    linked_mass = np.zeros(len(active))
                    for shard in plan.shards:
                        zp, lp = payloads[shard.index]
                        z_partial += zp
                        linked_mass += lp
                    for k in range(m):
                        z_new[k] = 0.0 if r_nnz[k] == 0 else z_partial[k]
                    column_totals = _column_sums(x_new)
                    totals = column_totals * column_totals
                dangling = np.maximum(totals - linked_mass, 0.0)
                z_new += dangling / m
                if timed:
                    timer.start("projection")
                still_active = []
                residuals = [] if timed else None
                for idx, c in enumerate(active):
                    z_col = project_to_simplex(z_new[:, idx])
                    rho = histories[c].record(
                        x_new[:, idx], X[:, c], z_col, Z[:, c]
                    )
                    X[:, c] = x_new[:, idx]
                    Z[:, c] = z_col
                    if rho >= model.tol:
                        still_active.append(c)
                    if timed:
                        residuals.append((c, rho))
                if timed:
                    timer.stop()
                    rec.emit(
                        "boundary_exchange",
                        t=t,
                        n_active=len(active),
                        policy=plan.policy,
                        halo_rows=plan.halo_total,
                        bytes_exchanged=8
                        * len(active)
                        * (2 * plan.halo_total + m * plan.n_shards),
                        seconds=exchange_seconds,
                    )
                    rec.count("boundary_exchanges")
                    rec.emit(
                        "chain_iteration",
                        t=t,
                        n_active=len(active),
                        phases=dict(timer.phases),
                    )
                    rec.count("chain_iterations")
                    for c, rho in residuals:
                        frozen = rho < model.tol
                        rec.emit(
                            "chain_class",
                            t=t,
                            class_index=c,
                            residual=rho,
                            frozen=frozen,
                        )
                        if frozen:
                            rec.count("frozen_columns")
                    if probes_on:
                        z_active = Z[:, active]
                        if model.update_labels and t > 2:
                            n_accepted = sum(
                                histories[c].accepted_history[-1] for c in active
                            )
                        else:
                            n_accepted = -1
                        rec.emit(
                            "invariant_probe",
                            t=t,
                            n_active=len(active),
                            x_mass_drift=float(
                                np.abs(x_new.sum(axis=0) - 1.0).max()
                            ),
                            z_mass_drift=float(
                                np.abs(z_active.sum(axis=0) - 1.0).max()
                            ),
                            x_min=float(x_new.min()),
                            z_min=float(z_active.min()),
                            n_negative=int(
                                (x_new < 0.0).sum() + (z_active < 0.0).sum()
                            ),
                            n_accepted=n_accepted,
                            o_dangling_share=o_dangling_share,
                            r_unlinked_share=r_unlinked_share,
                        )
                        rec.count("invariant_probes")
                active = still_active
        finally:
            for conn in conns:
                try:
                    conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
            for proc in procs:
                proc.join(timeout=10)
            for proc in procs:
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join(timeout=5)
            for conn in conns:
                conn.close()
    for c in active:
        histories[c].exhausted = True
    return X.copy(), Z.copy(), histories


__all__ = [
    "ShardPlan",
    "run_chains_sharded",
    "shard_fallback_reason",
]
