"""Shard planning: contiguous balanced-nnz partitions of the node set.

A :class:`ShardPlan` splits the node axis into K contiguous ranges so a
fit can advance all per-class chains shard by shard in fork workers
(:mod:`repro.shard.engine`).  Two policies exist, selected by the
operator kind:

* ``"rows"`` — in-memory :class:`~repro.tensor.transition` operators.
  Shard ``s`` owns output rows ``[start, stop)`` of every per-iteration
  product; the planner balances the summed per-row stored-entry counts
  of the O/R slices (plus the feature-walk matrix when sparse), because
  a row's propagation cost is proportional to its entries.  CSR row
  blocks reproduce the corresponding rows of the full products
  bit-for-bit, which is what lets the engine promise bit-identical
  scores for *any* shard count.
* ``"columns"`` — out-of-core :class:`~repro.ooc.operators.ChunkedOperators`.
  Shard ``s`` owns input columns ``[start, stop)`` of the on-disk CSC
  operators and contributes a partial product over all rows; boundaries
  are aligned to multiples of the store's ``chunk_size`` whenever the
  requested shard count allows it, so each worker streams whole mmap
  chunks (shards map 1:1 onto chunk runs).  Column partials are merged
  in fixed shard order — deterministic for a given K, argmax-identical
  across K (the same accumulation-order caveat the chunked operators
  already document versus the in-RAM path).

The *halo* of a rows-shard is the set of node indices outside its own
range that its operator blocks reference — the rows of ``x`` that must
cross the shard boundary each iteration.  The engine ships them through
shared memory, so the halo is what sizes the per-iteration
``boundary_exchange`` telemetry rather than an explicit copy loop.
Column shards consume the full iterate by construction and carry an
empty halo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.utils.validation import check_positive_int

#: The two partitioning policies (see the module docstring).
SHARD_POLICIES = ("rows", "columns")


@dataclass(frozen=True, eq=False)
class Shard:
    """One contiguous node range owned by a worker.

    Attributes
    ----------
    index:
        Position in the plan; also the merge order of this shard's
        contributions (the fixed-order merge the determinism contract
        rests on).
    start, stop:
        The half-open node range ``[start, stop)``.
    nnz:
        Summed stored-entry count of the shard's operator rows/columns —
        the load-balance weight it was placed by.
    halo:
        Sorted node indices outside ``[start, stop)`` that this shard's
        operator blocks read (empty for column shards).
    """

    index: int
    start: int
    stop: int
    nnz: int
    halo: np.ndarray = field(repr=False)

    @property
    def size(self) -> int:
        """Number of nodes in the shard."""
        return self.stop - self.start

    @property
    def halo_size(self) -> int:
        """Number of boundary rows this shard reads from other shards."""
        return int(self.halo.size)


@dataclass(frozen=True)
class ShardPlan:
    """A full partition of the node axis into contiguous shards."""

    policy: str
    n: int
    m: int
    shards: tuple[Shard, ...]

    @property
    def n_shards(self) -> int:
        """Number of shards (may be below the requested K on tiny graphs)."""
        return len(self.shards)

    @property
    def halo_total(self) -> int:
        """Summed halo sizes — the per-iteration boundary-exchange rows."""
        return sum(shard.halo_size for shard in self.shards)

    @property
    def boundaries(self) -> tuple[int, ...]:
        """The ``n_shards + 1`` partition boundaries, ``0 .. n``."""
        return tuple(s.start for s in self.shards) + (self.n,)


def _balanced_boundaries(weights: np.ndarray, n_parts: int) -> np.ndarray:
    """Contiguous boundaries splitting ``weights`` into balanced prefix sums.

    Returns a strictly increasing int array ``[0, ..., n]`` with at most
    ``n_parts`` parts; degenerate targets (empty ranges from skewed
    weights) are dropped rather than padded, so every returned shard is
    non-empty.
    """
    n = int(weights.size)
    n_parts = min(n_parts, n)
    cum = np.cumsum(weights, dtype=np.float64)
    total = float(cum[-1]) if n else 0.0
    if total > 0.0:
        targets = total * np.arange(1, n_parts) / n_parts
        inner = np.searchsorted(cum, targets, side="left") + 1
        bounds = np.concatenate(([0], inner, [n]))
    else:
        bounds = np.linspace(0, n, n_parts + 1).round().astype(np.int64)
    bounds = np.minimum(np.maximum.accumulate(bounds), n)
    return np.unique(bounds)


def _align_to_chunks(bounds: np.ndarray, n: int, chunk: int) -> np.ndarray:
    """Snap inner boundaries to chunk multiples when that keeps them distinct.

    Chunk-aligned shards stream whole mmap chunks (the 1:1 shard/chunk
    mapping); when the graph has fewer chunks than shards the raw
    balanced boundaries are kept instead — ``_csc_block`` is correct at
    any split point, alignment is purely a locality optimisation.
    """
    if chunk <= 0:
        return bounds
    aligned = bounds.astype(np.int64).copy()
    aligned[1:-1] = np.round(aligned[1:-1] / chunk).astype(np.int64) * chunk
    aligned = np.minimum(np.maximum.accumulate(aligned), n)
    aligned = np.unique(aligned)
    if aligned.size == bounds.size:
        return aligned
    return bounds


def _row_halo(start: int, stop: int, blocks, n: int) -> np.ndarray:
    """Out-of-range node indices referenced by a shard's CSR row blocks."""
    pieces = []
    for block in blocks:
        if sp.issparse(block):
            if block.nnz:
                pieces.append(block.indices)
        elif block is not None:
            # Dense feature-walk rows read every node.
            return np.concatenate(
                (np.arange(0, start), np.arange(stop, n))
            ).astype(np.int64)
    if not pieces:
        return np.empty(0, dtype=np.int64)
    cols = np.unique(np.concatenate(pieces)).astype(np.int64)
    return cols[(cols < start) | (cols >= stop)]


def plan_shards(o_tensor, r_tensor, w_matrix, n_shards: int) -> ShardPlan:
    """Partition the node axis of an operator triple into ``n_shards``.

    The policy is inferred from the operator kind: in-memory tensors
    (exposing ``row_blocks``) get the bit-identical ``"rows"`` policy,
    chunked store-backed operators (exposing ``column_nnz`` only) get
    the ``"columns"`` policy with chunk-aligned boundaries.  The
    returned plan may hold fewer shards than requested when the graph is
    too small to fill them.
    """
    n_shards = check_positive_int(n_shards, "shards")
    n = o_tensor.shape[0]
    m = o_tensor.shape[2]
    if hasattr(o_tensor, "row_blocks"):
        policy = "rows"
        weights = o_tensor.row_nnz() + r_tensor.row_nnz()
        if w_matrix is not None and sp.issparse(w_matrix):
            weights = weights + np.diff(w_matrix.tocsr().indptr)
        # Every row carries at least unit weight so all-dangling stretches
        # still spread across shards instead of collapsing into one.
        bounds = _balanced_boundaries(weights + 1, n_shards)
    elif hasattr(o_tensor, "column_nnz"):
        policy = "columns"
        weights = o_tensor.column_nnz() + r_tensor.column_nnz()
        bounds = _balanced_boundaries(weights + 1, n_shards)
        bounds = _align_to_chunks(bounds, n, int(o_tensor.chunk_size))
        weights = weights + 1
    else:
        raise ValidationError(
            "cannot plan shards: the O operator exposes neither row_blocks "
            f"(in-memory) nor column_nnz (chunked); got {type(o_tensor).__name__}"
        )
    if policy == "rows":
        weights = weights + 1
    shards = []
    for index, (start, stop) in enumerate(zip(bounds[:-1], bounds[1:])):
        start, stop = int(start), int(stop)
        nnz = int(weights[start:stop].sum() - (stop - start))
        if policy == "rows":
            blocks = list(o_tensor.row_blocks(start, stop))
            blocks += list(r_tensor.row_blocks(start, stop))
            blocks.append(r_tensor.pair_rows(start, stop))
            if w_matrix is not None:
                blocks.append(
                    w_matrix[start:stop]
                    if sp.issparse(w_matrix)
                    else np.asarray(w_matrix)[start:stop]
                )
            halo = _row_halo(start, stop, blocks, n)
        else:
            halo = np.empty(0, dtype=np.int64)
        shards.append(
            Shard(index=index, start=start, stop=stop, nnz=nnz, halo=halo)
        )
    return ShardPlan(policy=policy, n=n, m=m, shards=tuple(shards))
