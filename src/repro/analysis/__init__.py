"""Evaluation utilities for rankings and experiment post-processing.

The paper's second output — per-class link-type rankings — needs its own
evaluation vocabulary: precision against a ground-truth relevance set,
average precision, and rank-correlation / overlap between rankings.
These back the Table 2 / 5 / 9-10 benches and are exposed for downstream
analysis of :class:`~repro.core.tmark.TMarkResult` objects.
"""

from repro.analysis.ranking import (
    average_precision,
    kendall_tau,
    precision_at_k,
    ranking_overlap,
    relation_ranking_report,
)
from repro.analysis.theory import (
    SpectrumReport,
    fixed_point_spectrum,
    numerical_jacobian,
    tmark_update_map,
)

__all__ = [
    "precision_at_k",
    "average_precision",
    "kendall_tau",
    "ranking_overlap",
    "relation_ranking_report",
    "SpectrumReport",
    "fixed_point_spectrum",
    "numerical_jacobian",
    "tmark_update_map",
]
