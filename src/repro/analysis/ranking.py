"""Ranking-quality metrics.

All functions operate on *sequences of item names* (or ids) so they plug
directly into :meth:`TMarkResult.top_relations` /
:meth:`TMarkResult.ranked_relations` output.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import ValidationError


def precision_at_k(ranked: Sequence, relevant, k: int) -> float:
    """Fraction of the top ``k`` ranked items that are relevant."""
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k}")
    if not ranked:
        raise ValidationError("ranked sequence is empty")
    relevant = set(relevant)
    top = list(ranked)[:k]
    return sum(1 for item in top if item in relevant) / len(top)


def average_precision(ranked: Sequence, relevant) -> float:
    """Average precision of a ranking against a relevant set.

    The mean of precision@i over the rank positions ``i`` where a
    relevant item appears; 0 if no relevant item is ranked.
    """
    relevant = set(relevant)
    if not relevant:
        raise ValidationError("relevant set is empty")
    if not ranked:
        raise ValidationError("ranked sequence is empty")
    hits = 0
    precisions = []
    for position, item in enumerate(ranked, start=1):
        if item in relevant:
            hits += 1
            precisions.append(hits / position)
    if not precisions:
        return 0.0
    return float(np.mean(precisions))


def kendall_tau(ranking_a: Sequence, ranking_b: Sequence) -> float:
    """Kendall rank correlation between two orderings of the same items.

    +1 = identical order, -1 = exactly reversed.  Both rankings must be
    permutations of one another.
    """
    items_a, items_b = list(ranking_a), list(ranking_b)
    if set(items_a) != set(items_b) or len(items_a) != len(items_b):
        raise ValidationError("rankings must order the same set of items")
    if len(set(items_a)) != len(items_a):
        raise ValidationError("rankings must not contain duplicates")
    n = len(items_a)
    if n < 2:
        raise ValidationError("need at least two items for a rank correlation")
    position_b = {item: idx for idx, item in enumerate(items_b)}
    sequence = [position_b[item] for item in items_a]
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            if sequence[i] < sequence[j]:
                concordant += 1
            else:
                discordant += 1
    return (concordant - discordant) / (n * (n - 1) / 2)


def ranking_overlap(ranking_a: Sequence, ranking_b: Sequence, k: int) -> float:
    """Jaccard overlap of the two rankings' top-``k`` sets."""
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k}")
    top_a = set(list(ranking_a)[:k])
    top_b = set(list(ranking_b)[:k])
    union = top_a | top_b
    if not union:
        raise ValidationError("both rankings are empty")
    return len(top_a & top_b) / len(union)


def relation_ranking_report(
    result, ground_truth: Mapping[str, str], *, k: int = 5
) -> dict[str, dict[str, float]]:
    """Score a fitted model's per-class link rankings against ground truth.

    Parameters
    ----------
    result:
        A :class:`~repro.core.tmark.TMarkResult` (anything exposing
        ``label_names`` and ``ranked_relations``).
    ground_truth:
        Maps relation name -> the class it truly belongs to (e.g. the
        DBLP generator's ``conference_areas``).
    k:
        Depth for precision@k.

    Returns
    -------
    Per class: ``{"precision_at_k": ..., "average_precision": ...}``,
    plus a ``"macro"`` entry averaging over classes.
    """
    report: dict[str, dict[str, float]] = {}
    precisions = []
    average_precisions = []
    for label in result.label_names:
        ranked = [name for name, _ in result.ranked_relations(label)]
        relevant = {name for name, cls in ground_truth.items() if cls == label}
        if not relevant:
            continue
        p_at_k = precision_at_k(ranked, relevant, k)
        ap = average_precision(ranked, relevant)
        report[label] = {"precision_at_k": p_at_k, "average_precision": ap}
        precisions.append(p_at_k)
        average_precisions.append(ap)
    if not report:
        raise ValidationError("ground_truth covers none of the model's classes")
    report["macro"] = {
        "precision_at_k": float(np.mean(precisions)),
        "average_precision": float(np.mean(average_precisions)),
    }
    return report
