"""Numerical verification of the paper's Theorem 3 condition.

Theorem 3 guarantees uniqueness of the stationary pair when **1 is not
an eigenvalue of the Jacobian** ``DT`` of the update map

.. math::

    T(x, z) = \\big((1-\\alpha-\\beta)\\, O \\bar\\times_1 x \\bar\\times_3 z
              + \\beta W x + \\alpha l,\\;\\; R \\bar\\times_1 x \\bar\\times_2 x\\big)

at any interior fixed point.  The paper leaves the condition abstract;
this module makes it *checkable* for a fitted model: build ``T`` with
the restart vector frozen at its converged value, differentiate it
numerically at the stationary pair, and inspect the spectrum.  A
spectral radius below 1 additionally certifies local linear convergence
at rate ``rho(DT)`` — which is why the Fig. 10 curves decay
geometrically.

Dense and O((n+m)^2) work per class: intended for small to medium
networks and for the property-test suite, not for production fits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import feature_transition_matrix
from repro.core.labels import initial_label_vector, updated_label_vector
from repro.core.tmark import TMark
from repro.errors import NotFittedError, ValidationError
from repro.hin.graph import HIN
from repro.tensor.transition import build_transition_tensors


def tmark_update_map(hin: HIN, model: TMark, label_vec: np.ndarray):
    """The frozen-``l`` update map ``T([x; z]) -> [x'; z']`` as a callable.

    Uses the same operators a fit would build (including the implicit
    dangling mass), with the Eq. 12 restart vector frozen at
    ``label_vec`` so the map is smooth and Theorem 3 applies.
    """
    o_tensor, r_tensor = build_transition_tensors(hin.tensor)
    w_matrix = feature_transition_matrix(
        hin.features,
        top_k=model.similarity_top_k,
        metric=model.similarity_metric,
    )
    n, m = hin.n_nodes, hin.n_relations
    alpha, beta = model.alpha, model.beta
    relational = 1.0 - alpha - beta

    def update(point: np.ndarray) -> np.ndarray:
        x = point[:n]
        z = point[n:]
        x_new = alpha * label_vec
        if relational > 0:
            x_new = x_new + relational * o_tensor.propagate(x, z)
        if beta > 0:
            x_new = x_new + beta * np.asarray(w_matrix @ x).ravel()
        z_new = r_tensor.propagate(x_new, x_new)
        return np.concatenate([x_new, z_new])

    return update


def numerical_jacobian(func, point: np.ndarray, *, eps: float = 1e-7) -> np.ndarray:
    """Central-difference Jacobian of ``func`` at ``point``."""
    point = np.asarray(point, dtype=float)
    base_dim = point.size
    out_dim = np.asarray(func(point)).size
    jacobian = np.zeros((out_dim, base_dim))
    for idx in range(base_dim):
        bumped_up = point.copy()
        bumped_up[idx] += eps
        bumped_down = point.copy()
        bumped_down[idx] -= eps
        jacobian[:, idx] = (
            np.asarray(func(bumped_up)) - np.asarray(func(bumped_down))
        ) / (2 * eps)
    return jacobian


def _tangent_projector(n: int, m: int) -> np.ndarray:
    """Projector onto the simplex tangent space ``{sum dx = sum dz = 0}``.

    Theorem 3's map lives on ``Omega = simplex_n x simplex_m``; only the
    restriction of ``DT`` to this tangent space governs the on-domain
    dynamics.  The unrestricted Jacobian can carry spurious eigenvalues
    along the constraint-violating constant directions.
    """
    projector = np.eye(n + m)
    projector[:n, :n] -= 1.0 / n
    projector[n:, n:] -= 1.0 / m
    return projector


@dataclass(frozen=True)
class SpectrumReport:
    """Spectrum of ``DT`` at one class's stationary pair.

    ``eigenvalues`` / ``spectral_radius`` / ``distance_to_one`` refer to
    the Jacobian *restricted to the simplex tangent space* (the object
    Theorem 3 speaks about); ``raw_spectral_radius`` records the
    unrestricted operator for reference.
    """

    label: str
    eigenvalues: np.ndarray
    spectral_radius: float
    raw_spectral_radius: float
    #: Smallest distance from any (tangent) eigenvalue to 1.
    distance_to_one: float
    #: Residual ||T(p) - p||_1 at the point the Jacobian was taken.
    fixed_point_residual: float

    @property
    def uniqueness_condition_holds(self) -> bool:
        """Theorem 3's condition: 1 is not an eigenvalue of ``DT``."""
        return self.distance_to_one > 1e-6

    @property
    def locally_contractive(self) -> bool:
        """Tangent spectral radius below 1 (geometric convergence)."""
        return self.spectral_radius < 1.0


def fixed_point_spectrum(model: TMark, hin: HIN) -> list[SpectrumReport]:
    """Theorem 3 check for every class chain of a fitted model.

    The model must have been fitted on ``hin`` (same shapes).  For each
    class the restart vector is re-derived from the converged ``x`` so
    the frozen map has the model's stationary pair as its fixed point.
    """
    if model.result_ is None:
        raise NotFittedError("fit the model before analysing its fixed points")
    result = model.result_
    n, m = hin.n_nodes, hin.n_relations
    if result.node_scores.shape[0] != n or result.relation_scores.shape[0] != m:
        raise ValidationError("the fitted model does not match this HIN's shapes")

    reports = []
    for c, label in enumerate(result.label_names):
        x = result.node_scores[:, c]
        z = result.relation_scores[:, c]
        class_mask = hin.label_matrix[:, c]
        if model.update_labels and result.histories[c].accepted_history:
            label_vec = updated_label_vector(
                class_mask, x, model.label_threshold, mode=model.threshold_mode
            )
        else:
            label_vec = initial_label_vector(class_mask)
        update = tmark_update_map(hin, model, label_vec)
        point = np.concatenate([x, z])
        residual = float(np.abs(update(point) - point).sum())
        jacobian = numerical_jacobian(update, point)
        raw_radius = float(np.abs(np.linalg.eigvals(jacobian)).max())
        projector = _tangent_projector(n, m)
        restricted = projector @ jacobian @ projector
        eigenvalues = np.linalg.eigvals(restricted)
        distances = np.abs(eigenvalues - 1.0)
        reports.append(
            SpectrumReport(
                label=label,
                eigenvalues=eigenvalues,
                spectral_radius=float(np.abs(eigenvalues).max()),
                raw_spectral_radius=raw_radius,
                distance_to_one=float(distances.min()),
                fixed_point_residual=residual,
            )
        )
    return reports
