"""Store-backed T-Mark fits: ``fit_from_store``.

Glue between a :class:`~repro.ooc.store.GraphStore` and
:meth:`TMark.fit_operators`: builds (or reuses) the chunked operator
cache, pulls the supervision straight off the mmap'd label matrix, and
runs the per-class chains without ever materialising a
:class:`~repro.hin.graph.HIN` — at two million nodes even the node-name
tuple would cost hundreds of MB, so names are only attached to the
result on small stores.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.tmark import TMark
from repro.errors import ValidationError
from repro.ooc.build import build_chunked_operators
from repro.ooc.operators import DEFAULT_CHUNK_SIZE
from repro.ooc.store import GraphStore

#: Stores at or below this node count get their names attached to the
#: :class:`TMarkResult` (``node_names="auto"``); larger stores return
#: ``node_names=None`` to keep the result O(q * n) floats, not strings.
MAX_AUTO_NODE_NAMES = 100_000


def fit_from_store(
    store,
    model: TMark | None = None,
    *,
    labels=None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    solver: str | None = None,
    starts=None,
    recorder=None,
    rebuild_operators: bool = False,
    node_names: str = "auto",
    shards: int | None = None,
    workers: int | None = None,
    **model_params,
) -> TMark:
    """Fit T-Mark out-of-core against an on-disk graph store.

    Parameters
    ----------
    store:
        An open :class:`GraphStore` or a store directory path.
    model:
        The :class:`TMark` instance to fit; ``None`` constructs one from
        ``model_params`` (e.g. ``alpha=0.9, gamma=0.0``).
    labels:
        Optional ``(n, q)`` boolean supervision matrix overriding the
        store's — the masked-split entry point (the stored label matrix
        usually carries *all* known labels).
    chunk_size:
        Columns per block for operator construction and propagation.
    solver:
        Per-fit solver override (plain/anderson/aitken/auto), as in
        :meth:`TMark.fit`.
    starts:
        Optional warm-start ``(X0, Z0)`` pair, as in :meth:`TMark.fit`.
    recorder:
        Obs recorder for build chunks + chain telemetry.
    rebuild_operators:
        Force a fresh operator build even when the on-disk cache
        matches.
    node_names:
        ``"auto"`` (attach names when ``n <= 100_000``), ``"always"``
        or ``"never"``.
    shards, workers:
        Run the per-iteration propagation sharded across fork workers
        (see :mod:`repro.shard`).  Store-backed shards are contiguous
        column ranges aligned to the operator cache's on-disk chunks —
        shards map 1:1 onto chunk runs, so a multi-million-node store
        streams multi-core with the same bounded residency per worker.
        Partial products merge in fixed shard order: deterministic for
        a given shard count, argmax-identical across counts.

    Returns
    -------
    The fitted model; ``model.result_`` holds the stationary scores.
    ``W`` is only built when the model's ``beta`` is positive — a
    ``gamma=0`` fit never touches the feature matrix, which is what
    makes million-node fits feasible without ``similarity_top_k``.
    """
    if isinstance(store, (str, Path)):
        store = GraphStore.open(store)
    if not isinstance(store, GraphStore):
        raise ValidationError(
            f"expected a GraphStore or path, got {type(store).__name__}"
        )
    if node_names not in ("auto", "always", "never"):
        raise ValidationError(
            f"node_names must be 'auto', 'always' or 'never', got {node_names!r}"
        )
    if model is None:
        model = TMark(**model_params)
    elif model_params:
        raise ValidationError(
            "pass either a model instance or TMark keyword parameters, not both"
        )
    operators = build_chunked_operators(
        store,
        similarity_top_k=model.similarity_top_k,
        similarity_metric=model.similarity_metric,
        chunk_size=chunk_size,
        build_w=model.beta > 0,
        rebuild=rebuild_operators,
        recorder=recorder,
    )
    label_matrix = store.label_matrix if labels is None else labels
    label_matrix = np.asarray(label_matrix, dtype=bool)
    if labels is not None and label_matrix.shape != (store.n_nodes, store.n_labels):
        raise ValidationError(
            f"labels must have shape ({store.n_nodes}, {store.n_labels}), "
            f"got {label_matrix.shape}"
        )
    attach_names = node_names == "always" or (
        node_names == "auto" and store.n_nodes <= MAX_AUTO_NODE_NAMES
    )
    model.fit_operators(
        operators,
        label_matrix,
        label_names=store.label_names,
        relation_names=store.relation_names,
        node_names=store.node_names() if attach_names else None,
        starts=starts,
        recorder=recorder,
        solver=solver,
        shards=shards,
        workers=workers,
    )
    return model
