"""The memory-mapped on-disk graph store behind the out-of-core tier.

A :class:`GraphStore` is a directory of plain ``.npy`` files plus a JSON
manifest — no pickling, no archives — so every array can be *memory
mapped* (``np.load(..., mmap_mode="r")``) instead of loaded.  The layout
follows DGL graphbolt's on-disk CSC design: one compressed-sparse-column
matrix per relation (column ``j`` holds node ``j``'s out-links, rows are
the targets ``i``), which is exactly the fibre layout the ``O``
normalisation of Eq. 1 consumes, so chunked operator construction can
stream column blocks without ever holding a whole relation in RAM.

Layout of a store directory::

    manifest.json            format version, shapes, names, sha256 per file
    rel<k>.data.npy          CSC values of relation k   (float64)
    rel<k>.indices.npy       CSC row indices            (int32 or int64)
    rel<k>.indptr.npy        CSC column pointers        (same dtype)
    features.npy             dense (n, d) features      — or the CSR triple
    features.data.npy / features.indices.npy / features.indptr.npy
    labels.npy               (n, q) boolean label matrix
    node_names.npy           only when names differ from the "node_<i>" default
    operators/               chunked-operator cache (see repro.ooc.build)

The manifest records a sha256 fingerprint of every array file;
``GraphStore.open(path, verify=True)`` re-hashes them and raises
:class:`~repro.errors.ValidationError` on any mismatch, and stores saved
from an in-RAM :class:`~repro.hin.graph.HIN` additionally carry the
parallel layer's :func:`~repro.experiments.parallel.graph_fingerprint`.
``GraphStore.save`` → ``open`` → :meth:`GraphStore.to_hin` is a
bit-identical round trip: the concatenated per-relation CSC coordinates
reproduce the exact ``(k, j, i)``-sorted COO order ``SparseTensor3``
canonicalises to, and no float arithmetic touches the values.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.hin.io import jsonable_metadata
from repro.obs.recorder import get_recorder
from repro.tensor.sptensor import SparseTensor3

#: On-disk format version; bumped on any layout change.
STORE_FORMAT_VERSION = 1

#: The manifest file name inside a store directory.
MANIFEST_NAME = "manifest.json"

#: Subdirectory holding the chunked-operator cache (repro.ooc.build).
OPERATORS_DIRNAME = "operators"


def _sha256_file(path: Path, chunk_bytes: int = 1 << 22) -> str:
    """Streaming sha256 of one file (constant memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk_bytes)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def _index_dtype(n_nodes: int, max_nnz: int):
    """Smallest integer dtype that can index this store's CSC arrays."""
    if n_nodes < np.iinfo(np.int32).max and max_nnz < np.iinfo(np.int32).max:
        return np.int32
    return np.int64


class GraphStore:
    """A memory-mapped HIN: per-relation CSC arrays + feature/label blocks.

    Construct with :meth:`save` (serialise an in-RAM HIN) or :meth:`open`
    (memory-map an existing directory).  The accessor surface mirrors the
    :class:`~repro.hin.graph.HIN` shape properties so operator builders
    can consume either; arrays come back as read-only ``np.memmap`` views
    that only page in what is touched.
    """

    def __init__(self, directory: Path, manifest: dict):
        self._dir = Path(directory)
        self._manifest = manifest
        self._rel_arrays: dict[int, tuple] = {}
        self._features = None
        self._labels = None
        self._node_names_arr = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def save(cls, hin: HIN, directory, *, recorder=None) -> "GraphStore":
        """Write ``hin`` to ``directory`` and return the opened store.

        The directory is created if missing.  An existing manifest is
        overwritten (the store is rebuilt in place); unknown extra files
        are left untouched.  Emits one ``store_save`` obs event.
        """
        if not isinstance(hin, HIN):
            raise ValidationError(f"expected a HIN, got {type(hin).__name__}")
        rec = get_recorder() if recorder is None else recorder
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        n, m = hin.n_nodes, hin.n_relations
        idx_dtype = _index_dtype(n, hin.tensor.nnz)
        files: dict[str, str] = {}
        relation_nnz: list[int] = []

        def _write(name: str, array: np.ndarray) -> None:
            path = directory / name
            np.save(path, array)
            files[name] = _sha256_file(path)

        for k in range(m):
            csc = hin.tensor.relation_slice(k).tocsc()
            csc.sort_indices()
            relation_nnz.append(int(csc.nnz))
            _write(f"rel{k}.data.npy", csc.data.astype(np.float64, copy=False))
            _write(f"rel{k}.indices.npy", csc.indices.astype(idx_dtype))
            _write(f"rel{k}.indptr.npy", csc.indptr.astype(idx_dtype))

        features_sparse = bool(sp.issparse(hin.features))
        if features_sparse:
            feats = sp.csr_matrix(hin.features)
            _write("features.data.npy", feats.data.astype(np.float64, copy=False))
            _write("features.indices.npy", feats.indices.astype(idx_dtype))
            _write("features.indptr.npy", feats.indptr.astype(idx_dtype))
        else:
            _write("features.npy", np.asarray(hin.features, dtype=np.float64))
        _write("labels.npy", np.asarray(hin.label_matrix, dtype=bool))

        default_names = tuple(f"node_{i}" for i in range(n)) == hin.node_names
        if not default_names:
            _write("node_names.npy", np.asarray(hin.node_names, dtype=np.str_))

        from repro.experiments.parallel import graph_fingerprint

        manifest = {
            "format_version": STORE_FORMAT_VERSION,
            "n_nodes": n,
            "n_relations": m,
            "n_labels": hin.n_labels,
            "n_features": hin.n_features,
            "relation_names": list(hin.relation_names),
            "label_names": list(hin.label_names),
            "node_names": "default" if default_names else "stored",
            "multilabel": hin.multilabel,
            "metadata": jsonable_metadata(hin.metadata),
            "features": "csr" if features_sparse else "dense",
            "index_dtype": np.dtype(idx_dtype).name,
            "nnz": int(hin.tensor.nnz),
            "relation_nnz": relation_nnz,
            "graph_fingerprint": graph_fingerprint(hin),
            "files": files,
        }
        write_manifest(directory, manifest)
        if rec.enabled:
            rec.emit(
                "store_save",
                path=str(directory),
                n_nodes=n,
                n_relations=m,
                nnz=int(hin.tensor.nnz),
                n_files=len(files),
            )
            rec.count("store_saves")
        return cls.open(directory)

    @classmethod
    def open(cls, directory, *, verify: bool = False) -> "GraphStore":
        """Memory-map the store at ``directory``.

        ``verify=True`` re-hashes every array file against the manifest's
        sha256 fingerprints (streaming, constant memory) and raises
        :class:`ValidationError` naming the first mismatching file —
        the integrity gate for stores that travelled between machines.
        Emits one ``store_open`` obs event.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise ValidationError(f"no graph store at {directory} (missing manifest)")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValidationError(f"corrupt store manifest at {manifest_path}: {exc}")
        version = manifest.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise ValidationError(
                f"unsupported graph-store format version: {version!r} "
                f"(this build reads version {STORE_FORMAT_VERSION})"
            )
        for name in manifest.get("files", {}):
            if not (directory / name).exists():
                raise ValidationError(
                    f"graph store at {directory} is missing array file {name!r}"
                )
        if verify:
            for name, expected in manifest["files"].items():
                actual = _sha256_file(directory / name)
                if actual != expected:
                    raise ValidationError(
                        f"graph-store fingerprint mismatch for {name!r}: "
                        f"manifest says {expected[:12]}…, file hashes "
                        f"{actual[:12]}… — the store was modified after save"
                    )
        store = cls(directory, manifest)
        rec = get_recorder()
        if rec.enabled:
            rec.emit(
                "store_open",
                path=str(directory),
                n_nodes=store.n_nodes,
                n_relations=store.n_relations,
                nnz=store.nnz,
                verified=bool(verify),
            )
            rec.count("store_opens")
        return store

    # ------------------------------------------------------------------
    # Shape / name surface (mirrors HIN)
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        """The store's directory on disk."""
        return self._dir

    @property
    def manifest(self) -> dict:
        """The parsed manifest (treat as read-only)."""
        return self._manifest

    @property
    def n_nodes(self) -> int:
        """Number of nodes ``n``."""
        return int(self._manifest["n_nodes"])

    @property
    def n_relations(self) -> int:
        """Number of link types ``m``."""
        return int(self._manifest["n_relations"])

    @property
    def n_labels(self) -> int:
        """Number of classes ``q``."""
        return int(self._manifest["n_labels"])

    @property
    def n_features(self) -> int:
        """Feature dimensionality ``d``."""
        return int(self._manifest["n_features"])

    @property
    def nnz(self) -> int:
        """Total stored adjacency entries across relations."""
        return int(self._manifest["nnz"])

    @property
    def relation_nnz(self) -> tuple[int, ...]:
        """Stored entries per relation."""
        return tuple(int(v) for v in self._manifest["relation_nnz"])

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Names of the ``m`` link types."""
        return tuple(self._manifest["relation_names"])

    @property
    def label_names(self) -> tuple[str, ...]:
        """Names of the ``q`` classes."""
        return tuple(self._manifest["label_names"])

    @property
    def multilabel(self) -> bool:
        """Whether nodes may carry several labels."""
        return bool(self._manifest["multilabel"])

    @property
    def metadata(self) -> dict:
        """The free-form metadata dict saved with the graph."""
        return self._manifest.get("metadata", {})

    @property
    def has_stored_node_names(self) -> bool:
        """Whether custom node names were saved (vs the ``node_<i>`` default)."""
        return self._manifest.get("node_names") == "stored"

    def node_name(self, idx: int) -> str:
        """Resolve one node index to its name without materialising all names."""
        if not 0 <= idx < self.n_nodes:
            raise ValidationError(
                f"node index {idx} out of range [0, {self.n_nodes})"
            )
        if self.has_stored_node_names:
            return str(self._node_names()[idx])
        return f"node_{idx}"

    def node_names(self) -> tuple[str, ...]:
        """All node names as a tuple.

        O(n) strings — call only when the result is genuinely needed
        (result labelling on small stores); million-node fits pass
        ``node_names=None`` through to :class:`TMarkResult` instead.
        """
        if self.has_stored_node_names:
            return tuple(str(v) for v in self._node_names())
        return tuple(f"node_{i}" for i in range(self.n_nodes))

    def _node_names(self) -> np.ndarray:
        if self._node_names_arr is None:
            self._node_names_arr = np.load(self._dir / "node_names.npy")
        return self._node_names_arr

    # ------------------------------------------------------------------
    # Memory-mapped array surface
    # ------------------------------------------------------------------
    def _mmap(self, name: str) -> np.memmap:
        return np.load(self._dir / name, mmap_mode="r")

    def relation_arrays(self, k: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The mmap'd ``(data, indices, indptr)`` CSC triple of relation ``k``."""
        if not 0 <= k < self.n_relations:
            raise ValidationError(
                f"relation index {k} out of range [0, {self.n_relations})"
            )
        if k not in self._rel_arrays:
            self._rel_arrays[k] = (
                self._mmap(f"rel{k}.data.npy"),
                self._mmap(f"rel{k}.indices.npy"),
                self._mmap(f"rel{k}.indptr.npy"),
            )
        return self._rel_arrays[k]

    def relation_csc(self, k: int) -> sp.csc_matrix:
        """Relation ``k``'s adjacency slice as an mmap-backed CSC matrix."""
        data, indices, indptr = self.relation_arrays(k)
        return sp.csc_matrix(
            (data, indices, indptr), shape=(self.n_nodes, self.n_nodes)
        )

    @property
    def label_matrix(self) -> np.ndarray:
        """The mmap'd ``(n, q)`` boolean label matrix (read-only)."""
        if self._labels is None:
            self._labels = self._mmap("labels.npy")
        return self._labels

    @property
    def features(self):
        """The feature matrix: mmap'd dense array or CSR over mmap'd parts."""
        if self._features is None:
            if self._manifest["features"] == "dense":
                self._features = self._mmap("features.npy")
            else:
                self._features = sp.csr_matrix(
                    (
                        self._mmap("features.data.npy"),
                        self._mmap("features.indices.npy"),
                        self._mmap("features.indptr.npy"),
                    ),
                    shape=(self.n_nodes, self.n_features),
                )
        return self._features

    @property
    def operators_dir(self) -> Path:
        """Where this store's chunked-operator cache lives."""
        return self._dir / OPERATORS_DIRNAME

    def store_fingerprint(self) -> str:
        """One digest over the manifest's per-file sha256 list.

        Keys the chunked-operator cache: operators built against a store
        whose content later changed are detected and rebuilt.
        """
        digest = hashlib.sha256()
        for name in sorted(self._manifest["files"]):
            digest.update(name.encode("utf-8"))
            digest.update(self._manifest["files"][name].encode("ascii"))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def to_hin(self) -> HIN:
        """Materialise the store as an in-RAM :class:`HIN`.

        Bit-identical to the HIN the store was saved from (tests pin
        this): the tensor values pass through untouched and the CSC
        concatenation order is exactly ``SparseTensor3``'s canonical
        sort.  Intended for small/medium graphs; million-node stores
        should stay on the chunked path.
        """
        n, m = self.n_nodes, self.n_relations
        i_parts, j_parts, k_parts, v_parts = [], [], [], []
        for k in range(m):
            data, indices, indptr = self.relation_arrays(k)
            counts = np.diff(np.asarray(indptr, dtype=np.int64))
            i_parts.append(np.asarray(indices, dtype=np.int64))
            j_parts.append(np.repeat(np.arange(n, dtype=np.int64), counts))
            k_parts.append(np.full(int(counts.sum()), k, dtype=np.int64))
            v_parts.append(np.asarray(data, dtype=np.float64))
        tensor = SparseTensor3(
            np.concatenate(i_parts) if i_parts else np.empty(0, np.int64),
            np.concatenate(j_parts) if j_parts else np.empty(0, np.int64),
            np.concatenate(k_parts) if k_parts else np.empty(0, np.int64),
            np.concatenate(v_parts) if v_parts else np.empty(0, float),
            shape=(n, n, m),
        )
        features = self.features
        if sp.issparse(features):
            features = sp.csr_matrix(
                (
                    np.array(features.data),
                    np.array(features.indices),
                    np.array(features.indptr),
                ),
                shape=features.shape,
            )
        else:
            features = np.array(features)
        node_names = self.node_names() if self.has_stored_node_names else None
        return HIN(
            tensor,
            self.relation_names,
            features,
            np.array(self.label_matrix),
            self.label_names,
            node_names=node_names,
            multilabel=self.multilabel,
            metadata=self.metadata,
        )

    def __repr__(self) -> str:
        return (
            f"GraphStore({str(self._dir)!r}, n_nodes={self.n_nodes}, "
            f"n_relations={self.n_relations}, n_labels={self.n_labels}, "
            f"nnz={self.nnz})"
        )


def write_manifest(directory, manifest: dict) -> Path:
    """Atomically write a store manifest (tmp file + rename)."""
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    tmp = directory / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
    tmp.replace(path)
    return path
