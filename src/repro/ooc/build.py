"""Chunked construction of the ``(O, R, W)`` operators on disk.

Generalises the column-block strategy of
:func:`repro.core.features.topk_cosine_transition_matrix` to the two
transition tensors: every normalisation pass walks a store's per-relation
CSC arrays in blocks of ``chunk_size`` columns, so resident memory is
``O(nnz / n_chunks)`` instead of the materialised operator — the build
that makes million-node stores fittable on one box.

The written values are **bit-identical** to the in-RAM build:

* ``O`` — the per-``(j, k)`` column sums accumulate the same values in
  the same order as ``SparseTensor3.mode1_column_sums`` (the store's CSC
  concatenation *is* the coalesced COO order), and the normalisation is
  the same multiply-by-reciprocal the CSC ``@ diags(scale)`` performs;
* ``R`` — the per-``(i, j)`` fibre sums restricted to a column block
  see exactly the block's entries in the coalesced k-major order, so the
  ``np.unique`` + ``bincount`` accumulation matches
  ``mode3_fibre_sums`` addition for addition — *without* ever
  allocating that method's dense ``n^2`` array, which is what caps the
  in-RAM build at a few hundred thousand nodes;
* ``W`` — small stores reuse the dense Eq. 9 code verbatim; larger
  stores require ``similarity_top_k`` and go through the (already
  chunked) top-k cosine path.

Artifacts land in ``<store>/operators/``: ``o.rel<k>.data.npy`` and
``r.rel<k>.data.npy`` share the raw store's ``indices``/``indptr`` (the
sparsity pattern is unchanged by normalisation), ``o.nondangling.npy``
is the ``(m, n)`` non-dangling column mask, ``pair.indices.npy`` /
``pair.indptr.npy`` hold the linked-pair CSC pattern, and
``operators.json`` records the build parameters plus the store
fingerprint so a stale cache is detected and rebuilt.  One
``operator_build`` obs event is emitted per chunk.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.features import (
    SIMILARITY_METRICS,
    feature_transition_matrix,
    topk_cosine_transition_matrix,
)
from repro.errors import ValidationError
from repro.obs.recorder import get_recorder
from repro.obs.spans import span
from repro.ooc.operators import (
    DEFAULT_CHUNK_SIZE,
    ChunkedFeatureWalk,
    ChunkedNodeTransition,
    ChunkedOperators,
    ChunkedRelationTransition,
    release_pages,
)
from repro.ooc.store import GraphStore
from repro.utils.validation import check_positive_int

#: Version of the on-disk operator-cache layout.
OPERATORS_FORMAT_VERSION = 1

#: The cache manifest inside ``<store>/operators/``.
OPERATORS_MANIFEST = "operators.json"

#: Largest store for which a dense ``W`` (``similarity_top_k=None``) is
#: built; beyond this the dense ``(n, n)`` matrix stops being an
#: out-of-core operator in any meaningful sense.
MAX_DENSE_W_NODES = 8192

#: Column-block cap for the top-k cosine similarity pass (each block
#: materialises an ``(n, block)`` similarity panel).
MAX_W_SIMILARITY_CHUNK = 2048


def _write_manifest(ops_dir: Path, manifest: dict) -> None:
    tmp = ops_dir / (OPERATORS_MANIFEST + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
    tmp.replace(ops_dir / OPERATORS_MANIFEST)


def _build_o(store: GraphStore, ops_dir: Path, chunk_size: int, rec) -> int:
    """Normalise every relation slice column-block-wise; returns n_dangling."""
    n, m = store.n_nodes, store.n_relations
    nondangling = np.zeros((m, n), dtype=bool)
    emit = rec.enabled
    for k in range(m):
        data, indices, indptr = store.relation_arrays(k)
        out = np.lib.format.open_memmap(
            ops_dir / f"o.rel{k}.data.npy",
            mode="w+",
            dtype=np.float64,
            shape=(int(data.size),),
        )
        for chunk_idx, j0 in enumerate(range(0, n, chunk_size)):
            started = time.perf_counter() if emit else 0.0
            j1 = min(j0 + chunk_size, n)
            start, stop = int(indptr[j0]), int(indptr[j1])
            if start != stop:
                values = np.asarray(data[start:stop])
                counts = np.asarray(indptr[j0 : j1 + 1], dtype=np.int64)
                counts = np.diff(counts)
                local_j = np.repeat(np.arange(j1 - j0), counts)
                col_sums = np.bincount(
                    local_j, weights=values, minlength=j1 - j0
                )
                nonzero = col_sums > 0
                nondangling[k, j0:j1] = nonzero
                scale = np.ones(j1 - j0)
                scale[nonzero] = 1.0 / col_sums[nonzero]
                out[start:stop] = values * scale[local_j]
            if emit:
                rec.emit(
                    "operator_build",
                    operator="O",
                    relation=k,
                    chunk=chunk_idx,
                    columns=j1 - j0,
                    nnz=stop - start,
                    transition_seconds=time.perf_counter() - started,
                    feature_seconds=0.0,
                )
        out.flush()
        del out
        release_pages(data, indices, indptr)
    np.save(ops_dir / "o.nondangling.npy", nondangling)
    return int(n * m - nondangling.sum())


def _build_r(store: GraphStore, ops_dir: Path, chunk_size: int, rec) -> int:
    """Fibre-normalise across relations column-block-wise; returns pair count.

    A column block loads the matching slice of *every* relation at once
    (the ``(i, j)`` fibre sums run over ``k``), computes the per-pair
    sums via ``np.unique`` over the block's flat pair ids — the sparse
    replacement for the dense ``n^2`` ``mode3_fibre_sums`` array — and
    writes the normalised values back per relation.  The unique pair
    ids, being sorted, come out in CSC column-major order, so the
    linked-pair indicator pattern is assembled in the same pass.
    """
    n, m = store.n_nodes, store.n_relations
    emit = rec.enabled
    index_dtype = np.int32 if store.manifest["index_dtype"] == "int32" else np.int64
    relations = [store.relation_arrays(k) for k in range(m)]
    outs = [
        np.lib.format.open_memmap(
            ops_dir / f"r.rel{k}.data.npy",
            mode="w+",
            dtype=np.float64,
            shape=(int(relations[k][0].size),),
        )
        for k in range(m)
    ]
    pair_rows: list[np.ndarray] = []
    pair_counts = np.zeros(n, dtype=np.int64)
    for chunk_idx, j0 in enumerate(range(0, n, chunk_size)):
        started = time.perf_counter() if emit else 0.0
        j1 = min(j0 + chunk_size, n)
        spans = []
        i_parts, j_parts, v_parts = [], [], []
        for k in range(m):
            data, indices, indptr = relations[k]
            start, stop = int(indptr[j0]), int(indptr[j1])
            spans.append((start, stop))
            if start == stop:
                continue
            counts = np.diff(np.asarray(indptr[j0 : j1 + 1], dtype=np.int64))
            i_parts.append(np.asarray(indices[start:stop], dtype=np.int64))
            j_parts.append(np.repeat(np.arange(j1 - j0, dtype=np.int64), counts))
            v_parts.append(np.asarray(data[start:stop]))
        block_nnz = sum(stop - start for start, stop in spans)
        if block_nnz:
            all_i = np.concatenate(i_parts)
            all_j = np.concatenate(j_parts)
            all_v = np.concatenate(v_parts)
            pair_ids = all_j * n + all_i
            unique_pairs, inverse = np.unique(pair_ids, return_inverse=True)
            fibre_sums = np.bincount(inverse, weights=all_v)
            normalised = all_v / fibre_sums[inverse]
            offset = 0
            for k, (start, stop) in enumerate(spans):
                length = stop - start
                if length:
                    outs[k][start:stop] = normalised[offset : offset + length]
                    offset += length
            local_j, pair_i = np.divmod(unique_pairs, n)
            pair_rows.append(pair_i.astype(index_dtype))
            pair_counts[j0:j1] = np.bincount(local_j, minlength=j1 - j0)
        if emit:
            rec.emit(
                "operator_build",
                operator="R",
                relation=-1,
                chunk=chunk_idx,
                columns=j1 - j0,
                nnz=block_nnz,
                transition_seconds=time.perf_counter() - started,
                feature_seconds=0.0,
            )
    for k, out in enumerate(outs):
        out.flush()
        release_pages(*relations[k])
    del outs
    pair_indices = (
        np.concatenate(pair_rows) if pair_rows else np.empty(0, index_dtype)
    )
    pair_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(pair_counts, out=pair_indptr[1:])
    np.save(ops_dir / "pair.indices.npy", pair_indices)
    np.save(ops_dir / "pair.indptr.npy", pair_indptr.astype(index_dtype))
    return int(pair_indices.size)


def _build_w(
    store: GraphStore,
    ops_dir: Path,
    chunk_size: int,
    similarity_top_k,
    similarity_metric: str,
    rec,
) -> str:
    """Build the feature-walk matrix on disk; returns its storage mode."""
    n = store.n_nodes
    emit = rec.enabled
    started = time.perf_counter() if emit else 0.0
    if similarity_top_k is None:
        if n > MAX_DENSE_W_NODES:
            raise ValidationError(
                f"a dense W for {n} nodes is not an out-of-core operator; "
                f"set similarity_top_k (chunked top-k cosine) or gamma=0 "
                f"to skip the feature walk (dense limit: {MAX_DENSE_W_NODES})"
            )
        w = feature_transition_matrix(store.features, metric=similarity_metric)
        np.save(ops_dir / "w.npy", np.asarray(w, dtype=np.float64))
        mode = "dense"
        nnz = n * n
    else:
        if similarity_metric != "cosine":
            raise ValidationError(
                "chunked top-k W supports metric='cosine' only, got "
                f"{similarity_metric!r} (rbf/jaccard need the dense path)"
            )
        w = topk_cosine_transition_matrix(
            store.features,
            similarity_top_k,
            chunk_size=min(chunk_size, MAX_W_SIMILARITY_CHUNK),
        ).tocsc()
        w.sort_indices()
        np.save(ops_dir / "w.data.npy", w.data.astype(np.float64, copy=False))
        np.save(ops_dir / "w.indices.npy", w.indices.astype(np.int64))
        np.save(ops_dir / "w.indptr.npy", w.indptr.astype(np.int64))
        mode = "csc"
        nnz = int(w.nnz)
    if emit:
        rec.emit(
            "operator_build",
            operator="W",
            relation=-1,
            chunk=0,
            columns=n,
            nnz=nnz,
            transition_seconds=0.0,
            feature_seconds=time.perf_counter() - started,
        )
    return mode


def _cache_usable(ops_dir: Path, store: GraphStore, similarity_top_k,
                  similarity_metric: str, need_w: bool) -> dict | None:
    """The cached manifest if it matches this build request, else None."""
    manifest_path = ops_dir / OPERATORS_MANIFEST
    if not manifest_path.exists():
        return None
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        return None
    if manifest.get("format_version") != OPERATORS_FORMAT_VERSION:
        return None
    if manifest.get("store_fingerprint") != store.store_fingerprint():
        return None
    if need_w:
        if manifest.get("w_mode") == "none":
            return None
        if (
            manifest.get("similarity_top_k") != similarity_top_k
            or manifest.get("similarity_metric") != similarity_metric
        ):
            return None
    return manifest


def _assemble(store: GraphStore, ops_dir: Path, manifest: dict,
              chunk_size: int) -> ChunkedOperators:
    n, m = store.n_nodes, store.n_relations

    def store_arrays(k: int):
        _, indices, indptr = store.relation_arrays(k)
        return indices, indptr

    o_tensor = ChunkedNodeTransition(
        [ops_dir / f"o.rel{k}.data.npy" for k in range(m)],
        store_arrays,
        np.load(ops_dir / "o.nondangling.npy", mmap_mode="r"),
        n=n,
        m=m,
        chunk_size=chunk_size,
    )
    r_tensor = ChunkedRelationTransition(
        [ops_dir / f"r.rel{k}.data.npy" for k in range(m)],
        store_arrays,
        (ops_dir / "pair.indices.npy", ops_dir / "pair.indptr.npy"),
        n=n,
        m=m,
        n_linked_pairs=int(manifest["n_linked_pairs"]),
        chunk_size=chunk_size,
    )
    w_mode = manifest["w_mode"]
    if w_mode == "none":
        w_matrix = None
    elif w_mode == "dense":
        w_matrix = ChunkedFeatureWalk(
            "dense", (ops_dir / "w.npy",), n=n, chunk_size=chunk_size
        )
    else:
        w_matrix = ChunkedFeatureWalk(
            "csc",
            (
                ops_dir / "w.data.npy",
                ops_dir / "w.indices.npy",
                ops_dir / "w.indptr.npy",
            ),
            n=n,
            chunk_size=chunk_size,
        )
    return ChunkedOperators(
        o_tensor=o_tensor,
        r_tensor=r_tensor,
        w_matrix=w_matrix,
        shape=(n, m),
        similarity_top_k=manifest["similarity_top_k"],
        similarity_metric=manifest["similarity_metric"],
        chunk_size=chunk_size,
        directory=ops_dir,
    )


def build_chunked_operators(
    store: GraphStore,
    *,
    similarity_top_k: int | None = None,
    similarity_metric: str = "cosine",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    build_w: bool = True,
    rebuild: bool = False,
    recorder=None,
) -> ChunkedOperators:
    """Build (or reuse) the chunked ``(O, R, W)`` cache of a store.

    Parameters
    ----------
    store:
        An open :class:`~repro.ooc.store.GraphStore`.
    similarity_top_k, similarity_metric:
        The ``W`` settings — must match the :class:`TMark` model the
        operators will serve (``fit_operators`` enforces this).
    chunk_size:
        Columns per block for both the build passes and the returned
        adapters' propagation products.
    build_w:
        ``False`` skips the feature-walk matrix entirely — the right
        call for ``gamma=0`` fits (``W`` is never touched) and the only
        option for million-node stores without ``similarity_top_k``.
    rebuild:
        Force a fresh build even when a matching cache exists.
    recorder:
        Obs recorder for the per-chunk ``operator_build`` events
        (default: the ambient recorder).

    Returns
    -------
    A :class:`~repro.ooc.operators.ChunkedOperators` whose products
    stream over the on-disk arrays.
    """
    if not isinstance(store, GraphStore):
        raise ValidationError(
            f"expected a GraphStore, got {type(store).__name__}"
        )
    chunk_size = check_positive_int(chunk_size, "chunk_size")
    if similarity_top_k is not None:
        similarity_top_k = check_positive_int(similarity_top_k, "similarity_top_k")
    if similarity_metric not in SIMILARITY_METRICS:
        raise ValidationError(
            f"similarity_metric must be one of {SIMILARITY_METRICS}, "
            f"got {similarity_metric!r}"
        )
    rec = get_recorder() if recorder is None else recorder
    ops_dir = store.operators_dir
    if not rebuild:
        cached = _cache_usable(
            ops_dir, store, similarity_top_k, similarity_metric, build_w
        )
        if cached is not None:
            return _assemble(store, ops_dir, cached, chunk_size)
    ops_dir.mkdir(parents=True, exist_ok=True)
    with span(
        "build_chunked_operators",
        recorder=rec,
        n_nodes=store.n_nodes,
        chunk_size=chunk_size,
    ):
        with span("build_o", recorder=rec):
            n_dangling = _build_o(store, ops_dir, chunk_size, rec)
        with span("build_r", recorder=rec):
            n_linked_pairs = _build_r(store, ops_dir, chunk_size, rec)
        if build_w:
            with span("build_w", recorder=rec):
                w_mode = _build_w(
                    store,
                    ops_dir,
                    chunk_size,
                    similarity_top_k,
                    similarity_metric,
                    rec,
                )
        else:
            w_mode = "none"
    manifest = {
        "format_version": OPERATORS_FORMAT_VERSION,
        "store_fingerprint": store.store_fingerprint(),
        "similarity_top_k": similarity_top_k,
        "similarity_metric": similarity_metric,
        "chunk_size": chunk_size,
        "w_mode": w_mode,
        "n_dangling": n_dangling,
        "n_linked_pairs": n_linked_pairs,
    }
    _write_manifest(ops_dir, manifest)
    if rec.enabled:
        rec.count("chunked_operator_builds")
    return _assemble(store, ops_dir, manifest, chunk_size)
