"""Streaming propagation over memory-mapped chunked operators.

The classes here mirror the contraction surface of
:class:`~repro.tensor.transition.NodeTransitionTensor`,
:class:`~repro.tensor.transition.RelationTransitionTensor` and the
feature-walk matrix ``W`` — ``propagate_many``, ``shape``,
``dangling_share`` / ``unlinked_share``, ``@`` — but never hold a whole
operator in RAM.  Each per-iteration product walks the on-disk CSC
arrays (built by :mod:`repro.ooc.build`) in column blocks of
``chunk_size``: a block is wrapped as a zero-copy ``scipy`` CSC matrix
over the memmap slices, multiplied, accumulated, and its pages released
with ``madvise(MADV_DONTNEED)`` so resident memory stays at
``O(nnz / n_chunks)`` plus the ``(n, q)`` iterate matrices regardless of
graph size.

The dangling/unlinked corrections use the same closed forms as the
in-RAM tensors (``repro.tensor.transition``), including the
``_column_sums`` per-column reduction, so store-backed fits agree with
the in-memory path to accumulation-order rounding — argmax-identical on
every graph the equivalence tests cover.  Bit-identity is *not*
promised for propagation (the chunked products accumulate in a
different order); it *is* promised for the normalised operator values
on disk, which :mod:`repro.ooc.build` pins against the in-RAM build.
"""

from __future__ import annotations

import mmap

import numpy as np
import scipy.sparse as sp

from repro.tensor.transition import _column_sums
from repro.utils.validation import check_array_2d

#: Default number of CSC columns processed per chunk.
DEFAULT_CHUNK_SIZE = 65536


def release_pages(*arrays) -> None:
    """Advise the kernel to drop the resident pages of memmap arrays.

    On a large-memory box nothing ever evicts clean mmap pages, so a
    whole pass over the operator files would leave them fully resident
    and defeat the point of streaming.  ``MADV_DONTNEED`` returns the
    pages immediately; the next iteration re-reads them from the page
    cache/disk.  Best-effort: silently skips non-memmap inputs and
    platforms without ``madvise``.
    """
    for array in arrays:
        base = array
        while base is not None and not isinstance(base, np.memmap):
            base = getattr(base, "base", None)
        handle = getattr(base, "_mmap", None)
        if handle is None:
            continue
        try:
            handle.madvise(mmap.MADV_DONTNEED)
        except (AttributeError, ValueError, OSError):  # pragma: no cover
            pass


def _csc_block(data, indices, indptr, j0: int, j1: int, n_rows: int):
    """Columns ``[j0, j1)`` of an on-disk CSC as a zero-copy scipy matrix.

    Returns ``None`` for an empty block.  Only the (small) local
    ``indptr`` is copied; ``data``/``indices`` stay memmap slices.
    """
    start = int(indptr[j0])
    stop = int(indptr[j1])
    if start == stop:
        return None
    local_indptr = np.asarray(indptr[j0 : j1 + 1], dtype=np.int64) - start
    return sp.csc_matrix(
        (data[start:stop], indices[start:stop], local_indptr),
        shape=(n_rows, j1 - j0),
    )


class ChunkedNodeTransition:
    """Out-of-core ``O`` of Eq. 1: per-relation mmap'd CSC + dangling mask.

    ``propagate_many(X, Z)`` computes ``sum_k Z[k] * (M_k @ X)`` by
    streaming each normalised relation slice in column blocks, then adds
    the analytic uniform ``1/n`` mass of the dangling ``(j, k)`` columns
    exactly as the in-RAM tensor does.
    """

    def __init__(self, data_files, store_arrays, nondangling, *, n: int, m: int,
                 chunk_size: int = DEFAULT_CHUNK_SIZE):
        self._data_files = list(data_files)  # per-relation normalised-data paths
        self._store_arrays = store_arrays    # k -> (indices, indptr) accessor
        self._nondangling = nondangling      # (m, n) bool memmap
        self._n = int(n)
        self._m = int(m)
        self._chunk = int(chunk_size)
        self._data = [None] * self._m

    def _relation(self, k: int):
        if self._data[k] is None:
            self._data[k] = np.load(self._data_files[k], mmap_mode="r")
        indices, indptr = self._store_arrays(k)
        return self._data[k], indices, indptr

    def relation_arrays(self, k: int):
        """Relation ``k``'s on-disk CSC triple ``(data, indices, indptr)``.

        The entry point for external chunk walkers (the sharded fit's
        column workers): all three arrays are memmaps, so a fork worker
        re-reads the same pages without any serialisation.
        """
        return self._relation(k)

    @property
    def nondangling_rows(self):
        """The ``(m, n)`` boolean non-dangling indicator (memmap)."""
        return self._nondangling

    @property
    def chunk_size(self) -> int:
        """Columns per streamed block."""
        return self._chunk

    def column_nnz(self) -> np.ndarray:
        """Per-column stored-entry counts summed over the relation slices.

        The balanced-nnz shard planner's column weights — computed from
        the (small) ``indptr`` arrays only, never touching the data.
        """
        weights = np.zeros(self._n, dtype=np.int64)
        for k in range(self._m):
            _, _, indptr = self._relation(k)
            weights += np.diff(np.asarray(indptr, dtype=np.int64))
        return weights

    @property
    def shape(self) -> tuple[int, int, int]:
        """Logical tensor shape ``(n, n, m)``."""
        return (self._n, self._n, self._m)

    @property
    def n_dangling(self) -> int:
        """Number of dangling ``(j, k)`` columns (uniform 1/n fibres)."""
        total = 0
        for k in range(self._m):
            total += int(np.asarray(self._nondangling[k]).sum())
        return self._n * self._m - total

    @property
    def dangling_share(self) -> float:
        """Fraction of the ``n * m`` mode-1 columns that are dangling."""
        return self.n_dangling / (self._n * self._m)

    def propagate_many(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        """Batched ``O x-bar_1 X x-bar_3 Z`` over the mmap'd slices."""
        X = check_array_2d(X, "X", shape=(self._n, None))
        Z = check_array_2d(Z, "Z", shape=(self._m, X.shape[1]))
        q = X.shape[1]
        result = np.zeros_like(X)
        acc = np.empty_like(X)
        covered = np.empty((self._m, q))
        for k in range(self._m):
            data, indices, indptr = self._relation(k)
            acc[:] = 0.0
            nd_covered = np.zeros(q)
            nd_row = self._nondangling[k]
            for j0 in range(0, self._n, self._chunk):
                j1 = min(j0 + self._chunk, self._n)
                block = _csc_block(data, indices, indptr, j0, j1, self._n)
                if block is not None:
                    acc += block @ X[j0:j1]
                mask = np.asarray(nd_row[j0:j1])
                if mask.any():
                    nd_covered += X[j0:j1][mask].sum(axis=0)
            result += acc * Z[k]
            covered[k] = nd_covered
            release_pages(data, indices, indptr, nd_row)
        totals = _column_sums(X) * _column_sums(Z)
        dangling = np.maximum(totals - _column_sums(Z * covered), 0.0)
        result += dangling / self._n
        return result


class ChunkedRelationTransition:
    """Out-of-core ``R`` of Eq. 2: mmap'd CSC slices + linked-pair pattern.

    ``propagate_many(X, Y)`` evaluates the per-relation bilinear forms
    ``column_sums(X * (B_k @ Y))`` chunk by chunk and adds the uniform
    ``1/m`` mass of the unlinked pairs via the on-disk pair-indicator
    pattern (indices/indptr only; the implicit values are ones).
    """

    def __init__(self, data_files, store_arrays, pair_files, *, n: int, m: int,
                 n_linked_pairs: int, chunk_size: int = DEFAULT_CHUNK_SIZE):
        self._data_files = list(data_files)
        self._store_arrays = store_arrays
        self._pair_files = tuple(pair_files)  # (indices_path, indptr_path)
        self._n = int(n)
        self._m = int(m)
        self._n_linked = int(n_linked_pairs)
        self._chunk = int(chunk_size)
        self._data = [None] * self._m
        self._pairs = None

    def _relation(self, k: int):
        if self._data[k] is None:
            self._data[k] = np.load(self._data_files[k], mmap_mode="r")
        indices, indptr = self._store_arrays(k)
        return self._data[k], indices, indptr

    def _pair_arrays(self):
        if self._pairs is None:
            self._pairs = (
                np.load(self._pair_files[0], mmap_mode="r"),
                np.load(self._pair_files[1], mmap_mode="r"),
            )
        return self._pairs

    def relation_arrays(self, k: int):
        """Relation ``k``'s on-disk CSC triple ``(data, indices, indptr)``."""
        return self._relation(k)

    def pair_arrays(self):
        """The linked-pair pattern's ``(indices, indptr)`` memmaps."""
        return self._pair_arrays()

    @property
    def chunk_size(self) -> int:
        """Columns per streamed block."""
        return self._chunk

    @property
    def relation_nnz(self) -> tuple[int, ...]:
        """Stored entries per relation slice (from the data file sizes)."""
        return tuple(
            int(self._relation(k)[0].size) for k in range(self._m)
        )

    def column_nnz(self) -> np.ndarray:
        """Per-column entry counts over relation slices + pair pattern."""
        weights = np.zeros(self._n, dtype=np.int64)
        for k in range(self._m):
            _, _, indptr = self._relation(k)
            weights += np.diff(np.asarray(indptr, dtype=np.int64))
        _, pair_indptr = self._pair_arrays()
        weights += np.diff(np.asarray(pair_indptr, dtype=np.int64))
        return weights

    @property
    def shape(self) -> tuple[int, int, int]:
        """Logical tensor shape ``(n, n, m)``."""
        return (self._n, self._n, self._m)

    @property
    def n_linked_pairs(self) -> int:
        """Number of ``(i, j)`` pairs connected by at least one relation."""
        return self._n_linked

    @property
    def unlinked_share(self) -> float:
        """Fraction of the ``n^2`` node pairs with no relation at all."""
        return 1.0 - self._n_linked / (self._n * self._n)

    def propagate_many(
        self, X: np.ndarray, Y: np.ndarray | None = None
    ) -> np.ndarray:
        """Batched ``R x-bar_1 X x-bar_2 Y`` over the mmap'd slices."""
        X = check_array_2d(X, "X", shape=(self._n, None))
        Y = X if Y is None else check_array_2d(Y, "Y", shape=(self._n, X.shape[1]))
        result = np.empty((self._m, X.shape[1]))
        acc = np.empty_like(X)
        for k in range(self._m):
            data, indices, indptr = self._relation(k)
            if data.size == 0:
                result[k] = 0.0
                continue
            acc[:] = 0.0
            for j0 in range(0, self._n, self._chunk):
                j1 = min(j0 + self._chunk, self._n)
                block = _csc_block(data, indices, indptr, j0, j1, self._n)
                if block is not None:
                    acc += block @ Y[j0:j1]
            result[k] = _column_sums(X * acc)
            release_pages(data, indices, indptr)
        pair_indices, pair_indptr = self._pair_arrays()
        acc[:] = 0.0
        for j0 in range(0, self._n, self._chunk):
            j1 = min(j0 + self._chunk, self._n)
            start, stop = int(pair_indptr[j0]), int(pair_indptr[j1])
            if start == stop:
                continue
            local_indptr = np.asarray(
                pair_indptr[j0 : j1 + 1], dtype=np.int64
            ) - start
            block = sp.csc_matrix(
                (
                    np.ones(stop - start),
                    pair_indices[start:stop],
                    local_indptr,
                ),
                shape=(self._n, j1 - j0),
            )
            acc += block @ Y[j0:j1]
        release_pages(pair_indices, pair_indptr)
        totals = _column_sums(X) * _column_sums(Y)
        linked_mass = _column_sums(X * acc)
        dangling = np.maximum(totals - linked_mass, 0.0)
        result += dangling / self._m
        return result


class ChunkedFeatureWalk:
    """Out-of-core feature-walk matrix ``W`` supporting ``W @ X``.

    Two storage modes (see :mod:`repro.ooc.build`): ``dense`` — a single
    mmap'd ``(n, n)`` array built by the exact in-RAM Eq. 9 code (small
    stores only, values bit-identical) — and ``csc`` — the chunked top-k
    cosine matrix streamed column-block by column-block like the
    transition slices.
    """

    def __init__(self, mode: str, files, *, n: int,
                 chunk_size: int = DEFAULT_CHUNK_SIZE):
        self._mode = mode
        self._files = files
        self._n = int(n)
        self._chunk = int(chunk_size)
        self._arrays = None

    @property
    def shape(self) -> tuple[int, int]:
        """Matrix shape ``(n, n)``."""
        return (self._n, self._n)

    @property
    def mode(self) -> str:
        """Storage mode: ``"dense"`` or ``"csc"``."""
        return self._mode

    @property
    def chunk_size(self) -> int:
        """Columns per streamed block (csc mode)."""
        return self._chunk

    def arrays(self):
        """The on-disk arrays: ``(w,)`` dense or ``(data, indices, indptr)``."""
        return self._load()

    def _load(self):
        if self._arrays is None:
            if self._mode == "dense":
                self._arrays = (np.load(self._files[0], mmap_mode="r"),)
            else:
                self._arrays = tuple(
                    np.load(path, mmap_mode="r") for path in self._files
                )
        return self._arrays

    def __matmul__(self, X: np.ndarray) -> np.ndarray:
        X = check_array_2d(X, "X", shape=(self._n, None))
        if self._mode == "dense":
            (w,) = self._load()
            result = w @ X
            release_pages(w)
            return result
        data, indices, indptr = self._load()
        result = np.zeros_like(X)
        for j0 in range(0, self._n, self._chunk):
            j1 = min(j0 + self._chunk, self._n)
            block = _csc_block(data, indices, indptr, j0, j1, self._n)
            if block is not None:
                result += block @ X[j0:j1]
        release_pages(data, indices, indptr)
        return result


class ChunkedOperators:
    """The out-of-core counterpart of :class:`repro.core.tmark.TMarkOperators`.

    Duck-types the operator triple :meth:`TMark.fit_operators` consumes
    (``o_tensor`` / ``r_tensor`` / ``w_matrix`` / ``shape`` /
    similarity settings), with every product streaming over the store's
    memmap'd arrays.  Build with
    :func:`repro.ooc.build.build_chunked_operators`.
    """

    def __init__(self, *, o_tensor, r_tensor, w_matrix, shape,
                 similarity_top_k, similarity_metric, chunk_size, directory):
        self.o_tensor = o_tensor
        self.r_tensor = r_tensor
        self.w_matrix = w_matrix
        self.shape = tuple(shape)  # (n_nodes, n_relations)
        self.similarity_top_k = similarity_top_k
        self.similarity_metric = similarity_metric
        self.chunk_size = int(chunk_size)
        self.directory = directory

    def __repr__(self) -> str:
        w_mode = self.w_matrix.mode if self.w_matrix is not None else "none"
        return (
            f"ChunkedOperators(shape={self.shape}, chunk_size={self.chunk_size}, "
            f"w={w_mode!r}, directory={str(self.directory)!r})"
        )
