"""The ``ooc`` synthetic scale generator: million-node stores on disk.

The calibrated generators in :mod:`repro.datasets` build an in-RAM
:class:`~repro.hin.graph.HIN` with per-node Python loops — perfect for
paper-scale graphs, hopeless at millions of nodes.  This generator is
fully vectorised and writes a :class:`~repro.ooc.store.GraphStore`
directory *directly*, chunking the feature rows through
``open_memmap`` so no ``(n, d)`` array is ever resident; the adjacency
CSC arrays are assembled in RAM (they are ``O(n_links)``, tens of MB
even at scale) and saved per relation.

Graph model — a homophilous multi-relation network in the spirit of the
paper's datasets: each node gets one latent class; link sources are
uniform and each link lands on a same-class target with probability
``homophily`` (uniform otherwise); features are a noisy one-hot-ish
class signature so the feature walk carries signal too; a
``labeled_fraction`` of nodes reveal their class as supervision.  The
full latent class vector is saved as ``ground_truth.npy`` for accuracy
checks at any scale.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ValidationError
from repro.ooc.store import (
    STORE_FORMAT_VERSION,
    GraphStore,
    _index_dtype,
    _sha256_file,
    write_manifest,
)
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction, check_positive_int

#: Feature rows written per chunk (bounds the resident feature block).
FEATURE_CHUNK_ROWS = 262144


def generate_ooc_store(
    directory,
    *,
    n_nodes: int = 2_000_000,
    n_links: int = 2_200_000,
    n_relations: int = 2,
    n_labels: int = 2,
    n_features: int = 32,
    labeled_fraction: float = 0.05,
    homophily: float = 0.8,
    feature_noise: float = 0.3,
    seed=0,
) -> GraphStore:
    """Generate a synthetic scale HIN directly as an on-disk store.

    Parameters
    ----------
    directory:
        Target store directory (created if missing).
    n_nodes, n_links:
        Node count and *approximate* total link count across relations
        (self-loops and duplicate links are dropped, so the realised
        count is slightly lower; the manifest records the exact one).
    n_relations, n_labels, n_features:
        Link types ``m``, classes ``q`` and feature dimension ``d``.
    labeled_fraction:
        Share of nodes whose class is revealed in the label matrix.
    homophily:
        Probability that a link's target shares the source's class.
    feature_noise:
        Uniform noise amplitude added on top of the class signature.
    seed:
        RNG seed; the store is deterministic given it.

    Returns
    -------
    The opened :class:`GraphStore`.  The latent classes are saved as
    ``ground_truth.npy`` inside the store directory (sha256-tracked in
    the manifest like every other array).
    """
    n = check_positive_int(n_nodes, "n_nodes")
    total_links = check_positive_int(n_links, "n_links")
    m = check_positive_int(n_relations, "n_relations")
    q = check_positive_int(n_labels, "n_labels")
    d = check_positive_int(n_features, "n_features")
    labeled_fraction = check_fraction(labeled_fraction, "labeled_fraction")
    homophily = check_fraction(
        homophily, "homophily", inclusive_low=True, inclusive_high=True
    )
    if feature_noise < 0:
        raise ValidationError(
            f"feature_noise must be non-negative, got {feature_noise}"
        )
    if q > n:
        raise ValidationError(f"n_labels={q} exceeds n_nodes={n}")
    rng = ensure_rng(seed)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    files: dict[str, str] = {}

    def _write(name: str, array: np.ndarray) -> None:
        path = directory / name
        np.save(path, array)
        files[name] = _sha256_file(path)

    # Latent classes: guarantee every class occupied so per-class chains
    # always have a non-empty anchor pool at any labeled_fraction.
    y = rng.integers(0, q, size=n, dtype=np.int64)
    y[:q] = np.arange(q)
    class_order = np.argsort(y, kind="stable")
    class_counts = np.bincount(y, minlength=q)
    class_offsets = np.zeros(q + 1, dtype=np.int64)
    np.cumsum(class_counts, out=class_offsets[1:])

    # Links: vectorised homophilous sampling per relation.
    per_relation = max(total_links // m, 1)
    idx_dtype = _index_dtype(n, total_links)
    relation_nnz: list[int] = []
    nnz = 0
    for k in range(m):
        src = rng.integers(0, n, size=per_relation, dtype=np.int64)
        dst = rng.integers(0, n, size=per_relation, dtype=np.int64)
        same_class = rng.random(per_relation) < homophily
        if np.any(same_class):
            src_classes = y[src[same_class]]
            offsets = rng.integers(
                0, class_counts[src_classes], dtype=np.int64
            )
            dst[same_class] = class_order[class_offsets[src_classes] + offsets]
        keep = src != dst
        src, dst = src[keep], dst[keep]
        # Deduplicate (source, target) pairs; flat id sorted source-major
        # == CSC column-major order, so the unique ids *are* the CSC.
        pair_ids = np.unique(src * n + dst)
        col, row = np.divmod(pair_ids, n)
        counts = np.bincount(col, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        _write(f"rel{k}.data.npy", np.ones(row.size, dtype=np.float64))
        _write(f"rel{k}.indices.npy", row.astype(idx_dtype))
        _write(f"rel{k}.indptr.npy", indptr.astype(idx_dtype))
        relation_nnz.append(int(row.size))
        nnz += int(row.size)

    # Features: noisy class signature, written in row chunks so the
    # resident block stays bounded at any n.
    signature = rng.random((q, d)) + np.eye(q, d) * 2.0
    features_path = directory / "features.npy"
    features = np.lib.format.open_memmap(
        features_path, mode="w+", dtype=np.float64, shape=(n, d)
    )
    for r0 in range(0, n, FEATURE_CHUNK_ROWS):
        r1 = min(r0 + FEATURE_CHUNK_ROWS, n)
        block = signature[y[r0:r1]]
        if feature_noise > 0:
            block = block + feature_noise * rng.random((r1 - r0, d))
        features[r0:r1] = block
    features.flush()
    del features
    files["features.npy"] = _sha256_file(features_path)

    # Supervision: reveal a labeled_fraction of classes (at least one
    # anchor per class — the first q nodes cover every class).
    labels = np.zeros((n, q), dtype=bool)
    labeled = rng.random(n) < labeled_fraction
    labeled[:q] = True
    rows = np.flatnonzero(labeled)
    labels[rows, y[rows]] = True
    _write("labels.npy", labels)
    _write("ground_truth.npy", y)

    manifest = {
        "format_version": STORE_FORMAT_VERSION,
        "n_nodes": n,
        "n_relations": m,
        "n_labels": q,
        "n_features": d,
        "relation_names": [f"relation_{k}" for k in range(m)],
        "label_names": [f"class_{c}" for c in range(q)],
        "node_names": "default",
        "multilabel": False,
        "metadata": {
            "generator": "ooc",
            "seed": int(seed) if np.isscalar(seed) else None,
            "homophily": homophily,
            "labeled_fraction": labeled_fraction,
            "feature_noise": float(feature_noise),
            "requested_links": total_links,
        },
        "features": "dense",
        "index_dtype": np.dtype(idx_dtype).name,
        "nnz": nnz,
        "relation_nnz": relation_nnz,
        "graph_fingerprint": None,
        "files": files,
    }
    write_manifest(directory, manifest)
    return GraphStore.open(directory)
