"""``repro.ooc`` — the out-of-core scale tier.

Everything the rest of the library holds in RAM — the adjacency tensor,
the ``(O, R, W)`` operators, the feature matrix — caps T-Mark at a few
hundred thousand nodes.  This package lifts that ceiling with three
pieces, following DGL graphbolt's on-disk CSC design:

* :class:`GraphStore` — a directory of memory-mapped per-relation CSC
  arrays plus feature/label blocks, with a sha256-fingerprinted
  manifest and a bit-identical round trip to the in-RAM
  :class:`~repro.hin.graph.HIN` (:mod:`repro.ooc.store`);
* :func:`build_chunked_operators` — column-block construction of the
  normalised operators straight onto disk, touching ``O(nnz/chunk)``
  resident memory and emitting per-chunk ``operator_build`` events
  (:mod:`repro.ooc.build`);
* :class:`ChunkedOperators` + :func:`fit_from_store` — streaming
  propagation adapters that let :meth:`TMark.fit_operators` run plain
  or accelerated chains over mmap'd slices, argmax-identical to the
  in-memory path (:mod:`repro.ooc.operators`, :mod:`repro.ooc.fit`).

:func:`generate_ooc_store` (:mod:`repro.ooc.synth`) builds million-node
synthetic stores for the scale benchmarks without ever materialising
the graph in RAM.
"""

from repro.ooc.build import (
    MAX_DENSE_W_NODES,
    OPERATORS_FORMAT_VERSION,
    build_chunked_operators,
)
from repro.ooc.fit import fit_from_store
from repro.ooc.operators import (
    DEFAULT_CHUNK_SIZE,
    ChunkedFeatureWalk,
    ChunkedNodeTransition,
    ChunkedOperators,
    ChunkedRelationTransition,
    release_pages,
)
from repro.ooc.store import (
    MANIFEST_NAME,
    OPERATORS_DIRNAME,
    STORE_FORMAT_VERSION,
    GraphStore,
)
from repro.ooc.synth import generate_ooc_store

__all__ = [
    "GraphStore",
    "ChunkedOperators",
    "ChunkedNodeTransition",
    "ChunkedRelationTransition",
    "ChunkedFeatureWalk",
    "build_chunked_operators",
    "fit_from_store",
    "generate_ooc_store",
    "release_pages",
    "DEFAULT_CHUNK_SIZE",
    "MANIFEST_NAME",
    "MAX_DENSE_W_NODES",
    "OPERATORS_DIRNAME",
    "OPERATORS_FORMAT_VERSION",
    "STORE_FORMAT_VERSION",
]
