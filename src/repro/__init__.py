"""repro — a reproduction of T-Mark: tensor-based Markov chain collective
classification for heterogeneous information networks (Han et al.,
TKDE / ICDE 2023).

Quickstart
----------
>>> from repro import TMark, make_dblp
>>> hin = make_dblp(seed=0)                      # a calibrated DBLP-like HIN
>>> import numpy as np
>>> from repro.ml import stratified_fraction_split
>>> mask = stratified_fraction_split(hin.y, 0.1, rng=np.random.default_rng(1))
>>> model = TMark(alpha=0.8, gamma=0.6).fit(hin.masked(mask))
>>> predictions = model.predict()                # class index per node
>>> model.result_.top_relations("DB", count=5)   # most important link types
... # doctest: +SKIP

Subpackages
-----------
``repro.core``
    T-Mark, TensorRrCc, MultiRank — the paper's algorithms.
``repro.tensor``
    The sparse 3-way adjacency/transition tensor substrate.
``repro.hin``
    The attributed heterogeneous network container and builder.
``repro.baselines``
    ICA, Hcc, Hcc-ss, wvRN+RL, EMR, Highway Network, Graph Inception.
``repro.ml``
    From-scratch classifiers, metrics, splits and preprocessing.
``repro.datasets``
    Calibrated synthetic DBLP / Movies / NUS / ACM generators.
``repro.experiments``
    Runners regenerating every table and figure of the paper.
"""

from repro.baselines import EMR, GraphInception, Hcc, HccSS, HighwayNetwork, ICA, WvRNRL
from repro.core import HAR, MultiRank, TensorRrCc, TMark, TMarkResult
from repro.datasets import (
    make_acm,
    make_dblp,
    make_movies,
    make_nus,
    make_synthetic_hin,
    make_worked_example,
)
from repro.errors import (
    ConvergenceError,
    DatasetError,
    NotFittedError,
    ReproError,
    ShapeError,
    ValidationError,
)
from repro.hin import (
    HIN,
    HINBuilder,
    from_networkx,
    hin_summary,
    load_hin,
    load_hin_from_files,
    save_hin,
    to_networkx,
)
from repro.tensor import SparseTensor3

__version__ = "1.0.0"

__all__ = [
    "TMark",
    "TMarkResult",
    "TensorRrCc",
    "MultiRank",
    "HAR",
    "ICA",
    "Hcc",
    "HccSS",
    "WvRNRL",
    "EMR",
    "HighwayNetwork",
    "GraphInception",
    "HIN",
    "HINBuilder",
    "SparseTensor3",
    "hin_summary",
    "save_hin",
    "load_hin",
    "load_hin_from_files",
    "to_networkx",
    "from_networkx",
    "make_dblp",
    "make_movies",
    "make_nus",
    "make_acm",
    "make_synthetic_hin",
    "make_worked_example",
    "ReproError",
    "ShapeError",
    "ValidationError",
    "NotFittedError",
    "ConvergenceError",
    "DatasetError",
    "__version__",
]
