"""Hierarchical spans: causal structure on top of the flat event stream.

A *span* is a named interval of work with an identity.  Entering
:func:`span` allocates a fresh ``span_id``, links it to the enclosing
span (``parent_id``) and to the root of the current causal tree
(``trace_id``), and on exit emits a single ``"span"`` event carrying the
ids, the wall-clock duration and the emitting ``pid``/``tid``.  Flat
events written while a span is active are tagged with its ``span_id`` by
the trace sinks (:class:`~repro.obs.trace.JsonlTraceRecorder`,
:class:`~repro.obs.flight.FlightRecorder`), which is what lets
post-processing reassemble "this ``chain_iteration`` happened inside
*that* reconverge inside *that* request".

The active span lives in a :class:`~contextvars.ContextVar`, mirroring
the ambient recorder stack: it nests, restores on exit, and is isolated
per thread and per ``asyncio`` task.  Two propagation escapes exist for
execution boundaries the context variable cannot cross by itself:

* **fork workers** — ship ``(trace_id, span_id)`` to the child (see
  ``_WorkerState.span_context`` in :mod:`repro.experiments.parallel`)
  and re-root with :func:`activate_span`;
* **serve threads** — each daemon request opens its own root-less span;
  the request id returned to the client *is* the span id, so daemon
  flight-recorder dumps correlate with client-side logs.

Span ids come from :func:`secrets.token_hex`, which reads the kernel
entropy pool directly — unlike :mod:`random`, forked workers cannot
clone its state, so ids stay unique across a process pool without any
coordination.

When the governing recorder is disabled, :func:`span` yields ``None``
and touches neither the clock nor the context variable, preserving the
near-zero cost of the untraced path.
"""

from __future__ import annotations

import os
import secrets
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

from repro.obs.recorder import Recorder, get_recorder


def new_span_id() -> str:
    """A fresh 64-bit hex id, unique across threads *and* fork workers."""
    return secrets.token_hex(8)


@dataclass(frozen=True)
class SpanContext:
    """Identity of one span: its id, its parent's, and the tree root's.

    ``parent_id`` is ``None`` for a root span; ``trace_id`` equals the
    root span's ``span_id`` and is inherited unchanged by every
    descendant, so all events of one causal tree share it.
    """

    span_id: str
    trace_id: str
    parent_id: str | None = None

    def child(self) -> "SpanContext":
        """A fresh context one level below this span."""
        return SpanContext(
            span_id=new_span_id(), trace_id=self.trace_id, parent_id=self.span_id
        )


_current_span: ContextVar[SpanContext | None] = ContextVar(
    "repro_obs_span", default=None
)


def current_span() -> SpanContext | None:
    """The active span context in this thread/task, or ``None``."""
    return _current_span.get()


def current_span_id() -> str | None:
    """The active span id, or ``None`` (convenience for event tagging)."""
    ctx = _current_span.get()
    return None if ctx is None else ctx.span_id


@contextmanager
def activate_span(context: SpanContext | None):
    """Install ``context`` as the active span without emitting anything.

    The re-rooting primitive for execution boundaries: a fork worker (or
    any thread handed a serialized ``(trace_id, span_id)`` pair) calls
    this with the parent's context so spans it opens link back to the
    dispatching span in the coordinator's trace.
    """
    token = _current_span.set(context)
    try:
        yield context
    finally:
        _current_span.reset(token)


@contextmanager
def span(name: str, *, recorder: Recorder | None = None, **fields):
    """Open a span named ``name``; emit one ``"span"`` event on exit.

    ``recorder`` defaults to the ambient recorder; when it is disabled
    the body runs untouched and ``None`` is yielded.  Otherwise a
    :class:`SpanContext` is yielded (its ``span_id`` doubles as a
    request/work-item id) and installed as the active span for the
    duration of the block, so nested ``span`` calls chain ``parent_id``
    and flat events emitted inside are tagged by the trace sinks.

    The event carries ``name``, the three ids, ``seconds``, the emitting
    ``pid``/``tid`` and any extra ``fields``; its ``ts`` is stamped at
    *close*, so the interval is ``[ts - seconds, ts]`` on the recorder's
    clock.  An exception escaping the body is recorded as an ``error``
    field (exception class name) and re-raised.
    """
    rec = get_recorder() if recorder is None else recorder
    if not rec.enabled:
        yield None
        return
    parent = _current_span.get()
    ctx = parent.child() if parent is not None else _root_context()
    token = _current_span.set(ctx)
    started = time.perf_counter()
    error: str | None = None
    try:
        yield ctx
    except BaseException as exc:
        error = type(exc).__name__
        raise
    finally:
        _current_span.reset(token)
        record = dict(
            name=name,
            span_id=ctx.span_id,
            parent_id=ctx.parent_id,
            trace_id=ctx.trace_id,
            seconds=time.perf_counter() - started,
            pid=os.getpid(),
            tid=threading.get_ident(),
        )
        if error is not None:
            record["error"] = error
        record.update(fields)
        rec.emit("span", **record)


def _root_context() -> SpanContext:
    """A root span context: its own id is the trace id."""
    span_id = new_span_id()
    return SpanContext(span_id=span_id, trace_id=span_id, parent_id=None)
