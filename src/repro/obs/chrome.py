"""Chrome Trace Event / Perfetto export for JSONL traces and ring dumps.

Converts a list of trace events (from :func:`~repro.obs.trace.read_trace`
or :meth:`~repro.obs.flight.FlightRecorder.events`) into the Chrome
trace-event JSON object format, which ``ui.perfetto.dev`` and
``chrome://tracing`` open directly.  The mapping:

* ``span`` events become complete (``"ph": "X"``) slices on the
  ``(pid, tid)`` track they were emitted from; their interval is
  ``[ts - seconds, ts]`` because spans stamp ``ts`` at close.
* Flat events with a recognized duration field (``fit``, ``reconverge``,
  ``operator_build``, ``grid_cell``, ...) become slices too, placed on
  the track of the deepest span whose interval contains them — this is
  what reassembles the fit → phase → chunk hierarchy visually.
* ``chain_iteration`` events expand into an ``iteration`` slice with one
  child slice per chain phase (phases are laid out sequentially in
  :data:`~repro.obs.recorder.CHAIN_PHASES` order; only their summed
  durations are recorded, not their start offsets).
* ``resource_sample`` events become counter (``"ph": "C"``) tracks for
  RSS, CPU time and GC collections.
* Everything else becomes an instant (``"ph": "i"``) marker.

Timestamps are microseconds on the recorder's monotonic clock.  Worker
events replayed through the coordinator recorder keep their own ``pid``
(so each worker gets its own process lane) but carry replay-time
timestamps — durations are exact, placement is approximate.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.recorder import CHAIN_PHASES

#: Flat (non-span) events whose named field is a duration in seconds;
#: the event's interval is taken as ``[ts - duration, ts]``.
DURATION_FIELDS = {
    "fit": "seconds",
    "trial": "seconds",
    "grid_cell": "seconds",
    "reconverge": "seconds",
    "delta_apply": "seconds",
    "operator_patch": "seconds",
    "cell_done": "seconds",
    "http_request": "seconds",
    "snapshot_swap": "build_seconds",
    "operator_build": "transition_seconds",
    "solver_step": "solve_seconds",
}

#: Event types that render as neither slice, counter nor instant.
_SKIPPED = frozenset({"counters"})

_MICRO = 1e6


def _slice_name(event: dict) -> str:
    """A compact display name for a flat event's slice."""
    kind = event["event"]
    if kind == "operator_build" and "operator" in event:
        chunk = event.get("chunk")
        suffix = "" if chunk is None else f"#{chunk}"
        return f"operator_build[{event['operator']}{event.get('relation', '')}{suffix}]"
    if kind == "grid_cell":
        return f"grid_cell {event.get('method', '?')}@{event.get('fraction', '?')}"
    if kind == "http_request":
        return f"http {event.get('endpoint', '?')}"
    return kind


def _track_of(event: dict, spans: list[dict], main_pid: int) -> tuple[int, int]:
    """The ``(pid, tid)`` lane a flat event belongs on.

    Events carrying explicit ``pid``/``tid`` keep them; otherwise the
    deepest (shortest) span on the same pid whose interval contains the
    event's timestamp donates its tid, falling back to tid 0.
    """
    pid = int(event.get("pid", event.get("worker", main_pid)))
    if "tid" in event:
        return pid, int(event["tid"])
    ts = float(event.get("ts", 0.0))
    best_tid, best_dur = 0, None
    for rec in spans:
        if int(rec.get("pid", main_pid)) != pid:
            continue
        dur = float(rec.get("seconds", 0.0))
        end = float(rec.get("ts", 0.0))
        if end - dur <= ts <= end and (best_dur is None or dur < best_dur):
            best_tid, best_dur = int(rec.get("tid", 0)), dur
    return pid, best_tid


def chrome_trace(events: list[dict]) -> dict:
    """Convert trace ``events`` to a Chrome trace-event JSON object.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` ready
    for :func:`json.dump`; see the module docstring for the mapping.
    """
    spans = [e for e in events if e.get("event") == "span"]
    pids_seen: set[int] = set()
    main_pid = 0
    for rec in spans:
        if "worker" not in rec and "pid" in rec:
            main_pid = int(rec["pid"])
            break
    out: list[dict] = []

    def args_of(event: dict) -> dict:
        return {
            k: v for k, v in event.items() if k not in ("event", "ts") and v is not None
        }

    for event in events:
        kind = event.get("event")
        if kind in _SKIPPED or kind is None:
            continue
        ts = float(event.get("ts", 0.0))
        if kind == "span":
            dur = max(float(event.get("seconds", 0.0)), 0.0)
            pid = int(event.get("pid", main_pid))
            tid = int(event.get("tid", 0))
            pids_seen.add(pid)
            out.append(
                {
                    "ph": "X",
                    "name": str(event.get("name", "span")),
                    "cat": "span",
                    "ts": (ts - dur) * _MICRO,
                    "dur": dur * _MICRO,
                    "pid": pid,
                    "tid": tid,
                    "args": args_of(event),
                }
            )
            continue
        pid, tid = _track_of(event, spans, main_pid)
        pids_seen.add(pid)
        if kind == "resource_sample":
            out.extend(
                {
                    "ph": "C",
                    "name": name,
                    "ts": ts * _MICRO,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
                for name, args in (
                    ("memory", {"rss_mb": float(event.get("rss_bytes", 0)) / 1e6}),
                    (
                        "cpu_seconds",
                        {
                            "user": float(event.get("cpu_user_seconds", 0.0)),
                            "system": float(event.get("cpu_system_seconds", 0.0)),
                        },
                    ),
                    (
                        "gc_collections",
                        {"total": float(event.get("gc_collections", 0))},
                    ),
                )
            )
            continue
        if kind == "chain_iteration":
            raw = event.get("phases", {})
            phases = {
                name: float(raw.get(name, 0.0))
                for name in (*CHAIN_PHASES, *sorted(set(raw) - set(CHAIN_PHASES)))
                if float(raw.get(name, 0.0)) > 0.0
            }
            total = sum(phases.values())
            start = ts - total
            out.append(
                {
                    "ph": "X",
                    "name": f"iteration {event.get('t', '?')}",
                    "cat": "chain",
                    "ts": start * _MICRO,
                    "dur": total * _MICRO,
                    "pid": pid,
                    "tid": tid,
                    "args": args_of(event),
                }
            )
            cursor = start
            for name, dur in phases.items():
                out.append(
                    {
                        "ph": "X",
                        "name": name,
                        "cat": "phase",
                        "ts": cursor * _MICRO,
                        "dur": dur * _MICRO,
                        "pid": pid,
                        "tid": tid,
                        "args": {},
                    }
                )
                cursor += dur
            continue
        dur_field = DURATION_FIELDS.get(kind)
        if dur_field is not None and event.get(dur_field) is not None:
            dur = max(float(event[dur_field]), 0.0)
            out.append(
                {
                    "ph": "X",
                    "name": _slice_name(event),
                    "cat": kind,
                    "ts": (ts - dur) * _MICRO,
                    "dur": dur * _MICRO,
                    "pid": pid,
                    "tid": tid,
                    "args": args_of(event),
                }
            )
            continue
        out.append(
            {
                "ph": "i",
                "name": kind,
                "cat": kind,
                "ts": ts * _MICRO,
                "pid": pid,
                "tid": tid,
                "s": "t",
                "args": args_of(event),
            }
        )

    metadata = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "args": {"name": "tmark" if pid == main_pid else f"worker {pid}"},
        }
        for pid in sorted(pids_seen)
    ]
    return {"traceEvents": metadata + out, "displayTimeUnit": "ms"}


def write_chrome_trace(events: list[dict], path) -> Path:
    """Write :func:`chrome_trace` of ``events`` to ``path`` (gz-aware)."""
    path = Path(path)
    payload = chrome_trace(events)
    if path.suffix == ".gz":
        import gzip

        with gzip.open(path, "wt", encoding="utf-8") as handle:
            json.dump(payload, handle)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
    return path
