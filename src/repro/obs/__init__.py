"""Chain-level observability: recorders, phase timers and JSONL traces.

T-Mark's cost is dominated by per-iteration tensor contractions whose
behaviour varies sharply with network structure and hyper-parameters.
This package provides the measurement substrate the perf work builds
on: a pluggable :class:`Recorder` protocol with a zero-overhead no-op
default, wall-clock :class:`PhaseTimer` accumulators, monotonic
counters, and a JSONL trace writer emitting structured events from the
hot paths (``chain_iteration``, ``chain_class``, ``operator_build``,
``fit``, ``trial``, ``grid_cell``).

Recorders are plumbed two ways:

* *ambiently* — :func:`use_recorder` installs a recorder for a scope
  (the CLI's ``--trace`` flag wraps a whole experiment run this way)
  and instrumented code picks it up via :func:`get_recorder`;
* *explicitly* — ``TMark.fit(..., recorder=...)``,
  ``build_operators(..., recorder=...)``,
  ``evaluate_method(..., recorder=...)`` and
  ``run_grid(..., recorder=...)`` accept an override.

The default recorder is :data:`NULL_RECORDER` (``enabled`` False): the
instrumented loops hoist that flag once per fit and skip every timer
read and event emission, so untraced runs pay only a handful of branch
checks per iteration (bounded <2% by
``benchmarks/bench_trace_overhead.py``).
"""

from repro.obs.chrome import chrome_trace, write_chrome_trace
from repro.obs.diff import (
    TraceDiff,
    TraceDiffEntry,
    diff_summaries,
    diff_traces,
    format_trace_diff,
)
from repro.obs.health import (
    ChainHealth,
    HEALTH_STATUSES,
    chain_health,
    classify_residuals,
    estimate_decay_rate,
    format_health_report,
    health_from_history,
    health_from_result,
    trace_chain_health,
    worst_status,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRecorder,
    MetricsRegistry,
    registry_from_events,
)
from repro.obs.recorder import (
    CHAIN_PHASES,
    EVENT_TYPES,
    ListRecorder,
    NULL_RECORDER,
    NullRecorder,
    PhaseTimer,
    Recorder,
    get_recorder,
    use_recorder,
)
from repro.obs.flight import FlightRecorder, ResourceSampler, sample_process_stats
from repro.obs.spans import (
    SpanContext,
    activate_span,
    current_span,
    current_span_id,
    new_span_id,
    span,
)
from repro.obs.summary import (
    TraceSummary,
    format_trace_summary,
    summarize_trace,
)
from repro.obs.trace import JsonlTraceRecorder, read_trace

__all__ = [
    "CHAIN_PHASES",
    "EVENT_TYPES",
    "HEALTH_STATUSES",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "ListRecorder",
    "PhaseTimer",
    "get_recorder",
    "use_recorder",
    "JsonlTraceRecorder",
    "read_trace",
    "SpanContext",
    "span",
    "activate_span",
    "current_span",
    "current_span_id",
    "new_span_id",
    "FlightRecorder",
    "ResourceSampler",
    "sample_process_stats",
    "chrome_trace",
    "write_chrome_trace",
    "TraceSummary",
    "summarize_trace",
    "format_trace_summary",
    "ChainHealth",
    "chain_health",
    "classify_residuals",
    "estimate_decay_rate",
    "format_health_report",
    "health_from_history",
    "health_from_result",
    "trace_chain_health",
    "worst_status",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRecorder",
    "MetricsRegistry",
    "registry_from_events",
    "TraceDiff",
    "TraceDiffEntry",
    "diff_summaries",
    "diff_traces",
    "format_trace_diff",
]
