"""Convergence diagnostics: fold residual series into health verdicts.

The chain-level trace layer records the Algorithm 1 stopping quantity
``rho_t = ||x_t - x_{t-1}||_1 + ||z_t - z_{t-1}||_1`` per class and
iteration (``chain_class`` events) without interpreting it.  This module
turns those series into actionable :class:`ChainHealth` verdicts: a
fitted geometric decay rate (the observable surrogate for the spectral
gap of the linearised update map — see ``repro.analysis.theory``), a
projection of how many more iterations the chain needs to reach its
tolerance, and a five-way status classification.

Status vocabulary and thresholds
--------------------------------
Residuals of a healthy T-Mark chain decay geometrically (Fig. 10 of the
paper; the restart term makes the update a contraction), so the verdict
is read off the *tail* of the series — the first
:data:`DECAY_BURN_IN` iterations are transient and skipped.

``healthy``
    The chain converged.
``not_converged``
    The chain ran out of budget but is decaying geometrically at a rate
    below :data:`STALL_RATE` — more iterations would finish the job
    (the projection is finite).  This is the status a ``max_iter``
    exhaustion surfaces through the ``chain_health`` event.
``diverging``
    The fitted rate exceeds :data:`DIVERGENCE_RATE`, or the final
    residual grew past :data:`DIVERGENCE_GROWTH` x the first one —
    the iteration is moving away from any fixed point.
``oscillating``
    The residual is non-monotone (the share of up-moves in the tail is
    at least :data:`OSCILLATION_UP_SHARE`), or it sits flat at
    essentially its maximum (final residual at least
    :data:`NO_PROGRESS_FRACTION` of the peak with a rate near 1): the
    iterates are bouncing on a periodic orbit rather than approaching
    a point.  A restart-free chain on a periodic graph lands here.
``stalled``
    The rate is at least :data:`STALL_RATE` but the chain *had* made
    progress before flattening out — decay stopped short of the
    tolerance (e.g. tolerance set below attainable float resolution).

The decay-rate estimator is the geometric mean of the consecutive
residual ratios over the tail (equivalently the telescoped endpoint
ratio), so on a cleanly geometric series it reproduces the observed
per-iteration ratio exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Leading iterations excluded from the decay fit (start-up transient).
DECAY_BURN_IN = 2

#: Fitted rate above this is classified ``diverging``.
DIVERGENCE_RATE = 1.01

#: Final residual above this multiple of the first is ``diverging``.
DIVERGENCE_GROWTH = 1.5

#: Fitted rate at or above this (for a non-converged chain) is a stall.
STALL_RATE = 0.995

#: Share of residual up-moves in the tail that flags ``oscillating``.
OSCILLATION_UP_SHARE = 0.25

#: A rate-~1 chain whose final residual is still at least this fraction
#: of its peak never made progress: ``oscillating``, not ``stalled``.
NO_PROGRESS_FRACTION = 0.5

#: Projection cap: beyond this many iterations report the sentinel.
PROJECTION_CAP = 10**9

#: Sentinel ``projected_iterations`` value meaning "never at this rate"
#: (rate >= 1, unfittable series, or beyond :data:`PROJECTION_CAP`).
#: Always a finite int, so verdict comparisons and the ``health`` CLI
#: exit code can never see ``inf``/``nan`` here.
PROJECTION_NEVER = -1

#: The verdict vocabulary, ordered from best to worst.
HEALTH_STATUSES = (
    "healthy",
    "not_converged",
    "stalled",
    "oscillating",
    "diverging",
)

#: Severity rank used by :func:`worst_status`.
_SEVERITY = {status: rank for rank, status in enumerate(HEALTH_STATUSES)}

#: Fallback tolerance for traces predating the ``tol`` field on ``fit``
#: events (the :class:`~repro.core.tmark.TMark` default).
DEFAULT_TOL = 1e-8


@dataclass(frozen=True)
class ChainHealth:
    """Health verdict for one per-class chain.

    Attributes
    ----------
    fit_index:
        0-based index of the fit this chain belongs to (a trace may
        contain many fits; single-fit sources report 0).
    class_index, label:
        The chain's class column and, when known, its label name.
    status:
        One of :data:`HEALTH_STATUSES`.
    converged:
        Whether the final residual fell below ``tol``.
    n_iterations:
        Length of the residual series.
    final_residual:
        The last recorded residual (``inf`` for an empty series).
    decay_rate:
        Fitted geometric ratio of the residual tail (``nan`` when the
        series is too short to fit).
    spectral_gap:
        ``1 - decay_rate`` clipped at 0 — the estimated gap between the
        dominant and subdominant eigenvalues of the linearised update
        (``nan`` when the rate is unfittable).
    projected_iterations:
        Estimated further iterations to reach ``tol`` at the fitted
        rate: 0 when already converged, :data:`PROJECTION_NEVER` (-1)
        when the projection does not exist (rate >= 1, unfittable, or
        beyond :data:`PROJECTION_CAP`).  Always a finite int.
    oscillation_share:
        Share of residual up-moves in the fitted tail.
    tol:
        The tolerance the verdict was judged against.
    """

    class_index: int
    status: str
    converged: bool
    n_iterations: int
    final_residual: float
    decay_rate: float
    spectral_gap: float
    projected_iterations: int
    oscillation_share: float
    tol: float
    label: str | None = None
    fit_index: int = 0

    @property
    def ok(self) -> bool:
        """True for ``healthy`` (converged) chains only."""
        return self.status == "healthy"

    def as_event(self) -> dict:
        """The flat payload emitted as a ``chain_health`` trace event."""
        return {
            "fit_index": self.fit_index,
            "class_index": self.class_index,
            "label": self.label,
            "status": self.status,
            "converged": self.converged,
            "n_iterations": self.n_iterations,
            "final_residual": self.final_residual,
            "decay_rate": self.decay_rate,
            "spectral_gap": self.spectral_gap,
            "projected_iterations": self.projected_iterations,
            "oscillation_share": self.oscillation_share,
            "tol": self.tol,
        }

    @classmethod
    def from_event(cls, event: dict) -> "ChainHealth":
        """Rebuild a verdict from a ``chain_health`` trace event.

        ``projected_iterations`` is clamped to :data:`PROJECTION_NEVER`
        when the event carries a non-finite value — traces written by a
        pre-sentinel release could hold ``inf``/``nan`` for stalled
        chains, and ``int(inf)`` would otherwise crash the fold (and
        with it the ``health`` CLI).
        """
        raw_projected = event.get("projected_iterations", PROJECTION_NEVER)
        try:
            projected = int(raw_projected)
        except (OverflowError, ValueError):
            projected = PROJECTION_NEVER
        return cls(
            class_index=int(event.get("class_index", -1)),
            status=str(event.get("status", "healthy")),
            converged=bool(event.get("converged", False)),
            n_iterations=int(event.get("n_iterations", 0)),
            final_residual=float(event.get("final_residual", float("inf"))),
            decay_rate=float(event.get("decay_rate", float("nan"))),
            spectral_gap=float(event.get("spectral_gap", float("nan"))),
            projected_iterations=projected,
            oscillation_share=float(event.get("oscillation_share", 0.0)),
            tol=float(event.get("tol", DEFAULT_TOL)),
            label=event.get("label"),
            fit_index=int(event.get("fit_index", 0)),
        )


def worst_status(statuses) -> str:
    """The most severe status of a collection (``healthy`` when empty)."""
    worst = "healthy"
    for status in statuses:
        if _SEVERITY.get(status, 0) > _SEVERITY[worst]:
            worst = status
    return worst


def estimate_decay_rate(residuals, *, burn_in: int = DECAY_BURN_IN) -> float:
    """Fit the geometric decay rate of a residual series.

    Returns the geometric mean of the consecutive ratios over the tail
    after ``burn_in`` iterations (the telescoped endpoint ratio), using
    only strictly positive residuals — a residual of exactly 0 means the
    chain hit a float fixed point and carries no rate information.
    ``nan`` when fewer than two positive residuals remain.
    """
    positive = [float(r) for r in residuals if r > 0.0]
    if len(positive) >= burn_in + 2:
        positive = positive[burn_in:]
    if len(positive) < 2:
        return float("nan")
    span = math.log(positive[-1]) - math.log(positive[0])
    return math.exp(span / (len(positive) - 1))


def _oscillation_share(residuals, *, burn_in: int = DECAY_BURN_IN) -> float:
    """Share of strict residual increases among consecutive tail pairs."""
    tail = [float(r) for r in residuals]
    if len(tail) >= burn_in + 2:
        tail = tail[burn_in:]
    if len(tail) < 2:
        return 0.0
    ups = sum(1 for a, b in zip(tail, tail[1:]) if b > a)
    return ups / (len(tail) - 1)


def _projected_iterations(
    final_residual: float, decay_rate: float, tol: float, *, converged: bool
) -> int:
    """Iterations still needed to reach ``tol`` at the fitted rate."""
    if converged:
        return 0
    if (
        math.isnan(decay_rate)
        or decay_rate >= 1.0
        or decay_rate <= 0.0
        or not final_residual > 0.0
        or not math.isfinite(final_residual)
    ):
        return PROJECTION_NEVER
    if final_residual < tol:
        return 0
    needed = math.log(tol / final_residual) / math.log(decay_rate)
    if not math.isfinite(needed) or needed > PROJECTION_CAP:
        return PROJECTION_NEVER
    return int(math.ceil(needed))


def classify_residuals(residuals, tol: float, *, converged=None) -> str:
    """Classify a residual series into one of :data:`HEALTH_STATUSES`.

    ``converged`` overrides the last-residual-below-``tol`` check (the
    chain runner knows; trace folding infers).  The thresholds are the
    module constants documented above.
    """
    series = [float(r) for r in residuals]
    if not series:
        return "healthy"
    final = series[-1]
    if converged is None:
        converged = final < tol
    if converged:
        return "healthy"
    rate = estimate_decay_rate(series)
    up_share = _oscillation_share(series)
    if (not math.isnan(rate) and rate > DIVERGENCE_RATE) or (
        final > DIVERGENCE_GROWTH * series[0]
    ):
        return "diverging"
    if up_share >= OSCILLATION_UP_SHARE:
        return "oscillating"
    if not math.isnan(rate) and rate >= STALL_RATE:
        peak = max(series)
        if peak > 0.0 and final >= NO_PROGRESS_FRACTION * peak:
            return "oscillating"
        return "stalled"
    return "not_converged"


def chain_health(
    residuals,
    tol: float,
    *,
    class_index: int = -1,
    label: str | None = None,
    fit_index: int = 0,
    converged=None,
) -> ChainHealth:
    """Build the full :class:`ChainHealth` verdict for one residual series."""
    series = [float(r) for r in residuals]
    final = series[-1] if series else float("inf")
    if converged is None:
        converged = bool(series) and final < tol
    rate = estimate_decay_rate(series)
    gap = float("nan") if math.isnan(rate) else max(0.0, 1.0 - rate)
    return ChainHealth(
        class_index=class_index,
        label=label,
        fit_index=fit_index,
        status=classify_residuals(series, tol, converged=converged),
        converged=bool(converged),
        n_iterations=len(series),
        final_residual=final,
        decay_rate=rate,
        spectral_gap=gap,
        projected_iterations=_projected_iterations(
            final, rate, tol, converged=bool(converged)
        ),
        oscillation_share=_oscillation_share(series),
        tol=float(tol),
    )


def health_from_history(
    history, *, class_index: int = -1, label: str | None = None, fit_index: int = 0
) -> ChainHealth:
    """Verdict for one :class:`~repro.core.convergence.ChainHistory`."""
    return chain_health(
        history.residuals,
        history.tol,
        class_index=class_index,
        label=label,
        fit_index=fit_index,
        converged=history.converged,
    )


def health_from_result(result, *, fit_index: int = 0) -> list[ChainHealth]:
    """Per-class verdicts for a fitted result (``histories`` + names).

    Accepts anything exposing ``histories`` and ``label_names`` aligned
    by class — a :class:`~repro.core.tmark.TMarkResult` in practice.
    """
    return [
        health_from_history(
            history, class_index=c, label=result.label_names[c], fit_index=fit_index
        )
        for c, history in enumerate(result.histories)
    ]


def collect_residual_series(events):
    """Group a trace's ``chain_class`` residuals by fit and class.

    Returns a list with one entry per fit:
    ``(per_class_residuals, tol, converged_classes)`` where
    ``per_class_residuals`` maps ``class_index -> [rho_1, rho_2, ...]``
    (emission order), ``tol`` is the fit event's tolerance (``None`` for
    traces predating the field or chains not yet closed by a ``fit``
    event), and ``converged_classes`` maps ``class_index -> frozen``
    from the class's final ``chain_class`` event.
    """
    groups = []
    current: dict[int, list[float]] = {}
    frozen: dict[int, bool] = {}
    for event in events:
        kind = event.get("event")
        if kind == "chain_class":
            c = int(event.get("class_index", -1))
            current.setdefault(c, []).append(float(event.get("residual", 0.0)))
            frozen[c] = bool(event.get("frozen", False))
        elif kind == "fit":
            if current:
                groups.append((current, event.get("tol"), frozen))
            current, frozen = {}, {}
    if current:
        groups.append((current, None, frozen))
    return groups


def trace_chain_health(events, *, tol: float | None = None) -> list[ChainHealth]:
    """Per-fit, per-class verdicts for a whole trace.

    Prefers the precomputed ``chain_health`` events when the trace
    carries them (fits since the diagnostics layer emit one per class);
    otherwise folds the raw ``chain_class`` residual series, taking the
    tolerance from each fit's ``fit`` event, then from ``tol``, then
    from :data:`DEFAULT_TOL`.
    """
    direct = [
        ChainHealth.from_event(e) for e in events if e.get("event") == "chain_health"
    ]
    if direct:
        return direct
    verdicts = []
    for fit_index, (series_by_class, fit_tol, frozen) in enumerate(
        collect_residual_series(events)
    ):
        effective_tol = fit_tol if fit_tol is not None else tol
        if effective_tol is None:
            effective_tol = DEFAULT_TOL
        for class_index in sorted(series_by_class):
            verdicts.append(
                chain_health(
                    series_by_class[class_index],
                    float(effective_tol),
                    class_index=class_index,
                    fit_index=fit_index,
                    converged=frozen.get(class_index),
                )
            )
    return verdicts


def format_health_report(healths) -> str:
    """Render a list of :class:`ChainHealth` as a fixed-width table."""
    healths = list(healths)
    counts: dict[str, int] = {}
    for health in healths:
        counts[health.status] = counts.get(health.status, 0) + 1
    breakdown = ", ".join(
        f"{status}={counts[status]}" for status in HEALTH_STATUSES if status in counts
    )
    lines = [
        f"chain health — {len(healths)} chain(s)"
        + (f": {breakdown}" if breakdown else "")
    ]
    if not healths:
        return lines[0]
    header = (
        "fit".rjust(4)
        + "class".rjust(7)
        + "  "
        + "status".ljust(15)
        + "iters".rjust(6)
        + "residual".rjust(11)
        + "rate".rjust(9)
        + "gap".rjust(9)
        + "left".rjust(7)
    )
    lines += ["", header, "-" * len(header)]
    for health in healths:
        name = health.label if health.label is not None else str(health.class_index)
        rate = "n/a" if math.isnan(health.decay_rate) else f"{health.decay_rate:.4f}"
        gap = "n/a" if math.isnan(health.spectral_gap) else f"{health.spectral_gap:.4f}"
        left = (
            "-"
            if health.projected_iterations < 0
            else str(health.projected_iterations)
        )
        lines.append(
            f"{health.fit_index:4d}"
            + f"{name:>7.7s}"
            + "  "
            + health.status.ljust(15)
            + f"{health.n_iterations:6d}"
            + f"{health.final_residual:11.2e}"
            + rate.rjust(9)
            + gap.rjust(9)
            + left.rjust(7)
        )
    overall = worst_status(h.status for h in healths)
    lines.append("")
    lines.append(f"overall: {overall}")
    return "\n".join(lines)
