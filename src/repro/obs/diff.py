"""Phase-by-phase trace comparison for perf-regression gating.

Given two traces (or their :class:`~repro.obs.summary.TraceSummary`
folds) — typically "the last known-good run" vs "this run" — compare
every time and count dimension with a relative-change threshold and
produce a pass/fail report.  This is the check behind the CLI's
``trace-diff OLD NEW`` command and the CI gate that a trace diffed
against itself reports zero regressions.

Two guards keep the verdict stable on noisy wall-clocks:

* a *relative* threshold (default 20%) — ``new`` must exceed
  ``old * (1 + threshold)`` to count as a regression;
* an *absolute floor* for time metrics (default 1 ms) — microsecond
  jitter on near-zero phases can triple without meaning anything.

Count metrics (iterations, fits, frozen events, ...) use the relative
threshold only; they are deterministic for a fixed workload, so any
growth is signal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.summary import TraceSummary, summarize_trace

#: Default relative-change threshold for flagging a regression.
DEFAULT_THRESHOLD = 0.2

#: Time deltas below this many seconds never count as regressions.
DEFAULT_TIME_FLOOR = 1e-3

#: ``TraceSummary`` attributes compared as wall-clock times.
TIME_FIELDS = (
    "fit_seconds",
    "operator_seconds",
    "trial_seconds",
    "grid_seconds",
    "patch_seconds",
    "reconverge_seconds",
)

#: ``TraceSummary`` attributes compared as counts.
COUNT_FIELDS = (
    "n_iterations",
    "n_fits",
    "n_frozen_events",
    "n_delta_batches",
    "reconverge_iterations",
)


@dataclass(frozen=True)
class TraceDiffEntry:
    """One compared dimension of a trace diff.

    ``rel_change`` is ``(new - old) / old`` (``inf`` when a metric
    appears from zero, ``nan`` when both sides are zero).
    ``regressed`` / ``improved`` apply the threshold in each direction.
    """

    name: str
    kind: str  # "time" | "count"
    old: float
    new: float
    rel_change: float
    regressed: bool
    improved: bool


@dataclass
class TraceDiff:
    """The full comparison of two trace summaries."""

    threshold: float
    time_floor: float
    entries: list[TraceDiffEntry] = field(default_factory=list)

    @property
    def regressions(self) -> list[TraceDiffEntry]:
        """The entries that regressed past the threshold."""
        return [entry for entry in self.entries if entry.regressed]

    @property
    def improvements(self) -> list[TraceDiffEntry]:
        """The entries that improved past the threshold."""
        return [entry for entry in self.entries if entry.improved]

    @property
    def passed(self) -> bool:
        """True when no dimension regressed."""
        return not self.regressions


def _relative_change(old: float, new: float) -> float:
    if old == 0.0:
        return float("nan") if new == 0.0 else float("inf")
    return (new - old) / old


def _entry(
    name: str,
    kind: str,
    old: float,
    new: float,
    *,
    threshold: float,
    time_floor: float,
) -> TraceDiffEntry:
    old, new = float(old), float(new)
    rel = _relative_change(old, new)
    grew = new > old * (1.0 + threshold)
    shrank = old > new * (1.0 + threshold) if new > 0.0 else old > 0.0
    if kind == "time":
        # Sub-floor jitter is noise in both directions.
        grew = grew and (new - old) > time_floor
        shrank = shrank and (old - new) > time_floor
    else:
        grew = grew and (new - old) >= 1.0
        shrank = shrank and (old - new) >= 1.0
    return TraceDiffEntry(
        name=name,
        kind=kind,
        old=old,
        new=new,
        rel_change=rel,
        regressed=grew,
        improved=shrank,
    )


def diff_summaries(
    old: TraceSummary,
    new: TraceSummary,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    time_floor: float = DEFAULT_TIME_FLOOR,
) -> TraceDiff:
    """Compare two summaries dimension by dimension.

    Compares every chain phase total, the :data:`TIME_FIELDS` wall
    clocks, and the :data:`COUNT_FIELDS` counts.  A dimension regresses
    when ``new`` exceeds ``old * (1 + threshold)`` — plus the absolute
    time floor for wall clocks — and improves symmetrically.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    diff = TraceDiff(threshold=float(threshold), time_floor=float(time_floor))
    phase_names = sorted(set(old.phase_totals) | set(new.phase_totals))
    for name in phase_names:
        diff.entries.append(
            _entry(
                f"phase:{name}",
                "time",
                old.phase_totals.get(name, 0.0),
                new.phase_totals.get(name, 0.0),
                threshold=threshold,
                time_floor=time_floor,
            )
        )
    for name in TIME_FIELDS:
        diff.entries.append(
            _entry(
                name,
                "time",
                getattr(old, name),
                getattr(new, name),
                threshold=threshold,
                time_floor=time_floor,
            )
        )
    for name in COUNT_FIELDS:
        diff.entries.append(
            _entry(
                name,
                "count",
                getattr(old, name),
                getattr(new, name),
                threshold=threshold,
                time_floor=time_floor,
            )
        )
    return diff


def diff_traces(
    old_events,
    new_events,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    time_floor: float = DEFAULT_TIME_FLOOR,
) -> TraceDiff:
    """Compare two parsed traces (``read_trace`` output) end to end."""
    return diff_summaries(
        summarize_trace(old_events),
        summarize_trace(new_events),
        threshold=threshold,
        time_floor=time_floor,
    )


def format_trace_diff(diff: TraceDiff) -> str:
    """Render a :class:`TraceDiff` as a fixed-width regression report."""
    header = (
        "dimension".ljust(24)
        + "old".rjust(12)
        + "new".rjust(12)
        + "change".rjust(10)
        + "  verdict"
    )
    lines = [
        f"trace diff — threshold {diff.threshold:.0%}, "
        f"time floor {diff.time_floor * 1e3:g} ms",
        "",
        header,
        "-" * len(header),
    ]
    for entry in diff.entries:
        if entry.kind == "time":
            old_text, new_text = f"{entry.old:12.4f}", f"{entry.new:12.4f}"
        else:
            old_text, new_text = f"{entry.old:12.0f}", f"{entry.new:12.0f}"
        if math.isnan(entry.rel_change):
            change = "-"
        elif math.isinf(entry.rel_change):
            change = "new"
        else:
            change = f"{entry.rel_change:+.1%}"
        verdict = (
            "REGRESSED" if entry.regressed else "improved" if entry.improved else "ok"
        )
        lines.append(
            entry.name.ljust(24) + old_text + new_text + change.rjust(10) + f"  {verdict}"
        )
    regressions = diff.regressions
    lines.append("")
    lines.append(
        f"{len(regressions)} regression(s), {len(diff.improvements)} improvement(s): "
        + ("PASS" if diff.passed else "FAIL")
    )
    return "\n".join(lines)
