"""JSONL trace sink: one structured event per line.

The format is deliberately plain — each line is an independent JSON
object with an ``event`` type and a monotonic ``ts`` (seconds since the
recorder was opened) — so traces can be post-processed with nothing but
``json.loads`` per line.  No redaction, no binary framing, no schema
registry: the events are small numeric records by construction.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.errors import ValidationError
from repro.obs.recorder import Recorder


def _jsonable(value):
    """Coerce numpy scalars (and nested containers) to plain JSON types."""
    import numpy as np

    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


class JsonlTraceRecorder(Recorder):
    """Write every event as one JSON line to ``path``.

    Events gain two bookkeeping fields: ``event`` (the type) and ``ts``
    (monotonic seconds since the recorder was opened).  On :meth:`close`
    the accumulated counters are flushed as a final ``counters`` event.
    Usable as a context manager.
    """

    def __init__(self, path):
        super().__init__()
        self.path = Path(path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._opened = time.perf_counter()
        self.n_events = 0

    def emit(self, event: str, **fields) -> None:
        record = {"event": event, "ts": time.perf_counter() - self._opened}
        record.update(_jsonable(fields))
        self._handle.write(json.dumps(record) + "\n")
        self.n_events += 1

    def close(self) -> None:
        """Flush counters (if any) and close the file; idempotent."""
        if self._handle.closed:
            return
        if self.counters:
            counters, self.counters = self.counters, {}
            self.emit("counters", counters=counters)
        self._handle.close()

    def __enter__(self) -> "JsonlTraceRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace(path) -> list[dict]:
    """Parse a JSONL trace file back into a list of event dicts.

    Blank lines are skipped; a malformed line raises
    :class:`~repro.errors.ValidationError` naming its line number.
    """
    path = Path(path)
    events = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValidationError(
                    f"{path}:{lineno} is not valid JSON: {error}"
                ) from None
    return events
