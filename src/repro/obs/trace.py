"""JSONL trace sink: one structured event per line.

The format is deliberately plain — each line is an independent JSON
object with an ``event`` type and a monotonic ``ts`` (seconds since the
recorder was opened) — so traces can be post-processed with nothing but
``json.loads`` per line.  No redaction, no binary framing, no schema
registry: the events are small numeric records by construction.

Paths ending in ``.gz`` are transparently gzip-compressed on write and
decompressed on read (large out-of-core traces are multi-hundred-MB as
plain text), and events emitted while a :func:`~repro.obs.spans.span`
is active are tagged with its ``span_id`` so post-processing can
reattach flat events to the causal tree.
"""

from __future__ import annotations

import gzip
import json
import time
import warnings
from pathlib import Path

from repro.errors import ValidationError
from repro.obs.recorder import Recorder
from repro.obs.spans import current_span

#: Run-summary event types that trigger an immediate flush: they close a
#: unit of work, so a crash right after one loses no completed results.
FLUSH_EVENTS = frozenset(
    {"fit", "trial", "grid_cell", "reconverge", "chain_health", "counters"}
)


def _jsonable(value):
    """Coerce numpy scalars (and nested containers) to plain JSON types."""
    import numpy as np

    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


class JsonlTraceRecorder(Recorder):
    """Write every event as one JSON line to ``path``.

    Events gain two bookkeeping fields: ``event`` (the type) and ``ts``
    (monotonic seconds since the recorder was opened).  On :meth:`close`
    the accumulated counters are flushed as a final ``counters`` event.
    Usable as a context manager.

    The stream is flushed to the OS every ``flush_every`` events and
    after every run-summary event (:data:`FLUSH_EVENTS`), so a killed
    run loses at most ``flush_every`` buffered events — and never a
    completed fit/trial/cell summary.  ``probes=False`` opts out of the
    per-iteration ``invariant_probe`` events while keeping the phase
    timings (see :attr:`~repro.obs.recorder.Recorder.probes`).
    """

    def __init__(self, path, *, flush_every: int = 64, probes: bool = True):
        super().__init__()
        from repro.utils.validation import check_positive_int

        self.flush_every = check_positive_int(flush_every, "flush_every")
        self.probes = bool(probes)
        self.path = Path(path)
        if self.path.suffix == ".gz":
            self._handle = gzip.open(self.path, "wt", encoding="utf-8")
        else:
            self._handle = open(self.path, "w", encoding="utf-8")
        self._opened = time.perf_counter()
        self.n_events = 0
        self._unflushed = 0

    def emit(self, event: str, **fields) -> None:
        record = {"event": event, "ts": time.perf_counter() - self._opened}
        ctx = current_span()
        if ctx is not None and "span_id" not in fields:
            record["span_id"] = ctx.span_id
        record.update(_jsonable(fields))
        self._handle.write(json.dumps(record) + "\n")
        self.n_events += 1
        self._unflushed += 1
        if self._unflushed >= self.flush_every or event in FLUSH_EVENTS:
            self._handle.flush()
            self._unflushed = 0

    def close(self) -> None:
        """Flush counters (if any) and close the file; idempotent."""
        if self._handle.closed:
            return
        if self.counters:
            counters, self.counters = self.counters, {}
            self.emit("counters", counters=counters)
        self._handle.close()

    def __enter__(self) -> "JsonlTraceRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace(path, *, strict: bool = True) -> list[dict]:
    """Parse a JSONL trace file back into a list of event dicts.

    Blank lines are skipped; a malformed line raises
    :class:`~repro.errors.ValidationError` naming its line number.

    With ``strict=False`` a malformed *final* line — the signature of a
    writer killed mid-record — is skipped with a warning instead of
    raising, so post-mortem tooling (``trace-summary``, ``health``,
    ``trace-diff``) can still read everything the run completed.
    Malformed lines anywhere else are real corruption and raise in both
    modes.

    ``.gz`` paths are decompressed transparently; a corrupt gzip stream
    raises :class:`~repro.errors.ValidationError`.
    """
    path = Path(path)
    if path.suffix == ".gz":
        try:
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                lines = handle.readlines()
        except (OSError, EOFError) as error:
            raise ValidationError(
                f"{path} is not a readable gzip file: {error}"
            ) from None
    else:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    last_content = max(
        (i for i, line in enumerate(lines) if line.strip()), default=-1
    )
    events = []
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as error:
            if not strict and index == last_content:
                warnings.warn(
                    f"{path}:{index + 1} is truncated (crash mid-write?); "
                    f"skipping the partial final event",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            raise ValidationError(
                f"{path}:{index + 1} is not valid JSON: {error}"
            ) from None
    return events
