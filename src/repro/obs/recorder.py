"""The :class:`Recorder` protocol, no-op default and in-memory sink.

A recorder receives structured events from the instrumented hot paths
and maintains monotonic counters.  The contract is intentionally tiny —
``enabled``, ``emit`` and ``count`` — so alternative sinks (JSONL files,
in-memory lists, metrics back-ends) are trivial to plug in.

Instrumented loops hoist ``recorder.enabled`` into a local once per fit
and skip all timing and emission when it is ``False``, which is what
makes the :data:`NULL_RECORDER` default effectively free.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar

#: Every event type the instrumented code emits.
EVENT_TYPES = (
    "chain_iteration",  # per-iteration phase timings of the batched fit
    "chain_class",      # per-class residual / frozen-column telemetry
    "operator_build",   # O/R/W construction timings
    "fit",              # one per TMark.fit: wall clock + shape summary
    "trial",            # one per harness trial: split + fit + score
    "grid_cell",        # one per run_grid cell: mean/std + wall clock
    "delta_apply",      # one per streaming delta batch: size + op mix
    "operator_patch",   # incremental O/R/W patch: touched columns/fibres
    "reconverge",       # warm refit after a batch: iterations + wall clock
    "chain_health",     # per-class convergence verdict (repro.obs.health)
    "invariant_probe",  # per-iteration simplex/negativity/dangling probes
    "pool_start",       # parallel pool opened: workers + cell count
    "cell_dispatch",    # one grid cell / trial handed to the pool
    "cell_done",        # one grid cell / trial merged back from a worker
    "shard_dispatch",   # one node shard assigned to a sharded-fit worker
    "boundary_exchange",  # per-iteration halo/fibre-mass shard exchange
    "solver_step",      # accelerator proposal accepted for one class
    "solver_restart",   # accelerator history reset: safeguard/label_update
    "store_save",       # GraphStore.save: path + shape + file count
    "store_open",       # GraphStore.open: path + shape + verify flag
    "span",             # hierarchical span close: ids + duration + pid/tid
    "resource_sample",  # periodic RSS / CPU / GC snapshot (flight sampler)
    "http_request",     # one daemon request: endpoint + status + latency
    "snapshot_swap",    # serving snapshot published: version + build time
)

#: The five per-iteration phases of ``TMark._run_chains_batched``.
CHAIN_PHASES = (
    "label_update",   # the Eq. 12 restart-vector update
    "o_propagation",  # restart mix + O x-bar_1 X x-bar_3 Z contraction
    "feature_walk",   # beta * (W @ X)
    "r_contraction",  # R x-bar_1 X x-bar_2 X contraction
    "projection",     # simplex projections + residual bookkeeping
)


class Recorder:
    """Base recorder: the protocol every sink implements.

    Attributes
    ----------
    enabled:
        Hot paths hoist this flag once per fit; when ``False`` they skip
        all timer reads and ``emit`` calls, so a disabled recorder costs
        only a few branch checks per iteration.
    probes:
        Whether an enabled recorder also wants the per-iteration
        ``invariant_probe`` events (simplex mass drift, negativity,
        dangling-mass share — see :mod:`repro.obs.health`).  The probes
        cost a few extra array reductions per iteration on top of the
        phase timings, so sinks that only need timings can opt out;
        ignored while ``enabled`` is ``False``.
    counters:
        Monotonic named counters maintained by :meth:`count`.
    """

    enabled: bool = True
    probes: bool = True

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}

    def emit(self, event: str, **fields) -> None:
        """Record one structured event (overridden by concrete sinks)."""
        raise NotImplementedError

    def count(self, name: str, n: int = 1) -> None:
        """Increment the monotonic counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n


class NullRecorder(Recorder):
    """The zero-overhead default: drops everything, ``enabled`` False."""

    enabled = False
    probes = False

    def emit(self, event: str, **fields) -> None:
        pass

    def count(self, name: str, n: int = 1) -> None:
        pass


class ListRecorder(Recorder):
    """In-memory sink collecting ``(event, fields)`` dicts (for tests).

    ``enabled=False`` builds a recorder that instrumented code must
    treat as a no-op — used to verify the hot paths really skip
    emission when disabled.

    Like the file-backed sinks, events emitted while a
    :func:`~repro.obs.spans.span` is active are tagged with its
    ``span_id`` — pool workers collect into a ``ListRecorder``, so this
    is what preserves causal links when their events are replayed into
    the coordinator's trace.
    """

    def __init__(self, *, enabled: bool = True, probes: bool = True):
        super().__init__()
        self.enabled = bool(enabled)
        self.probes = bool(probes)
        self.events: list[dict] = []

    def emit(self, event: str, **fields) -> None:
        # Lazy import: repro.obs.spans imports this module at load time.
        from repro.obs.spans import current_span

        record = {"event": event, **fields}
        ctx = current_span()
        if ctx is not None and "span_id" not in fields:
            record["span_id"] = ctx.span_id
        self.events.append(record)

    def events_of(self, event: str) -> list[dict]:
        """The recorded events of one type, in emission order."""
        return [e for e in self.events if e["event"] == event]


#: The process-wide disabled recorder (the ambient default).
NULL_RECORDER = NullRecorder()

_current_recorder: ContextVar[Recorder] = ContextVar(
    "repro_obs_recorder", default=NULL_RECORDER
)


def get_recorder() -> Recorder:
    """The recorder currently installed for this context (default no-op)."""
    return _current_recorder.get()


@contextmanager
def use_recorder(recorder: Recorder):
    """Install ``recorder`` as the ambient recorder for the ``with`` scope.

    Instrumented code that was not handed an explicit recorder picks
    this one up through :func:`get_recorder`.  Scopes nest; the previous
    recorder is restored on exit.
    """
    token = _current_recorder.set(recorder)
    try:
        yield recorder
    finally:
        _current_recorder.reset(token)


class PhaseTimer:
    """Wall-clock accumulator over a fixed set of named phases.

    One timer instruments one iteration: ``start(name)`` closes the
    previous phase (if any) and opens ``name``; ``stop()`` closes the
    current phase.  A phase may be re-entered — durations accumulate —
    which is how the ``projection`` phase covers both the x-column
    projections and the post-contraction z/residual bookkeeping.  Every
    name passed at construction is present in :attr:`phases` even if
    never started (0.0), so downstream events always carry the full key
    set.
    """

    __slots__ = ("phases", "_active", "_t0")

    def __init__(self, names=CHAIN_PHASES):
        self.phases: dict[str, float] = {name: 0.0 for name in names}
        self._active: str | None = None
        self._t0 = 0.0

    def start(self, name: str) -> None:
        """Close the active phase (if any) and begin timing ``name``."""
        now = time.perf_counter()
        if self._active is not None:
            self.phases[self._active] += now - self._t0
        self._active = name
        self._t0 = now

    def stop(self) -> None:
        """Close the active phase; a stopped timer tolerates re-stops."""
        if self._active is not None:
            self.phases[self._active] += time.perf_counter() - self._t0
            self._active = None

    @property
    def total(self) -> float:
        """Sum of all accumulated phase durations (seconds)."""
        return sum(self.phases.values())
