"""Counter / Gauge / Histogram registry fed by trace events.

The JSONL trace layer answers "what happened in this run"; this module
answers "how is the system doing across runs" — the aggregation
substrate for the future serving path.  A :class:`MetricsRegistry`
holds named :class:`Counter`, :class:`Gauge` and :class:`Histogram`
instruments, merges exactly (histograms share fixed bucket edges, so a
merge is pure integer addition — no re-binning error), round-trips
through JSON, and renders Prometheus-style text exposition.

:class:`MetricsRecorder` adapts the registry to the
:class:`~repro.obs.recorder.Recorder` protocol: install it (directly,
ambiently, or via ``run_grid(..., metrics=registry)``) and the
instrumented hot paths feed the registry without knowing it exists.
Events can optionally be forwarded to a second recorder so metrics and
JSONL tracing compose in one run.
"""

from __future__ import annotations

import bisect
import json
import math
import re

from repro.errors import ValidationError
from repro.obs.recorder import Recorder

#: Wall-clock histogram edges (seconds) shared by all *_seconds metrics.
DEFAULT_TIME_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Metric-value histogram edges for scores in [0, 1].
DEFAULT_VALUE_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: Iteration-count histogram edges.
DEFAULT_ITERATION_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)

#: Request-latency histogram edges (seconds) for the serving tier —
#: finer sub-millisecond resolution than the fit-time buckets, because
#: snapshot reads answer in microseconds-to-milliseconds.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Prometheus metric-name grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _metric_suffix(text: str) -> str:
    """Sanitise free text (an endpoint path) into a metric-name chunk."""
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", str(text)).strip("_")
    return cleaned or "unknown"


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValidationError(
            f"metric name must match {_NAME_RE.pattern!r}, got {name!r}"
        )
    return name


def _format_number(value: float) -> str:
    """Exposition-format a number (integral floats without the dot).

    Non-finite values render as the Prometheus text-format spellings
    ``+Inf`` / ``-Inf`` / ``NaN`` — Python's ``inf``/``nan`` reprs are
    rejected by Prometheus parsers.
    """
    as_float = float(value)
    if math.isnan(as_float):
        return "NaN"
    if math.isinf(as_float):
        return "+Inf" if as_float > 0 else "-Inf"
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = _check_name(name)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValidationError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        self.value += float(amount)

    def merge(self, other: "Counter") -> None:
        """Fold another counter in: counts add."""
        self.value += other.value

    def to_json(self) -> dict:
        """JSON-serialisable state (see ``MetricsRegistry.to_json``)."""
        return {"kind": self.kind, "value": self.value}

    def expose(self) -> list[str]:
        """Prometheus exposition lines for this counter."""
        return [f"# TYPE {self.name} counter", f"{self.name} {_format_number(self.value)}"]


class Gauge:
    """A last-value-wins instantaneous measurement."""

    __slots__ = ("name", "value", "updated")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = _check_name(name)
        self.value = 0.0
        self.updated = False

    def set(self, value: float) -> None:
        """Record the current value (NaN is ignored: last *value* wins).

        A NaN observation carries no information and, once stored, would
        poison every later ``set_max`` comparison (all comparisons with
        NaN are false), so it is deterministically dropped.
        """
        value = float(value)
        if math.isnan(value):
            return
        self.value = value
        self.updated = True

    def set_max(self, value: float) -> None:
        """Record ``value`` only if it exceeds the current one.

        NaN never exceeds anything and is dropped (see :meth:`set`).
        """
        value = float(value)
        if math.isnan(value):
            return
        if not self.updated or value > self.value:
            self.set(value)

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in: the other's value wins if it was set."""
        if other.updated:
            self.value = other.value
            self.updated = True

    def to_json(self) -> dict:
        """JSON-serialisable state (see ``MetricsRegistry.to_json``)."""
        return {"kind": self.kind, "value": self.value, "updated": self.updated}

    def expose(self) -> list[str]:
        """Prometheus exposition lines for this gauge.

        A gauge that was never ``set`` has no measurement to report:
        exposing its placeholder 0.0 would publish a stale zero (e.g. a
        merged-in registry whose gauge never fired), so it is omitted.
        """
        if not self.updated:
            return []
        return [f"# TYPE {self.name} gauge", f"{self.name} {_format_number(self.value)}"]


class Histogram:
    """Fixed-bucket histogram: observations bin exactly, merges are exact.

    ``edges`` are the finite upper bounds (strictly increasing); an
    implicit ``+Inf`` bucket catches the remainder, so ``counts`` has
    ``len(edges) + 1`` entries.  Because the edges are fixed at
    construction, merging two histograms with the same edges is plain
    integer addition — no re-binning, no approximation.
    """

    __slots__ = ("name", "edges", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, name: str, edges=DEFAULT_TIME_BUCKETS):
        self.name = _check_name(name)
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ValidationError(f"histogram {name} needs at least one bucket edge")
        if any(not math.isfinite(e) for e in edges):
            raise ValidationError(f"histogram {name} edges must be finite")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValidationError(
                f"histogram {name} edges must be strictly increasing, got {edges}"
            )
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in; edges must match exactly."""
        if other.edges != self.edges:
            raise ValidationError(
                f"cannot merge histogram {self.name}: bucket edges differ "
                f"({self.edges} vs {other.edges})"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.sum += other.sum
        self.count += other.count

    def to_json(self) -> dict:
        """JSON-serialisable state (see ``MetricsRegistry.to_json``)."""
        return {
            "kind": self.kind,
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def expose(self) -> list[str]:
        """Prometheus exposition: cumulative ``_bucket`` lines + sum/count."""
        lines = [f"# TYPE {self.name} histogram"]
        cumulative = 0
        for edge, count in zip(self.edges, self.counts):
            cumulative += count
            lines.append(
                f'{self.name}_bucket{{le="{_format_number(edge)}"}} {cumulative}'
            )
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self.count}')
        lines.append(f"{self.name}_sum {_format_number(self.sum)}")
        lines.append(f"{self.name}_count {self.count}")
        return lines


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Instruments are created on first access (``counter(name)`` etc.) and
    keep insertion order.  Asking for an existing name with a different
    instrument kind — or a histogram with different edges — raises
    :class:`~repro.errors.ValidationError` rather than silently forking
    the metric.
    """

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        """Registered metric names in insertion order."""
        return list(self._metrics)

    def get(self, name: str):
        """The instrument registered under ``name`` (KeyError if absent)."""
        return self._metrics[name]

    def _get_or_create(self, name: str, factory, kind: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValidationError(
                f"metric {name!r} is a {metric.kind}, not a {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, lambda: Gauge(name), "gauge")

    def histogram(self, name: str, edges=DEFAULT_TIME_BUCKETS) -> Histogram:
        """Get or create the histogram ``name`` with fixed ``edges``."""
        metric = self._get_or_create(name, lambda: Histogram(name, edges), "histogram")
        if metric.edges != tuple(float(e) for e in edges):
            raise ValidationError(
                f"histogram {name!r} already registered with edges "
                f"{metric.edges}, requested {tuple(edges)}"
            )
        return metric

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in (exactly) and return ``self``.

        Counters and histograms add; gauges take the other's value when
        it was set.  Names present only in ``other`` are copied in via a
        fresh instrument plus a merge, so the two registries never share
        mutable state.
        """
        for name, metric in other._metrics.items():
            if metric.kind == "counter":
                self.counter(name).merge(metric)
            elif metric.kind == "gauge":
                self.gauge(name).merge(metric)
            else:
                self.histogram(name, metric.edges).merge(metric)
        return self

    def to_json(self) -> str:
        """Serialise the registry as a JSON object string."""
        return json.dumps(
            {name: metric.to_json() for name, metric in self._metrics.items()},
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        """Rebuild a registry serialised by :meth:`to_json`."""
        registry = cls()
        for name, payload in json.loads(text).items():
            kind = payload.get("kind")
            if kind == "counter":
                registry.counter(name).value = float(payload["value"])
            elif kind == "gauge":
                gauge = registry.gauge(name)
                gauge.value = float(payload["value"])
                gauge.updated = bool(payload.get("updated", True))
            elif kind == "histogram":
                histogram = registry.histogram(name, payload["edges"])
                counts = [int(c) for c in payload["counts"]]
                if len(counts) != len(histogram.counts):
                    raise ValidationError(
                        f"histogram {name!r} payload has {len(counts)} counts "
                        f"for {len(histogram.counts)} buckets"
                    )
                histogram.counts = counts
                histogram.sum = float(payload["sum"])
                histogram.count = int(payload["count"])
            else:
                raise ValidationError(f"unknown metric kind {kind!r} for {name!r}")
        return registry

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every registered instrument."""
        lines = []
        for metric in self._metrics.values():
            lines.extend(metric.expose())
        return "\n".join(lines) + ("\n" if lines else "")


class MetricsRecorder(Recorder):
    """A :class:`Recorder` sink that folds events into a registry.

    Every known event type updates a fixed set of ``tmark_*``-prefixed
    instruments (durations into shared-edge histograms, counts into
    counters, level-style measurements into gauges); ``count`` calls
    land in ``tmark_<name>_total`` counters.  Unknown event types still
    count in ``tmark_events_total`` so nothing is silently dropped.

    ``forward`` optionally chains a second recorder (e.g. a
    :class:`~repro.obs.trace.JsonlTraceRecorder`): events and counts
    pass through after being observed, so one run can feed metrics and a
    trace simultaneously.
    """

    def __init__(self, registry: MetricsRegistry | None = None, *, forward=None):
        super().__init__()
        self.registry = MetricsRegistry() if registry is None else registry
        self.forward = forward
        if forward is not None:
            # Probe emission follows the forwarded sink's preference so
            # wrapping a probe-less tracer does not re-enable probes.
            self.probes = bool(getattr(forward, "probes", True))

    def emit(self, event: str, **fields) -> None:
        self._observe(event, fields)
        if self.forward is not None and self.forward.enabled:
            self.forward.emit(event, **fields)

    def count(self, name: str, n: int = 1) -> None:
        super().count(name, n)
        self.registry.counter(f"tmark_{name}_total").inc(n)
        if self.forward is not None and self.forward.enabled:
            self.forward.count(name, n)

    # ------------------------------------------------------------------
    # Event -> instrument mapping
    # ------------------------------------------------------------------
    def _observe(self, event: str, fields: dict) -> None:
        registry = self.registry
        registry.counter("tmark_events_total").inc()
        seconds = fields.get("seconds")
        if event == "fit":
            registry.histogram("tmark_fit_seconds").observe(seconds or 0.0)
            registry.histogram(
                "tmark_fit_iterations", DEFAULT_ITERATION_BUCKETS
            ).observe(fields.get("iterations", 0))
            if not fields.get("converged", True):
                registry.counter("tmark_unconverged_fits_total").inc()
        elif event == "chain_iteration":
            phases = fields.get("phases", {})
            registry.histogram("tmark_iteration_seconds").observe(
                sum(phases.values()) if phases else 0.0
            )
            registry.gauge("tmark_active_classes").set(fields.get("n_active", 0))
        elif event == "trial":
            registry.histogram("tmark_trial_seconds").observe(seconds or 0.0)
            registry.histogram(
                "tmark_trial_value", DEFAULT_VALUE_BUCKETS
            ).observe(fields.get("value", 0.0))
        elif event == "grid_cell":
            registry.histogram("tmark_grid_cell_seconds").observe(seconds or 0.0)
            registry.gauge("tmark_last_cell_mean").set(fields.get("mean", 0.0))
        elif event == "operator_build":
            registry.histogram("tmark_operator_build_seconds").observe(
                float(fields.get("transition_seconds", 0.0))
                + float(fields.get("feature_seconds", 0.0))
            )
        elif event == "delta_apply":
            registry.histogram("tmark_delta_apply_seconds").observe(seconds or 0.0)
            registry.counter("tmark_deltas_total").inc(fields.get("n_deltas", 0))
        elif event == "operator_patch":
            registry.histogram("tmark_operator_patch_seconds").observe(seconds or 0.0)
        elif event == "reconverge":
            registry.histogram("tmark_reconverge_seconds").observe(seconds or 0.0)
            registry.histogram(
                "tmark_reconverge_iterations", DEFAULT_ITERATION_BUCKETS
            ).observe(fields.get("iterations", 0))
        elif event == "chain_health":
            status = fields.get("status", "healthy")
            registry.counter(f"tmark_chain_health_{status}_total").inc()
        elif event == "invariant_probe":
            registry.gauge("tmark_max_mass_drift").set_max(
                max(
                    float(fields.get("x_mass_drift", 0.0)),
                    float(fields.get("z_mass_drift", 0.0)),
                )
            )
            if fields.get("n_negative", 0):
                registry.counter("tmark_negative_entries_total").inc(
                    fields["n_negative"]
                )
        elif event == "pool_start":
            registry.gauge("tmark_pool_workers").set(fields.get("workers", 0))
            registry.counter("tmark_pools_total").inc()
        elif event == "cell_dispatch":
            registry.counter("tmark_cells_dispatched_total").inc()
        elif event == "cell_done":
            registry.counter("tmark_cells_merged_total").inc()
            registry.histogram("tmark_cell_worker_seconds").observe(seconds or 0.0)
        elif event == "http_request":
            endpoint = _metric_suffix(fields.get("endpoint", "unknown"))
            registry.counter(f"tmark_http_{endpoint}_requests_total").inc()
            registry.histogram(
                f"tmark_http_{endpoint}_seconds", DEFAULT_LATENCY_BUCKETS
            ).observe(seconds or 0.0)
            if int(fields.get("status", 200)) >= 400:
                registry.counter("tmark_http_errors_total").inc()
        elif event == "span":
            registry.counter("tmark_spans_total").inc()
            if "error" in fields:
                registry.counter("tmark_span_errors_total").inc()
        elif event == "resource_sample":
            registry.gauge("tmark_rss_bytes").set(fields.get("rss_bytes", 0))
            registry.gauge("tmark_max_rss_bytes").set(
                fields.get("max_rss_bytes", 0)
            )
            registry.gauge("tmark_cpu_seconds").set(
                float(fields.get("cpu_user_seconds", 0.0))
                + float(fields.get("cpu_system_seconds", 0.0))
            )
            registry.gauge("tmark_gc_collections").set(
                fields.get("gc_collections", 0)
            )
            registry.gauge("tmark_threads").set(fields.get("n_threads", 0))
        elif event == "snapshot_swap":
            registry.counter("tmark_snapshot_swaps_total").inc()
            registry.gauge("tmark_snapshot_version").set(fields.get("version", 0))
            registry.histogram("tmark_snapshot_build_seconds").observe(seconds or 0.0)
        elif event == "counters":
            for name, value in fields.get("counters", {}).items():
                registry.counter(f"tmark_{name}_total").inc(value)


def registry_from_events(events) -> MetricsRegistry:
    """Fold a parsed trace (``read_trace`` output) into a fresh registry."""
    recorder = MetricsRecorder()
    for event in events:
        fields = {k: v for k, v in event.items() if k not in ("event", "ts")}
        recorder.emit(event.get("event", "?"), **fields)
    return recorder.registry
