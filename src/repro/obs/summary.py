"""Aggregate a JSONL trace into a per-phase time breakdown.

Backs the ``python -m repro.experiments trace-summary`` command: given
the events of one traced run, compute where the iteration time went
(the five chain phases), how much of the measured fit wall-clock the
phase timings account for, and the harness-level trial / grid-cell
telemetry.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

from repro.obs.recorder import CHAIN_PHASES


@dataclass
class TraceSummary:
    """Aggregated view of one trace (see :func:`summarize_trace`)."""

    n_events: int = 0
    event_counts: dict[str, int] = field(default_factory=dict)
    phase_totals: dict[str, float] = field(default_factory=dict)
    n_iterations: int = 0
    fit_seconds: float = 0.0
    n_fits: int = 0
    operator_seconds: float = 0.0
    n_frozen_events: int = 0
    trial_seconds: float = 0.0
    grid_seconds: float = 0.0
    n_delta_batches: int = 0
    n_deltas: int = 0
    patch_seconds: float = 0.0
    reconverge_iterations: int = 0
    reconverge_seconds: float = 0.0
    health_statuses: dict[str, int] = field(default_factory=dict)
    n_probes: int = 0
    max_mass_drift: float = 0.0
    min_probe_entry: float | None = None
    pool_workers: int = 0
    n_dispatched: int = 0
    n_pool_done: int = 0
    pool_cell_seconds: float = 0.0
    pool_worker_pids: set = field(default_factory=set)
    n_solver_steps: int = 0
    n_solver_restarts: int = 0
    solver_seconds: float = 0.0
    solver_names: set = field(default_factory=set)
    counters: dict[str, int] = field(default_factory=dict)
    n_spans: int = 0
    span_seconds: float = 0.0
    span_names: set = field(default_factory=set)
    trace_ids: set = field(default_factory=set)
    n_resource_samples: int = 0
    max_rss_bytes: int = 0
    n_requests: int = 0
    request_seconds: float = 0.0

    @property
    def phase_seconds(self) -> float:
        """Total seconds attributed to the chain phases."""
        return sum(self.phase_totals.values())

    @property
    def phase_coverage(self) -> float:
        """Phase-attributed share of the measured fit wall-clock.

        ``nan`` when the trace contains no ``fit`` events.
        """
        if self.fit_seconds <= 0.0:
            return float("nan")
        return self.phase_seconds / self.fit_seconds

    def to_dict(self) -> dict:
        """A JSON-serialisable view (sets become sorted lists, NaN → None).

        Backs ``trace-summary --json``; includes the derived
        ``phase_seconds`` / ``phase_coverage`` so machine consumers need
        no re-derivation.
        """
        data = {}
        for spec in dataclasses.fields(self):
            value = getattr(self, spec.name)
            data[spec.name] = sorted(value) if isinstance(value, set) else value
        data["phase_seconds"] = self.phase_seconds
        coverage = self.phase_coverage
        data["phase_coverage"] = None if math.isnan(coverage) else coverage
        return data


def summarize_trace(events) -> TraceSummary:
    """Fold a sequence of trace event dicts into a :class:`TraceSummary`."""
    summary = TraceSummary(phase_totals={name: 0.0 for name in CHAIN_PHASES})
    for event in events:
        kind = event.get("event", "?")
        summary.n_events += 1
        summary.event_counts[kind] = summary.event_counts.get(kind, 0) + 1
        if kind == "chain_iteration":
            summary.n_iterations += 1
            for name, seconds in event.get("phases", {}).items():
                summary.phase_totals[name] = (
                    summary.phase_totals.get(name, 0.0) + float(seconds)
                )
        elif kind == "chain_class":
            if event.get("frozen"):
                summary.n_frozen_events += 1
        elif kind == "fit":
            summary.n_fits += 1
            summary.fit_seconds += float(event.get("seconds", 0.0))
        elif kind == "operator_build":
            summary.operator_seconds += float(
                event.get("transition_seconds", 0.0)
            ) + float(event.get("feature_seconds", 0.0))
        elif kind == "trial":
            summary.trial_seconds += float(event.get("seconds", 0.0))
        elif kind == "grid_cell":
            summary.grid_seconds += float(event.get("seconds", 0.0))
        elif kind == "delta_apply":
            summary.n_delta_batches += 1
            summary.n_deltas += int(event.get("n_deltas", 0))
        elif kind == "operator_patch":
            summary.patch_seconds += float(event.get("seconds", 0.0))
        elif kind == "reconverge":
            summary.reconverge_iterations += int(event.get("iterations", 0))
            summary.reconverge_seconds += float(event.get("seconds", 0.0))
        elif kind == "chain_health":
            status = str(event.get("status", "?"))
            summary.health_statuses[status] = (
                summary.health_statuses.get(status, 0) + 1
            )
        elif kind == "invariant_probe":
            summary.n_probes += 1
            summary.max_mass_drift = max(
                summary.max_mass_drift,
                float(event.get("x_mass_drift", 0.0)),
                float(event.get("z_mass_drift", 0.0)),
            )
            entry_min = min(
                float(event.get("x_min", float("inf"))),
                float(event.get("z_min", float("inf"))),
            )
            if math.isfinite(entry_min):
                summary.min_probe_entry = (
                    entry_min
                    if summary.min_probe_entry is None
                    else min(summary.min_probe_entry, entry_min)
                )
        elif kind == "pool_start":
            summary.pool_workers = max(
                summary.pool_workers, int(event.get("workers", 0))
            )
        elif kind == "cell_dispatch":
            summary.n_dispatched += 1
        elif kind == "solver_step":
            summary.n_solver_steps += 1
            summary.solver_seconds += float(event.get("seconds", 0.0))
            if "solver" in event:
                summary.solver_names.add(str(event["solver"]))
        elif kind == "solver_restart":
            summary.n_solver_restarts += 1
            summary.solver_seconds += float(event.get("seconds", 0.0))
            if "solver" in event:
                summary.solver_names.add(str(event["solver"]))
        elif kind == "cell_done":
            summary.n_pool_done += 1
            summary.pool_cell_seconds += float(event.get("seconds", 0.0))
            if "worker" in event:
                summary.pool_worker_pids.add(int(event["worker"]))
        elif kind == "span":
            summary.n_spans += 1
            summary.span_seconds += float(event.get("seconds", 0.0))
            summary.span_names.add(str(event.get("name", "?")))
            if "trace_id" in event:
                summary.trace_ids.add(str(event["trace_id"]))
        elif kind == "resource_sample":
            summary.n_resource_samples += 1
            summary.max_rss_bytes = max(
                summary.max_rss_bytes,
                int(event.get("rss_bytes", 0)),
                int(event.get("max_rss_bytes", 0)),
            )
        elif kind == "http_request":
            summary.n_requests += 1
            summary.request_seconds += float(event.get("seconds", 0.0))
        elif kind == "counters":
            for name, value in event.get("counters", {}).items():
                summary.counters[name] = summary.counters.get(name, 0) + int(value)
    return summary


def format_trace_summary(summary: TraceSummary) -> str:
    """Render a :class:`TraceSummary` as a fixed-width breakdown table."""
    lines = [f"trace summary — {summary.n_events} events"]
    if summary.event_counts:
        lines.append("")
        lines.append("event".ljust(18) + "count".rjust(8))
        lines.append("-" * 26)
        for name in sorted(summary.event_counts):
            lines.append(name.ljust(18) + str(summary.event_counts[name]).rjust(8))
    phase_seconds = summary.phase_seconds
    if summary.n_iterations:
        lines.append("")
        lines.append(
            f"chain phases over {summary.n_iterations} iterations"
        )
        lines.append("phase".ljust(18) + "seconds".rjust(10) + "share".rjust(8))
        lines.append("-" * 36)
        for name, seconds in sorted(
            summary.phase_totals.items(), key=lambda kv: -kv[1]
        ):
            share = seconds / phase_seconds if phase_seconds > 0 else 0.0
            lines.append(
                name.ljust(18) + f"{seconds:10.4f}" + f"{share:7.1%}".rjust(8)
            )
        lines.append("total".ljust(18) + f"{phase_seconds:10.4f}")
    if summary.n_fits:
        coverage = summary.phase_coverage
        coverage_text = "n/a" if math.isnan(coverage) else f"{coverage:.1%}"
        lines.append(
            f"fit wall-clock: {summary.fit_seconds:.4f}s over "
            f"{summary.n_fits} fit(s); phase coverage {coverage_text}"
        )
    if summary.operator_seconds:
        lines.append(f"operator builds: {summary.operator_seconds:.4f}s")
    if summary.trial_seconds:
        lines.append(
            f"harness trials: {summary.event_counts.get('trial', 0)} "
            f"({summary.trial_seconds:.4f}s)"
        )
    if summary.grid_seconds:
        lines.append(
            f"grid cells: {summary.event_counts.get('grid_cell', 0)} "
            f"({summary.grid_seconds:.4f}s)"
        )
    if summary.n_delta_batches:
        lines.append(
            f"streaming: {summary.n_deltas} deltas in "
            f"{summary.n_delta_batches} batch(es); operator patches "
            f"{summary.patch_seconds:.4f}s; reconvergence "
            f"{summary.reconverge_iterations} iteration(s) "
            f"({summary.reconverge_seconds:.4f}s)"
        )
    if summary.pool_workers:
        lines.append(
            f"parallel pool: {summary.pool_workers} worker(s) "
            f"({len(summary.pool_worker_pids)} distinct pids); "
            f"{summary.n_pool_done}/{summary.n_dispatched} cells merged "
            f"({summary.pool_cell_seconds:.4f}s of worker wall-clock)"
        )
    if summary.n_solver_steps or summary.n_solver_restarts:
        names = ", ".join(sorted(summary.solver_names)) or "?"
        lines.append(
            f"solver ({names}): {summary.n_solver_steps} accepted step(s), "
            f"{summary.n_solver_restarts} restart(s) "
            f"({summary.solver_seconds:.4f}s)"
        )
    if summary.n_spans:
        names = ", ".join(sorted(summary.span_names))
        lines.append(
            f"spans: {summary.n_spans} across {len(summary.trace_ids)} "
            f"trace(s) ({names}); {summary.span_seconds:.4f}s span-attributed"
        )
    if summary.n_resource_samples:
        lines.append(
            f"resource samples: {summary.n_resource_samples}; peak RSS "
            f"{summary.max_rss_bytes / 1e6:.1f} MB"
        )
    if summary.n_requests:
        lines.append(
            f"http requests: {summary.n_requests} "
            f"({summary.request_seconds:.4f}s)"
        )
    if summary.n_frozen_events:
        lines.append(f"frozen-column events: {summary.n_frozen_events}")
    if summary.health_statuses:
        lines.append(
            "chain health: "
            + ", ".join(
                f"{status}={count}"
                for status, count in sorted(summary.health_statuses.items())
            )
        )
    if summary.n_probes:
        min_entry = (
            "n/a"
            if summary.min_probe_entry is None
            else f"{summary.min_probe_entry:.1e}"
        )
        lines.append(
            f"invariant probes: {summary.n_probes}; max simplex drift "
            f"{summary.max_mass_drift:.1e}; min entry {min_entry}"
        )
    if summary.counters:
        lines.append(
            "counters: "
            + ", ".join(f"{k}={v}" for k, v in sorted(summary.counters.items()))
        )
    return "\n".join(lines)
