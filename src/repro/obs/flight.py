"""Flight recorder and resource sampler: always-on, bounded telemetry.

A long-lived daemon cannot keep an unbounded JSONL trace open, but when
something goes wrong the *recent* event history is exactly what a
post-mortem needs.  :class:`FlightRecorder` keeps the last ``capacity``
events in a ring buffer — cheap enough to leave enabled permanently —
and serves them on demand (the daemon's ``GET /debug/trace`` endpoint,
the ``obs flight`` CLI command).

:class:`ResourceSampler` is the matching telemetry source: a stdlib
daemon thread that periodically emits a ``resource_sample`` event (RSS,
CPU time, GC counters, thread count) into a recorder, so resource
trajectories land in the same stream as the work they contextualize and
export to the same Perfetto counter tracks (:mod:`repro.obs.chrome`).
"""

from __future__ import annotations

import gc
import os
import threading
import time
from collections import deque

from repro.obs.recorder import Recorder
from repro.obs.spans import current_span
from repro.obs.trace import _jsonable

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def sample_process_stats() -> dict:
    """One snapshot of this process's resource usage, stdlib-only.

    Current RSS comes from ``/proc/self/statm`` where available (Linux);
    elsewhere ``rss_bytes`` is 0 and only the peak (``max_rss_bytes``,
    from :func:`resource.getrusage`) is populated.  CPU times come from
    :func:`os.times`, GC counters from :mod:`gc`.
    """
    rss_bytes = 0
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            rss_bytes = int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    max_rss_bytes = 0
    try:
        import resource

        # ru_maxrss is kilobytes on Linux, bytes on macOS.
        ru = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        max_rss_bytes = ru if ru > 1 << 32 else ru * 1024
    except (ImportError, OSError):
        pass
    times = os.times()
    gen0, gen1, gen2 = gc.get_count()
    stats = gc.get_stats()
    return {
        "pid": os.getpid(),
        "rss_bytes": rss_bytes,
        "max_rss_bytes": max_rss_bytes,
        "cpu_user_seconds": times.user,
        "cpu_system_seconds": times.system,
        "gc_gen0": gen0,
        "gc_gen1": gen1,
        "gc_gen2": gen2,
        "gc_collections": sum(s["collections"] for s in stats),
        "gc_collected": sum(s["collected"] for s in stats),
        "n_threads": threading.active_count(),
    }


class FlightRecorder(Recorder):
    """Bounded in-memory ring of the most recent ``capacity`` events.

    Events are stamped with ``ts`` (seconds since construction, same
    clock as :class:`~repro.obs.trace.JsonlTraceRecorder`), coerced to
    plain JSON types at emit time, and tagged with the active span id —
    so a ring dump is a valid trace for every post-processing tool
    (``summarize_trace``, :func:`~repro.obs.chrome.chrome_trace`).
    ``n_events`` counts everything ever emitted; the ring holds the tail.

    Thread-safe: the daemon's handler threads, updater thread and
    resource sampler all emit into one instance.  ``forward`` chains
    another sink (each event is also re-emitted there), mirroring
    :class:`~repro.obs.metrics.MetricsRecorder`'s composition idiom.
    """

    def __init__(
        self,
        capacity: int = 2048,
        *,
        probes: bool = False,
        forward: Recorder | None = None,
    ):
        super().__init__()
        from repro.utils.validation import check_positive_int

        self.capacity = check_positive_int(capacity, "capacity")
        self.probes = bool(probes)
        self.forward = forward
        self._ring: deque[dict] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._opened = time.perf_counter()
        self.n_events = 0

    def emit(self, event: str, **fields) -> None:
        record = {"event": event, "ts": time.perf_counter() - self._opened}
        ctx = current_span()
        if ctx is not None and "span_id" not in fields:
            record["span_id"] = ctx.span_id
        record.update(_jsonable(fields))
        with self._lock:
            self._ring.append(record)
            self.n_events += 1
        if self.forward is not None and self.forward.enabled:
            self.forward.emit(event, **fields)

    def count(self, name: str, n: int = 1) -> None:
        super().count(name, n)
        if self.forward is not None:
            self.forward.count(name, n)

    def events(self, last: int | None = None) -> list[dict]:
        """A snapshot of the ring (oldest first), optionally the tail.

        ``last`` limits the result to the ``last`` most recent events;
        ``None`` or anything >= the ring size returns everything held.
        """
        with self._lock:
            records = list(self._ring)
        if last is not None and last >= 0:
            records = records[len(records) - min(last, len(records)) :]
        return records


class ResourceSampler:
    """Daemon thread emitting periodic ``resource_sample`` events.

    Samples :func:`sample_process_stats` into ``recorder`` every
    ``interval`` seconds, starting with one immediate sample so even
    short-lived runs record a baseline.  ``start``/``stop`` are
    idempotent; ``stop`` joins the thread.  Usable as a context manager.
    """

    def __init__(self, recorder: Recorder, *, interval: float = 1.0):
        from repro.errors import ValidationError

        self.recorder = recorder
        self.interval = float(interval)
        if not self.interval > 0:
            raise ValidationError(f"interval must be > 0, got {interval!r}")
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.n_samples = 0

    def start(self) -> "ResourceSampler":
        """Start the sampler thread (no-op when already running)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while True:
            if self.recorder.enabled:
                self.recorder.emit("resource_sample", **sample_process_stats())
                self.n_samples += 1
            if self._stop.wait(self.interval):
                return

    def stop(self) -> None:
        """Stop and join the sampler thread (no-op when not running)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
