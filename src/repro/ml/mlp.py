"""Neural-network substrate: dense and highway layers with manual backprop.

Supports the Highway Network baseline (Srivastava et al. [38]) and the
classifier head of the Graph Inception baseline [39].  Everything is
numpy: forward passes cache what the backward pass needs, gradients flow
layer to layer, and :class:`AdamOptimizer` applies the updates.

A highway layer computes ``y = g * h(x) + (1 - g) * x`` where
``h(x) = relu(W_h x + b_h)`` is the transform and
``g = sigmoid(W_g x + b_g)`` the gate; the gate bias is initialised
negative so early training passes inputs through (the carry behaviour the
paper's HN baseline relies on).
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError, ValidationError
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class DenseLayer:
    """Affine layer with optional ReLU, He initialisation."""

    def __init__(self, n_in: int, n_out: int, *, activation: str = "relu", rng=None):
        if activation not in ("relu", "linear"):
            raise ValidationError(f"activation must be 'relu' or 'linear', got {activation!r}")
        rng = ensure_rng(rng)
        scale = np.sqrt(2.0 / max(n_in, 1))
        self.weights = rng.normal(0.0, scale, size=(n_in, n_out))
        self.bias = np.zeros(n_out)
        self.activation = activation
        self._cache_input: np.ndarray | None = None
        self._cache_pre: np.ndarray | None = None
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output, caching for backward."""
        self._cache_input = x
        pre = x @ self.weights + self.bias
        self._cache_pre = pre
        if self.activation == "relu":
            return relu(pre)
        return pre

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate, accumulating parameter gradients."""
        if self._cache_input is None or self._cache_pre is None:
            raise NotFittedError("backward called before forward")
        if self.activation == "relu":
            grad_out = grad_out * (self._cache_pre > 0)
        self.grad_weights = self._cache_input.T @ grad_out
        self.grad_bias = grad_out.sum(axis=0)
        return grad_out @ self.weights.T

    def parameters(self):
        """``(param, grad)`` pairs for the optimiser."""
        return [(self.weights, self.grad_weights), (self.bias, self.grad_bias)]


class HighwayLayer:
    """Highway layer: ``y = g * relu(W_h x + b_h) + (1 - g) * x``."""

    def __init__(self, size: int, *, gate_bias: float = -1.0, rng=None):
        rng = ensure_rng(rng)
        scale = np.sqrt(2.0 / max(size, 1))
        self.w_h = rng.normal(0.0, scale, size=(size, size))
        self.b_h = np.zeros(size)
        self.w_g = rng.normal(0.0, scale, size=(size, size))
        # Negative gate bias biases toward carry early in training.
        self.b_g = np.full(size, float(gate_bias))
        self._cache: tuple | None = None
        self.grad_w_h = np.zeros_like(self.w_h)
        self.grad_b_h = np.zeros_like(self.b_h)
        self.grad_w_g = np.zeros_like(self.w_g)
        self.grad_b_g = np.zeros_like(self.b_g)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the gated output, caching for backward."""
        pre_h = x @ self.w_h + self.b_h
        h = relu(pre_h)
        pre_g = x @ self.w_g + self.b_g
        g = sigmoid(pre_g)
        self._cache = (x, pre_h, h, g)
        return g * h + (1.0 - g) * x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate through transform and gate paths."""
        if self._cache is None:
            raise NotFittedError("backward called before forward")
        x, pre_h, h, g = self._cache
        grad_h = grad_out * g
        grad_g = grad_out * (h - x)
        grad_pre_h = grad_h * (pre_h > 0)
        grad_pre_g = grad_g * g * (1.0 - g)
        self.grad_w_h = x.T @ grad_pre_h
        self.grad_b_h = grad_pre_h.sum(axis=0)
        self.grad_w_g = x.T @ grad_pre_g
        self.grad_b_g = grad_pre_g.sum(axis=0)
        return (
            grad_pre_h @ self.w_h.T
            + grad_pre_g @ self.w_g.T
            + grad_out * (1.0 - g)
        )

    def parameters(self):
        """``(param, grad)`` pairs for the optimiser."""
        return [
            (self.w_h, self.grad_w_h),
            (self.b_h, self.grad_b_h),
            (self.w_g, self.grad_w_g),
            (self.b_g, self.grad_b_g),
        ]


class AdamOptimizer:
    """Adam with in-place parameter updates."""

    def __init__(self, *, lr: float = 1e-2, beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        if lr <= 0:
            raise ValidationError(f"lr must be positive, got {lr}")
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, parameters) -> None:
        """Apply one Adam update to ``(param, grad)`` pairs (in place)."""
        self._t += 1
        for param, grad in parameters:
            key = id(param)
            if key not in self._m:
                self._m[key] = np.zeros_like(param)
                self._v[key] = np.zeros_like(param)
            m = self._m[key]
            v = self._v[key]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / (1.0 - self.beta1**self._t)
            v_hat = v / (1.0 - self.beta2**self._t)
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class MLPClassifier:
    """Softmax classifier over a stack of layers.

    Parameters
    ----------
    layers:
        Pre-built layer stack (Dense / Highway), ending in a layer whose
        output dimension equals the number of classes.
    n_classes:
        Number of classes (for validation / fixed class spaces).
    epochs, batch_size, lr:
        Training schedule; full-batch when ``batch_size`` is ``None``.
    l2:
        Weight decay applied to every weight matrix.
    """

    def __init__(
        self,
        layers,
        n_classes: int,
        *,
        epochs: int = 100,
        batch_size: int | None = None,
        lr: float = 1e-2,
        l2: float = 1e-4,
        rng=None,
    ):
        self.layers = list(layers)
        if not self.layers:
            raise ValidationError("at least one layer is required")
        self.n_classes = check_positive_int(n_classes, "n_classes")
        self.epochs = check_positive_int(epochs, "epochs")
        if batch_size is not None:
            batch_size = check_positive_int(batch_size, "batch_size")
        self.batch_size = batch_size
        self.l2 = float(l2)
        self.rng = ensure_rng(rng)
        self.optimizer = AdamOptimizer(lr=lr)
        self.loss_history_: list[float] = []
        self._fitted = False

    def _forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def fit(self, features, labels) -> "MLPClassifier":
        """Train with softmax cross-entropy on integer labels."""
        x = np.asarray(features, dtype=float)
        if hasattr(features, "toarray"):
            x = features.toarray().astype(float)
        y = np.asarray(labels, dtype=np.int64)
        if y.ndim != 1 or y.size != x.shape[0]:
            raise ValidationError("labels must align with feature rows")
        if y.size == 0:
            raise ValidationError("cannot fit on an empty training set")
        if y.min() < 0 or y.max() >= self.n_classes:
            raise ValidationError(f"labels must lie in [0, {self.n_classes})")
        n = x.shape[0]
        batch = self.batch_size or n
        onehot = np.zeros((n, self.n_classes))
        onehot[np.arange(n), y] = 1.0
        for _ in range(self.epochs):
            order = self.rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                idx = order[start:start + batch]
                logits = self._forward(x[idx])
                shifted = logits - logits.max(axis=1, keepdims=True)
                exp = np.exp(shifted)
                probs = exp / exp.sum(axis=1, keepdims=True)
                picked = np.clip(probs[np.arange(idx.size), y[idx]], 1e-300, None)
                epoch_loss += -np.log(picked).sum()
                grad = (probs - onehot[idx]) / idx.size
                for layer in reversed(self.layers):
                    grad = layer.backward(grad)
                params = []
                for layer in self.layers:
                    for param, param_grad in layer.parameters():
                        if param.ndim == 2 and self.l2 > 0:
                            param_grad = param_grad + self.l2 * param
                        params.append((param, param_grad))
                self.optimizer.step(params)
            self.loss_history_.append(epoch_loss / n)
        self._fitted = True
        return self

    def predict_proba(self, features) -> np.ndarray:
        """Class probabilities per row."""
        if not self._fitted:
            raise NotFittedError("MLPClassifier.fit must be called first")
        x = np.asarray(features, dtype=float)
        if hasattr(features, "toarray"):
            x = features.toarray().astype(float)
        logits = self._forward(x)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, features) -> np.ndarray:
        """Most probable class index per row."""
        return np.argmax(self.predict_proba(features), axis=1)
