"""Feature preprocessing for bag-of-words node descriptions.

The paper represents node content as bag-of-words vectors (titles on
DBLP/ACM, user tags on Movies, SIFT codewords on NUS).  These helpers
provide the standard transforms applied before cosine similarity or a
linear classifier.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError


def tfidf_transform(counts):
    """TF-IDF weighting of a non-negative count matrix.

    Uses smoothed inverse document frequency
    ``idf = log((1 + N) / (1 + df)) + 1`` so unseen terms stay finite.
    Preserves sparsity: sparse in, sparse out.
    """
    if sp.issparse(counts):
        mat = sp.csr_matrix(counts, dtype=float)
        if mat.nnz and mat.data.min() < 0:
            raise ValidationError("tf-idf requires non-negative counts")
        n_docs = mat.shape[0]
        doc_freq = np.asarray((mat > 0).sum(axis=0)).ravel()
        idf = np.log((1.0 + n_docs) / (1.0 + doc_freq)) + 1.0
        return (mat @ sp.diags(idf)).tocsr()
    mat = np.asarray(counts, dtype=float)
    if mat.ndim != 2:
        raise ValidationError(f"counts must be 2-D, got shape {mat.shape}")
    if mat.size and mat.min() < 0:
        raise ValidationError("tf-idf requires non-negative counts")
    n_docs = mat.shape[0]
    doc_freq = (mat > 0).sum(axis=0)
    idf = np.log((1.0 + n_docs) / (1.0 + doc_freq)) + 1.0
    return mat * idf[None, :]


def l2_normalize_rows(matrix):
    """Scale each row to unit L2 norm (zero rows stay zero)."""
    if sp.issparse(matrix):
        mat = sp.csr_matrix(matrix, dtype=float)
        norms = np.sqrt(np.asarray(mat.multiply(mat).sum(axis=1)).ravel())
        scale = np.where(norms > 0, 1.0 / np.where(norms > 0, norms, 1.0), 0.0)
        return (sp.diags(scale) @ mat).tocsr()
    mat = np.asarray(matrix, dtype=float)
    if mat.ndim != 2:
        raise ValidationError(f"matrix must be 2-D, got shape {mat.shape}")
    norms = np.linalg.norm(mat, axis=1)
    safe = np.where(norms > 0, norms, 1.0)
    return mat / safe[:, None]


def standardize(matrix) -> np.ndarray:
    """Column-wise zero-mean unit-variance scaling (densifies sparse input).

    Constant columns are left at zero rather than dividing by zero.
    """
    if sp.issparse(matrix):
        mat = matrix.toarray().astype(float)
    else:
        mat = np.asarray(matrix, dtype=float).copy()
    if mat.ndim != 2:
        raise ValidationError(f"matrix must be 2-D, got shape {mat.shape}")
    mean = mat.mean(axis=0)
    std = mat.std(axis=0)
    safe = np.where(std > 0, std, 1.0)
    return (mat - mean) / safe
