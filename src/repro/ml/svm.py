"""Linear support vector machine, one-vs-rest.

The paper's EMR baseline trains "an ICA classifier for each type of link
with SVM as the base classifier".  This is an L2-regularised *squared*
hinge loss linear SVM — squared hinge keeps the objective differentiable
so the same scipy L-BFGS-B machinery as
:class:`~repro.ml.logistic.LogisticRegression` applies; its solutions are
equivalent in practice to an off-the-shelf ``LinearSVC``.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.errors import NotFittedError, ValidationError
from repro.ml.logistic import _as_matrix, softmax
from repro.utils.validation import check_positive_int


class LinearSVM:
    """One-vs-rest linear SVM with squared hinge loss.

    Parameters
    ----------
    c:
        Inverse regularisation strength (larger = harder margins).
    max_iter:
        L-BFGS iteration budget per binary problem.
    n_classes:
        Optional fixed class-space size (see
        :class:`~repro.ml.logistic.LogisticRegression`).
    """

    def __init__(self, *, c: float = 1.0, max_iter: int = 200, n_classes: int | None = None):
        if c <= 0:
            raise ValidationError(f"c must be positive, got {c}")
        self.c = float(c)
        self.max_iter = check_positive_int(max_iter, "max_iter")
        if n_classes is not None:
            n_classes = check_positive_int(n_classes, "n_classes")
        self.n_classes = n_classes
        self.weights_: np.ndarray | None = None
        self.bias_: np.ndarray | None = None

    def fit(self, features, labels) -> "LinearSVM":
        """Fit one binary margin per class on integer labels."""
        features = _as_matrix(features)
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim != 1 or labels.size != features.shape[0]:
            raise ValidationError(
                "labels must be a 1-D integer array aligned with features rows"
            )
        if labels.size == 0:
            raise ValidationError("cannot fit on an empty training set")
        q = self.n_classes if self.n_classes is not None else int(labels.max()) + 1
        if labels.min() < 0 or labels.max() >= q:
            raise ValidationError(f"labels must lie in [0, {q})")
        n, d = features.shape
        weights = np.zeros((d, q))
        bias = np.zeros(q)
        for c_idx in range(q):
            target = np.where(labels == c_idx, 1.0, -1.0)

            def objective(flat, target=target):
                w = flat[:d]
                b = flat[d]
                margins = target * (np.asarray(features @ w).ravel() + b)
                slack = np.clip(1.0 - margins, 0.0, None)
                loss = 0.5 * float(w @ w) + self.c * float((slack**2).sum()) / n
                grad_scale = -2.0 * self.c * slack * target / n
                grad_w = w + np.asarray(features.T @ grad_scale).ravel()
                grad_b = float(grad_scale.sum())
                return loss, np.concatenate([grad_w, [grad_b]])

            solution = minimize(
                objective,
                np.zeros(d + 1),
                jac=True,
                method="L-BFGS-B",
                options={"maxiter": self.max_iter},
            )
            weights[:, c_idx] = solution.x[:d]
            bias[c_idx] = solution.x[d]
        self.weights_ = weights
        self.bias_ = bias
        return self

    def decision_function(self, features) -> np.ndarray:
        """Per-class margins for ``features``."""
        if self.weights_ is None or self.bias_ is None:
            raise NotFittedError("LinearSVM.fit must be called first")
        features = _as_matrix(features)
        if features.shape[1] != self.weights_.shape[0]:
            raise ValidationError(
                f"features have {features.shape[1]} columns, model expects "
                f"{self.weights_.shape[0]}"
            )
        return np.asarray(features @ self.weights_) + self.bias_

    def predict(self, features) -> np.ndarray:
        """Class with the largest margin per row."""
        return np.argmax(self.decision_function(features), axis=1)

    def predict_proba(self, features) -> np.ndarray:
        """Softmax over margins — calibrated enough for ensemble voting."""
        return softmax(self.decision_function(features))
