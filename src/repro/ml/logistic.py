"""Multinomial logistic (softmax) regression.

Optimised with scipy's L-BFGS-B on the exact convex objective

.. math::

    J(W, b) = -\\frac{1}{N} \\sum_i \\log p(y_i | x_i)
              + \\frac{\\lambda}{2} ||W||_F^2

with an analytic gradient.  Serves as the base classifier of the ICA,
Hcc and Hcc-ss baselines (a drop-in role the paper fills with standard
off-the-shelf learners).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.optimize import minimize

from repro.errors import NotFittedError, ValidationError
from repro.utils.validation import check_positive_int


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-subtraction for numerical stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegression:
    """L2-regularised multinomial logistic regression.

    Parameters
    ----------
    l2:
        Regularisation strength ``lambda`` (on weights, not bias).
    max_iter:
        L-BFGS iteration budget.
    n_classes:
        Optional fixed class-space size.  When given, labels are class
        indices into ``[0, n_classes)`` even if some classes are absent
        from the training data — essential for collective classifiers
        that retrain on subsets.
    """

    def __init__(self, *, l2: float = 1e-3, max_iter: int = 200, n_classes: int | None = None):
        if l2 < 0:
            raise ValidationError(f"l2 must be non-negative, got {l2}")
        self.l2 = float(l2)
        self.max_iter = check_positive_int(max_iter, "max_iter")
        if n_classes is not None:
            n_classes = check_positive_int(n_classes, "n_classes")
        self.n_classes = n_classes
        self.weights_: np.ndarray | None = None
        self.bias_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, features, labels) -> "LogisticRegression":
        """Fit on ``(N, d)`` features and length-``N`` integer labels."""
        features = _as_matrix(features)
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim != 1 or labels.size != features.shape[0]:
            raise ValidationError(
                "labels must be a 1-D integer array aligned with features rows"
            )
        if labels.size == 0:
            raise ValidationError("cannot fit on an empty training set")
        q = self.n_classes if self.n_classes is not None else int(labels.max()) + 1
        if labels.min() < 0 or labels.max() >= q:
            raise ValidationError(f"labels must lie in [0, {q})")
        n, d = features.shape
        onehot = np.zeros((n, q))
        onehot[np.arange(n), labels] = 1.0

        def objective(flat):
            weights = flat[: d * q].reshape(d, q)
            bias = flat[d * q:]
            logits = features @ weights + bias
            probs = softmax(np.asarray(logits))
            # Cross-entropy; clip avoids log(0) for extreme logits.
            loss = -np.log(np.clip(probs[np.arange(n), labels], 1e-300, None)).mean()
            loss += 0.5 * self.l2 * float((weights**2).sum())
            delta = (probs - onehot) / n
            grad_w = features.T @ delta + self.l2 * weights
            grad_b = delta.sum(axis=0)
            return loss, np.concatenate([np.asarray(grad_w).ravel(), grad_b])

        x0 = np.zeros(d * q + q)
        solution = minimize(
            objective,
            x0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.weights_ = solution.x[: d * q].reshape(d, q)
        self.bias_ = solution.x[d * q:]
        return self

    # ------------------------------------------------------------------
    def decision_function(self, features) -> np.ndarray:
        """Raw class logits for ``features``."""
        if self.weights_ is None or self.bias_ is None:
            raise NotFittedError("LogisticRegression.fit must be called first")
        features = _as_matrix(features)
        if features.shape[1] != self.weights_.shape[0]:
            raise ValidationError(
                f"features have {features.shape[1]} columns, model expects "
                f"{self.weights_.shape[0]}"
            )
        return np.asarray(features @ self.weights_) + self.bias_

    def predict_proba(self, features) -> np.ndarray:
        """Class probabilities for ``features``."""
        return softmax(self.decision_function(features))

    def predict(self, features) -> np.ndarray:
        """Most probable class index per row."""
        return np.argmax(self.decision_function(features), axis=1)


def _as_matrix(features):
    """Accept dense or scipy-sparse features, coerce dense to float 2-D."""
    if sp.issparse(features):
        return sp.csr_matrix(features, dtype=float)
    arr = np.asarray(features, dtype=float)
    if arr.ndim != 2:
        raise ValidationError(f"features must be 2-D, got shape {arr.shape}")
    return arr
