"""Multinomial naive Bayes for bag-of-words features.

A fast, training-free-tuning text classifier used as an alternative base
learner in the collective-classification baselines and as a sanity
baseline in the examples: every dataset generator produces bag-of-words
features, which is exactly the multinomial model's home turf.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import NotFittedError, ValidationError
from repro.ml.logistic import _as_matrix
from repro.utils.validation import check_positive_int


class MultinomialNaiveBayes:
    """Multinomial NB with Laplace (add-``smoothing``) smoothing.

    Parameters
    ----------
    smoothing:
        The additive smoothing pseudo-count (1.0 = classic Laplace).
    n_classes:
        Optional fixed class-space size (see
        :class:`~repro.ml.logistic.LogisticRegression`).
    """

    def __init__(self, *, smoothing: float = 1.0, n_classes: int | None = None):
        if smoothing <= 0:
            raise ValidationError(f"smoothing must be positive, got {smoothing}")
        self.smoothing = float(smoothing)
        if n_classes is not None:
            n_classes = check_positive_int(n_classes, "n_classes")
        self.n_classes = n_classes
        self.log_prior_: np.ndarray | None = None
        self.log_likelihood_: np.ndarray | None = None

    def fit(self, features, labels) -> "MultinomialNaiveBayes":
        """Fit on non-negative count features and integer labels."""
        features = _as_matrix(features)
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim != 1 or labels.size != features.shape[0]:
            raise ValidationError(
                "labels must be a 1-D integer array aligned with features rows"
            )
        if labels.size == 0:
            raise ValidationError("cannot fit on an empty training set")
        if sp.issparse(features):
            if features.nnz and features.data.min() < 0:
                raise ValidationError("multinomial NB requires non-negative features")
        elif features.size and features.min() < 0:
            raise ValidationError("multinomial NB requires non-negative features")
        q = self.n_classes if self.n_classes is not None else int(labels.max()) + 1
        if labels.min() < 0 or labels.max() >= q:
            raise ValidationError(f"labels must lie in [0, {q})")
        d = features.shape[1]
        counts = np.zeros((q, d))
        class_counts = np.zeros(q)
        for c in range(q):
            mask = labels == c
            class_counts[c] = mask.sum()
            if np.any(mask):
                counts[c] = np.asarray(features[mask].sum(axis=0)).ravel()
        # Smoothed priors keep absent classes finite instead of -inf.
        self.log_prior_ = np.log(
            (class_counts + self.smoothing) / (labels.size + q * self.smoothing)
        )
        smoothed = counts + self.smoothing
        self.log_likelihood_ = np.log(smoothed / smoothed.sum(axis=1, keepdims=True))
        return self

    def decision_function(self, features) -> np.ndarray:
        """Joint log-probabilities ``log p(c) + sum_w x_w log p(w|c)``."""
        if self.log_prior_ is None or self.log_likelihood_ is None:
            raise NotFittedError("MultinomialNaiveBayes.fit must be called first")
        features = _as_matrix(features)
        if features.shape[1] != self.log_likelihood_.shape[1]:
            raise ValidationError(
                f"features have {features.shape[1]} columns, model expects "
                f"{self.log_likelihood_.shape[1]}"
            )
        return np.asarray(features @ self.log_likelihood_.T) + self.log_prior_

    def predict(self, features) -> np.ndarray:
        """Most probable class index per row."""
        return np.argmax(self.decision_function(features), axis=1)

    def predict_proba(self, features) -> np.ndarray:
        """Posterior class probabilities per row."""
        joint = self.decision_function(features)
        joint -= joint.max(axis=1, keepdims=True)
        probs = np.exp(joint)
        return probs / probs.sum(axis=1, keepdims=True)
