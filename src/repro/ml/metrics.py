"""Evaluation metrics used by the paper's tables.

Tables 3, 4 and 8 report plain accuracy; Table 11 reports Macro-F1 on a
multi-label problem.  All metrics are implemented directly (no sklearn)
and tested against hand-computed cases.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError


def _check_aligned(y_true, y_pred):
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ShapeError(
            f"y_true and y_pred shapes differ: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValidationError("metrics are undefined on empty inputs")
    return y_true, y_pred


def accuracy(y_true, y_pred) -> float:
    """Fraction of exactly matching entries."""
    y_true, y_pred = _check_aligned(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, n_classes: int | None = None) -> np.ndarray:
    """Confusion counts ``C[t, p]`` = #(true t predicted p).

    An explicit ``n_classes`` must be positive and cover every label on
    both sides; an out-of-range label raises
    :class:`~repro.errors.ValidationError` naming the offending label
    and the bound instead of crashing inside ``np.add.at``.
    """
    y_true, y_pred = _check_aligned(
        np.asarray(y_true, dtype=np.int64), np.asarray(y_pred, dtype=np.int64)
    )
    if y_true.ndim != 1:
        raise ShapeError("confusion_matrix expects 1-D label arrays")
    max_label = int(max(y_true.max(initial=0), y_pred.max(initial=0)))
    if n_classes is None:
        n_classes = max_label + 1
    else:
        n_classes = int(n_classes)
        if n_classes <= 0:
            raise ValidationError(f"n_classes must be positive, got {n_classes}")
        if max_label >= n_classes:
            side = "y_true" if max_label in y_true else "y_pred"
            raise ValidationError(
                f"label {max_label} in {side} is out of range for "
                f"n_classes={n_classes} (valid labels: 0..{n_classes - 1})"
            )
    if y_true.min(initial=0) < 0 or y_pred.min(initial=0) < 0:
        raise ValidationError("labels must be non-negative class indices")
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def f1_per_class(y_true, y_pred, n_classes: int | None = None) -> np.ndarray:
    """Per-class F1 scores; a class absent from both sides scores 0."""
    matrix = confusion_matrix(y_true, y_pred, n_classes)
    true_pos = np.diag(matrix).astype(float)
    predicted = matrix.sum(axis=0).astype(float)
    actual = matrix.sum(axis=1).astype(float)
    denom = predicted + actual
    with np.errstate(invalid="ignore", divide="ignore"):
        f1 = np.where(denom > 0, 2.0 * true_pos / denom, 0.0)
    return f1


def macro_f1(y_true, y_pred, n_classes: int | None = None) -> float:
    """Unweighted mean of per-class F1 (single-label)."""
    return float(f1_per_class(y_true, y_pred, n_classes).mean())


def micro_f1(y_true, y_pred, n_classes: int | None = None) -> float:
    """Micro-averaged F1 — equals accuracy in the single-label case."""
    matrix = confusion_matrix(y_true, y_pred, n_classes)
    true_pos = float(np.diag(matrix).sum())
    total = float(matrix.sum())
    return true_pos / total if total else 0.0


def multilabel_macro_f1(y_true, y_pred) -> float:
    """Macro-F1 over ``(n, q)`` boolean matrices (Table 11's metric).

    F1 is computed per label column and averaged; a label with no true
    and no predicted positives contributes 1.0 (perfect agreement on
    absence), matching the common convention for sparse label spaces.
    """
    y_true = np.asarray(y_true, dtype=bool)
    y_pred = np.asarray(y_pred, dtype=bool)
    if y_true.shape != y_pred.shape or y_true.ndim != 2:
        raise ShapeError(
            f"expected matching (n, q) boolean matrices, got {y_true.shape} "
            f"and {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValidationError("metrics are undefined on empty inputs")
    true_pos = (y_true & y_pred).sum(axis=0).astype(float)
    predicted = y_pred.sum(axis=0).astype(float)
    actual = y_true.sum(axis=0).astype(float)
    denom = predicted + actual
    f1 = np.where(denom > 0, 2.0 * true_pos / np.where(denom > 0, denom, 1.0), 1.0)
    return float(f1.mean())
