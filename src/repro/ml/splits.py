"""Label-fraction splits for the paper's evaluation grids.

Every table in section 6 "randomly picks up {10, ..., 90}% of the examples
as the training data" with 10 runs per split.  These helpers produce the
boolean *train masks* for such grids — stratified so tiny fractions still
cover every class, which the per-class T-Mark chains need.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction


def stratified_fraction_split(labels, fraction: float, *, rng=None, min_per_class: int = 1) -> np.ndarray:
    """Boolean train mask covering ``fraction`` of nodes, stratified by class.

    Parameters
    ----------
    labels:
        Length-``n`` integer class labels (all nodes labeled — the
        ground-truth view the harness splits before masking).
    fraction:
        Target train fraction in (0, 1).
    min_per_class:
        Floor on training examples per class (classes smaller than the
        floor contribute everything they have).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1 or labels.size == 0:
        raise ValidationError("labels must be a non-empty 1-D integer array")
    if labels.min() < 0:
        raise ValidationError("labels must be non-negative (all nodes labeled)")
    fraction = check_fraction(fraction, "fraction")
    rng = ensure_rng(rng)
    mask = np.zeros(labels.size, dtype=bool)
    for c in np.unique(labels):
        members = np.flatnonzero(labels == c)
        count = int(round(fraction * members.size))
        count = max(count, min(min_per_class, members.size))
        count = min(count, members.size)
        chosen = rng.choice(members, size=count, replace=False)
        mask[chosen] = True
    return mask


def multilabel_fraction_split(label_matrix, fraction: float, *, rng=None, min_per_class: int = 1) -> np.ndarray:
    """Boolean train mask for an ``(n, q)`` multi-label matrix.

    Samples ``fraction`` of all labeled nodes uniformly, then tops up any
    class left with fewer than ``min_per_class`` positive training nodes.
    """
    label_matrix = np.asarray(label_matrix, dtype=bool)
    if label_matrix.ndim != 2 or label_matrix.size == 0:
        raise ValidationError("label_matrix must be a non-empty (n, q) bool matrix")
    fraction = check_fraction(fraction, "fraction")
    rng = ensure_rng(rng)
    labeled = np.flatnonzero(label_matrix.any(axis=1))
    if labeled.size == 0:
        raise ValidationError("label_matrix has no labeled nodes")
    count = max(int(round(fraction * labeled.size)), 1)
    chosen = rng.choice(labeled, size=min(count, labeled.size), replace=False)
    mask = np.zeros(label_matrix.shape[0], dtype=bool)
    mask[chosen] = True
    # Top up classes that ended underrepresented in the training side.
    for c in range(label_matrix.shape[1]):
        positives = np.flatnonzero(label_matrix[:, c])
        have = int(mask[positives].sum())
        need = min(min_per_class, positives.size) - have
        if need > 0:
            missing = positives[~mask[positives]]
            extra = rng.choice(missing, size=need, replace=False)
            mask[extra] = True
    return mask
