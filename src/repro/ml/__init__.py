"""Pure numpy/scipy machine-learning substrate.

The paper's baselines need conventional supervised learners (logistic
regression, linear SVMs, neural layers).  No external ML library is used:
everything here is implemented from scratch on numpy, with scipy's
L-BFGS-B as the only optimisation dependency for the convex models.

* :class:`~repro.ml.logistic.LogisticRegression` — multinomial softmax
  regression (base classifier of ICA / Hcc / Hcc-ss).
* :class:`~repro.ml.svm.LinearSVM` — one-vs-rest L2 squared-hinge SVM
  (base classifier of EMR, as in the paper).
* :class:`~repro.ml.naive_bayes.MultinomialNaiveBayes` — fast text
  baseline used in tests and examples.
* :mod:`~repro.ml.mlp` — dense / highway layers with manual backprop and
  Adam (substrate of the Highway Network and Graph Inception baselines).
* :mod:`~repro.ml.metrics` — accuracy, macro/micro F1, confusion matrix.
* :mod:`~repro.ml.preprocess` — tf-idf, row normalisation, scaling.
* :mod:`~repro.ml.splits` — stratified label-fraction splits (the
  {10..90}% grids of Tables 3, 4, 8, 11).
"""

from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    f1_per_class,
    macro_f1,
    micro_f1,
    multilabel_macro_f1,
)
from repro.ml.mlp import AdamOptimizer, DenseLayer, HighwayLayer, MLPClassifier
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.ml.preprocess import l2_normalize_rows, standardize, tfidf_transform
from repro.ml.splits import multilabel_fraction_split, stratified_fraction_split
from repro.ml.svm import LinearSVM

__all__ = [
    "LogisticRegression",
    "LinearSVM",
    "MultinomialNaiveBayes",
    "MLPClassifier",
    "DenseLayer",
    "HighwayLayer",
    "AdamOptimizer",
    "accuracy",
    "macro_f1",
    "micro_f1",
    "multilabel_macro_f1",
    "f1_per_class",
    "confusion_matrix",
    "tfidf_transform",
    "l2_normalize_rows",
    "standardize",
    "stratified_fraction_split",
    "multilabel_fraction_split",
]
