"""Network linting: diagnose HIN issues before fitting.

T-Mark and the baselines are robust to most structural quirks (dangling
fibres, isolated nodes, empty relations) but several of them silently
degrade results.  :func:`check_hin` returns human-readable warnings for
the conditions worth knowing about before a fit, so pipelines can fail
fast or log them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hin.graph import HIN
from repro.tensor.transition import is_irreducible


@dataclass(frozen=True)
class HINWarning:
    """One diagnosed issue.

    Attributes
    ----------
    code:
        Stable machine-readable identifier (``isolated-nodes``, ...).
    message:
        Human-readable description with counts/names.
    severity:
        ``"info"`` (harmless, handled internally), ``"warning"``
        (degrades some methods) or ``"error"`` (a fit will be
        meaningless or fail).
    """

    code: str
    message: str
    severity: str


def check_hin(hin: HIN) -> list[HINWarning]:
    """Lint a HIN; returns an empty list when nothing is noteworthy."""
    warnings: list[HINWarning] = []
    i, j, k = hin.tensor.coords

    # Isolated nodes: no links in or out — only features can place them.
    connected = np.zeros(hin.n_nodes, dtype=bool)
    connected[i] = True
    connected[j] = True
    n_isolated = int((~connected).sum())
    if n_isolated:
        warnings.append(
            HINWarning(
                code="isolated-nodes",
                message=(
                    f"{n_isolated} node(s) have no links at all; relational "
                    "methods see them only through the restart/feature terms"
                ),
                severity="warning",
            )
        )

    # Empty relations: dead weight in z and in per-relation baselines.
    counts = np.bincount(k, minlength=hin.n_relations)
    empty = [hin.relation_names[rel] for rel in np.flatnonzero(counts == 0)]
    if empty:
        warnings.append(
            HINWarning(
                code="empty-relations",
                message=f"relation(s) with no links: {', '.join(empty)}",
                severity="warning",
            )
        )

    # Classes with no labeled nodes: their chains are uninformative.
    labeled_per_class = hin.label_matrix.sum(axis=0)
    unlabeled_classes = [
        hin.label_names[c] for c in np.flatnonzero(labeled_per_class == 0)
    ]
    if unlabeled_classes:
        warnings.append(
            HINWarning(
                code="classes-without-labels",
                message=(
                    "class(es) with no labeled nodes: "
                    + ", ".join(unlabeled_classes)
                ),
                severity="warning",
            )
        )

    # No supervision at all: transductive fits cannot start.
    if not hin.labeled_mask.any():
        warnings.append(
            HINWarning(
                code="no-labels",
                message="the HIN has no labeled nodes; supervised fits will fail",
                severity="error",
            )
        )

    # Reducibility: Theorem 2's positivity guarantee does not apply.
    if hin.tensor.nnz and not is_irreducible(hin.tensor):
        warnings.append(
            HINWarning(
                code="not-irreducible",
                message=(
                    "the aggregated link graph is not strongly connected; "
                    "the paper's positivity guarantee (Theorem 2) does not "
                    "apply (the restart term keeps chains well-defined)"
                ),
                severity="info",
            )
        )

    # Featureless nodes: their W columns fall back to uniform.
    features = hin.features_dense()
    n_featureless = int((np.abs(features).sum(axis=1) == 0).sum())
    if n_featureless:
        warnings.append(
            HINWarning(
                code="featureless-nodes",
                message=(
                    f"{n_featureless} node(s) have all-zero features; their "
                    "W columns fall back to the uniform distribution"
                ),
                severity="info",
            )
        )
    return warnings
