"""Subnetwork extraction utilities.

Real HIN archives are often too large to iterate on; these helpers carve
out consistent subnetworks — induced subgraphs over a node subset, and
random node samples that preserve class balance — keeping features,
labels, names and metadata aligned.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.tensor.sptensor import SparseTensor3
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


def induced_subgraph(hin: HIN, nodes: Sequence) -> HIN:
    """The subnetwork induced by ``nodes`` (names or indices).

    Keeps every link whose *both* endpoints are in the subset, all
    relation types (possibly emptied), and the nodes' features/labels.
    Node order follows the order given.
    """
    indices = []
    for node in nodes:
        if isinstance(node, str):
            indices.append(hin.node_index(node))
        else:
            idx = int(node)
            if not 0 <= idx < hin.n_nodes:
                raise ValidationError(
                    f"node index {idx} out of range [0, {hin.n_nodes})"
                )
            indices.append(idx)
    if not indices:
        raise ValidationError("nodes must be non-empty")
    if len(set(indices)) != len(indices):
        raise ValidationError("nodes must be distinct")
    index_array = np.asarray(indices, dtype=np.int64)

    position = np.full(hin.n_nodes, -1, dtype=np.int64)
    position[index_array] = np.arange(index_array.size)

    i, j, k = hin.tensor.coords
    keep = (position[i] >= 0) & (position[j] >= 0)
    tensor = SparseTensor3(
        position[i[keep]],
        position[j[keep]],
        k[keep],
        hin.tensor.values[keep],
        shape=(index_array.size, index_array.size, hin.n_relations),
    )
    features = hin.features
    if sp.issparse(features):
        sub_features = features[index_array]
    else:
        sub_features = np.asarray(features)[index_array]
    return HIN(
        tensor,
        hin.relation_names,
        sub_features,
        hin.label_matrix[index_array],
        hin.label_names,
        node_names=[hin.node_names[idx] for idx in index_array],
        multilabel=hin.multilabel,
        metadata=hin.metadata,
    )


def sample_nodes(hin: HIN, n_nodes: int, *, stratified: bool = True, rng=None) -> HIN:
    """A random induced subnetwork of ``n_nodes`` nodes.

    With ``stratified=True`` (default, single-label HINs) the sample
    preserves the class proportions and covers every class that fits.
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    if n_nodes > hin.n_nodes:
        raise ValidationError(
            f"cannot sample {n_nodes} nodes from a {hin.n_nodes}-node HIN"
        )
    rng = ensure_rng(rng)
    if stratified and not hin.multilabel and hin.labeled_mask.all():
        y = hin.y
        chosen: list[int] = []
        classes = np.unique(y)
        # Proportional allocation with at least one node per class.
        for c in classes:
            members = np.flatnonzero(y == c)
            quota = max(1, int(round(n_nodes * members.size / hin.n_nodes)))
            quota = min(quota, members.size)
            chosen.extend(rng.choice(members, size=quota, replace=False).tolist())
        chosen = chosen[:n_nodes]
        remaining = np.setdiff1d(np.arange(hin.n_nodes), chosen)
        if len(chosen) < n_nodes:
            extra = rng.choice(remaining, size=n_nodes - len(chosen), replace=False)
            chosen.extend(extra.tolist())
        indices = np.asarray(sorted(chosen), dtype=np.int64)
    else:
        indices = np.sort(rng.choice(hin.n_nodes, size=n_nodes, replace=False))
    return induced_subgraph(hin, indices.tolist())
