"""The :class:`HIN` container: adjacency tensor + features + labels + names.

The paper's problem setting (section 3): ``n`` nodes of the target type,
``m`` link types among them, each node carries a feature vector
``f_i in R^d`` and is associated with at least one of ``q`` class labels.
Labels are known for a subset of nodes (the training set); the task is to
predict the rest and rank the link types per class.

Labels are stored canonically as an ``(n, q)`` boolean matrix so the same
container serves single-label (DBLP, Movies, NUS) and multi-label (ACM)
experiments.  A row of all ``False`` means *unknown*.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError, ValidationError
from repro.tensor.sptensor import SparseTensor3


class HIN:
    """An attributed heterogeneous information network over one node type.

    Parameters
    ----------
    tensor:
        The ``(n, n, m)`` adjacency tensor; ``tensor[i, j, k]`` is the
        weight of the link ``j -> i`` through relation ``k``.
    relation_names:
        ``m`` distinct names for the link types.
    features:
        ``(n, d)`` dense array or scipy sparse matrix of node features.
    label_matrix:
        ``(n, q)`` boolean matrix; ``label_matrix[i, c]`` marks node ``i``
        as belonging to class ``c``.  All-``False`` rows are unlabeled.
    label_names:
        ``q`` distinct class names.
    node_names:
        Optional ``n`` distinct node names; defaults to ``"node_<idx>"``.
    multilabel:
        Whether nodes may carry several labels (ACM).  When ``False``,
        rows of ``label_matrix`` must contain at most one ``True``.
    metadata:
        Free-form dict for generator ground truth (e.g. the conference ->
        area map behind Table 2).
    """

    def __init__(
        self,
        tensor: SparseTensor3,
        relation_names: Sequence[str],
        features,
        label_matrix,
        label_names: Sequence[str],
        *,
        node_names: Sequence[str] | None = None,
        multilabel: bool = False,
        metadata: dict | None = None,
    ):
        if not isinstance(tensor, SparseTensor3):
            raise ValidationError(
                f"tensor must be a SparseTensor3, got {type(tensor).__name__}"
            )
        n, _, m = tensor.shape

        relation_names = [str(r) for r in relation_names]
        if len(relation_names) != m:
            raise ShapeError(
                f"expected {m} relation names (tensor has {m} relations), "
                f"got {len(relation_names)}"
            )
        if len(set(relation_names)) != m:
            raise ValidationError("relation names must be distinct")

        if sp.issparse(features):
            features = sp.csr_matrix(features, dtype=float)
            if features.nnz and not np.all(np.isfinite(features.data)):
                raise ValidationError("features contain non-finite values")
        else:
            features = np.asarray(features, dtype=float)
            if features.ndim != 2:
                raise ShapeError(f"features must be 2-D, got shape {features.shape}")
            if features.size and not np.all(np.isfinite(features)):
                raise ValidationError("features contain non-finite values")
        if features.shape[0] != n:
            raise ShapeError(
                f"features has {features.shape[0]} rows, expected {n} (one per node)"
            )

        label_matrix = np.asarray(label_matrix, dtype=bool)
        if label_matrix.ndim != 2 or label_matrix.shape[0] != n:
            raise ShapeError(
                f"label_matrix must be (n, q) = ({n}, q), got {label_matrix.shape}"
            )
        q = label_matrix.shape[1]
        label_names = [str(c) for c in label_names]
        if len(label_names) != q:
            raise ShapeError(
                f"expected {q} label names (label_matrix has {q} columns), "
                f"got {len(label_names)}"
            )
        if len(set(label_names)) != q:
            raise ValidationError("label names must be distinct")
        if not multilabel and np.any(label_matrix.sum(axis=1) > 1):
            raise ValidationError(
                "label_matrix has rows with multiple labels; pass multilabel=True"
            )

        if node_names is None:
            node_names = [f"node_{idx}" for idx in range(n)]
        else:
            node_names = [str(v) for v in node_names]
            if len(node_names) != n:
                raise ShapeError(f"expected {n} node names, got {len(node_names)}")
            if len(set(node_names)) != n:
                raise ValidationError("node names must be distinct")

        self._tensor = tensor
        self._relation_names = tuple(relation_names)
        self._features = features
        self._label_matrix = label_matrix
        self._label_matrix.setflags(write=False)
        self._label_names = tuple(label_names)
        self._node_names = tuple(node_names)
        self._multilabel = bool(multilabel)
        self.metadata = dict(metadata or {})
        self._node_index = {name: idx for idx, name in enumerate(node_names)}
        self._relation_index = {name: idx for idx, name in enumerate(relation_names)}

    # ------------------------------------------------------------------
    # Shape properties
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._tensor.n_nodes

    @property
    def n_relations(self) -> int:
        """Number of link types ``m``."""
        return self._tensor.n_relations

    @property
    def n_labels(self) -> int:
        """Number of classes ``q``."""
        return len(self._label_names)

    @property
    def n_features(self) -> int:
        """Feature dimensionality ``d``."""
        return self._features.shape[1]

    @property
    def multilabel(self) -> bool:
        """Whether nodes may carry several labels."""
        return self._multilabel

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    @property
    def tensor(self) -> SparseTensor3:
        """The adjacency tensor ``A``."""
        return self._tensor

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Names of the ``m`` link types."""
        return self._relation_names

    @property
    def label_names(self) -> tuple[str, ...]:
        """Names of the ``q`` classes."""
        return self._label_names

    @property
    def node_names(self) -> tuple[str, ...]:
        """Names of the ``n`` nodes."""
        return self._node_names

    @property
    def features(self):
        """The ``(n, d)`` feature matrix (dense ndarray or CSR)."""
        return self._features

    @property
    def label_matrix(self) -> np.ndarray:
        """The ``(n, q)`` boolean label matrix (read-only)."""
        return self._label_matrix

    def features_dense(self) -> np.ndarray:
        """Return the feature matrix as a dense array."""
        if sp.issparse(self._features):
            return self._features.toarray()
        return np.asarray(self._features)

    # ------------------------------------------------------------------
    # Label views
    # ------------------------------------------------------------------
    @property
    def labeled_mask(self) -> np.ndarray:
        """Boolean mask of nodes carrying at least one label."""
        return self._label_matrix.any(axis=1)

    @property
    def y(self) -> np.ndarray:
        """Single-label view: class index per node, ``-1`` for unlabeled.

        Raises
        ------
        ValidationError
            If the HIN is multi-label.
        """
        if self._multilabel:
            raise ValidationError(
                "y is only defined for single-label HINs; use label_matrix"
            )
        result = np.full(self.n_nodes, -1, dtype=np.int64)
        rows, cols = np.nonzero(self._label_matrix)
        result[rows] = cols
        return result

    def node_index(self, name: str) -> int:
        """Resolve a node name to its index."""
        try:
            return self._node_index[name]
        except KeyError:
            raise ValidationError(f"unknown node name: {name!r}") from None

    def relation_index(self, name: str) -> int:
        """Resolve a relation name to its index."""
        try:
            return self._relation_index[name]
        except KeyError:
            raise ValidationError(f"unknown relation name: {name!r}") from None

    def label_index(self, name: str) -> int:
        """Resolve a class name to its index."""
        try:
            return self._label_names.index(name)
        except ValueError:
            raise ValidationError(f"unknown label name: {name!r}") from None

    # ------------------------------------------------------------------
    # Derived HINs
    # ------------------------------------------------------------------
    def with_labels(self, label_matrix: np.ndarray) -> "HIN":
        """Return a copy of this HIN with a different label matrix.

        Used by the experiment harness to mask test labels: structure,
        features and names are shared, only supervision changes.
        """
        return HIN(
            self._tensor,
            self._relation_names,
            self._features,
            label_matrix,
            self._label_names,
            node_names=self._node_names,
            multilabel=self._multilabel,
            metadata=self.metadata,
        )

    def masked(self, train_mask: np.ndarray) -> "HIN":
        """Return a copy keeping labels only where ``train_mask`` is True."""
        train_mask = np.asarray(train_mask, dtype=bool)
        if train_mask.shape != (self.n_nodes,):
            raise ShapeError(
                f"train_mask must have shape ({self.n_nodes},), got {train_mask.shape}"
            )
        masked = self._label_matrix.copy()
        masked[~train_mask] = False
        return self.with_labels(masked)

    def with_relations(self, relation_indices: Sequence[int], names=None) -> "HIN":
        """Return a copy restricted to a subset of link types.

        This is the *link selection* operation behind section 6.3
        (Tagset1 vs Tagset2 on NUS).
        """
        indices = [int(k) for k in relation_indices]
        for k in indices:
            if not 0 <= k < self.n_relations:
                raise ValidationError(
                    f"relation index {k} out of range [0, {self.n_relations})"
                )
        if len(set(indices)) != len(indices):
            raise ValidationError("relation indices must be distinct")
        slices = [self._tensor.relation_slice(k) for k in indices]
        tensor = SparseTensor3.from_slices(slices, n=self.n_nodes)
        if names is None:
            names = [self._relation_names[k] for k in indices]
        return HIN(
            tensor,
            names,
            self._features,
            self._label_matrix,
            self._label_names,
            node_names=self._node_names,
            multilabel=self._multilabel,
            metadata=self.metadata,
        )

    def __repr__(self) -> str:
        kind = "multi-label" if self._multilabel else "single-label"
        return (
            f"HIN(n_nodes={self.n_nodes}, n_relations={self.n_relations}, "
            f"n_labels={self.n_labels}, n_features={self.n_features}, {kind}, "
            f"nnz={self._tensor.nnz})"
        )
