"""Persistence for :class:`~repro.hin.graph.HIN` objects.

A HIN round-trips through a single ``.npz`` archive: tensor coordinates,
feature matrix (dense or CSR components), boolean label matrix, and the
name/metadata payload serialised as JSON inside the archive.  No pickling
is involved, so archives are safe to share and stable across library
versions.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.tensor.sptensor import SparseTensor3

_FORMAT_VERSION = 1


def save_hin(hin: HIN, path) -> Path:
    """Serialise ``hin`` to ``path`` (``.npz``); returns the resolved path."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    i, j, k = hin.tensor.coords
    header = {
        "format_version": _FORMAT_VERSION,
        "n_nodes": hin.n_nodes,
        "n_relations": hin.n_relations,
        "relation_names": list(hin.relation_names),
        "label_names": list(hin.label_names),
        "node_names": list(hin.node_names),
        "multilabel": hin.multilabel,
        "metadata": jsonable_metadata(hin.metadata),
        "features_sparse": bool(sp.issparse(hin.features)),
    }
    arrays = {
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        "tensor_i": i,
        "tensor_j": j,
        "tensor_k": k,
        "tensor_values": hin.tensor.values,
        "label_matrix": hin.label_matrix,
    }
    if sp.issparse(hin.features):
        feats = sp.csr_matrix(hin.features)
        arrays["features_data"] = feats.data
        arrays["features_indices"] = feats.indices
        arrays["features_indptr"] = feats.indptr
        arrays["features_shape"] = np.asarray(feats.shape)
    else:
        arrays["features"] = np.asarray(hin.features)
    np.savez_compressed(path, **arrays)
    return path


def load_hin(path) -> HIN:
    """Load a HIN previously written by :func:`save_hin`."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no such HIN archive: {path}")
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValidationError(
                f"unsupported HIN archive version: {header.get('format_version')}"
            )
        n = int(header["n_nodes"])
        m = int(header["n_relations"])
        tensor = SparseTensor3(
            archive["tensor_i"],
            archive["tensor_j"],
            archive["tensor_k"],
            archive["tensor_values"],
            shape=(n, n, m),
        )
        if header["features_sparse"]:
            features = sp.csr_matrix(
                (
                    archive["features_data"],
                    archive["features_indices"],
                    archive["features_indptr"],
                ),
                shape=tuple(archive["features_shape"]),
            )
        else:
            features = archive["features"]
        return HIN(
            tensor,
            header["relation_names"],
            features,
            archive["label_matrix"],
            header["label_names"],
            node_names=header["node_names"],
            multilabel=bool(header["multilabel"]),
            metadata=header["metadata"],
        )


def jsonable_metadata(value):
    """Best-effort conversion of metadata values to JSON-safe types.

    Shared by the ``.npz`` archive header here and the out-of-core
    :class:`repro.ooc.GraphStore` manifest, so both persistence formats
    accept exactly the same metadata payloads.
    """
    if isinstance(value, dict):
        return {str(key): jsonable_metadata(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable_metadata(val) for val in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ValidationError(
        f"HIN metadata value of type {type(value).__name__} is not JSON-serialisable"
    )
