"""Meta-path composition of link types.

Kong et al. [3] (the Hcc baseline) view meta-paths — chains of link types
like *author -conference- author -citation- author* — as derived relations.
Because our HIN projects everything onto one node type, a meta-path here is
a sequence of existing link types whose adjacency matrices are multiplied
(boolean/weighted chaining of hops).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.tensor.sptensor import SparseTensor3


def compose_relations(
    hin: HIN,
    path: Sequence[str | int],
    *,
    binary: bool = True,
    drop_self_loops: bool = True,
) -> sp.csr_matrix:
    """Compose the link types in ``path`` into one derived adjacency matrix.

    Parameters
    ----------
    hin:
        The source network.
    path:
        Relation names or indices, applied left to right: the result links
        ``u -> v`` when there is a chain ``u -> ... -> v`` stepping through
        the listed relations in order.
    binary:
        Clip path-count weights to 0/1 (default, matching the unweighted
        tensor convention); set ``False`` to keep path counts.
    drop_self_loops:
        Remove the diagonal (a node trivially reaches itself through any
        symmetric relation pair).
    """
    if not path:
        raise ValidationError("meta-path must contain at least one relation")
    indices = [
        hin.relation_index(p) if isinstance(p, str) else int(p) for p in path
    ]
    for k in indices:
        if not 0 <= k < hin.n_relations:
            raise ValidationError(
                f"relation index {k} out of range [0, {hin.n_relations})"
            )
    result = hin.tensor.relation_slice(indices[0])
    for k in indices[1:]:
        result = hin.tensor.relation_slice(k) @ result
    result = sp.csr_matrix(result)
    if drop_self_loops:
        result.setdiag(0)
        result.eliminate_zeros()
    if binary:
        result.data = np.ones_like(result.data)
    return result


def with_metapath_relations(
    hin: HIN,
    paths: dict[str, Sequence[str | int]],
    *,
    keep_original: bool = True,
    binary: bool = True,
) -> HIN:
    """Return a HIN extended with derived meta-path relations.

    Parameters
    ----------
    paths:
        Maps new relation names to meta-paths (see
        :func:`compose_relations`).
    keep_original:
        Keep the existing link types alongside the derived ones.
    """
    for name in paths:
        if keep_original and name in hin.relation_names:
            raise ValidationError(
                f"derived relation name {name!r} collides with an existing one"
            )
    slices: list[sp.csr_matrix] = []
    names: list[str] = []
    if keep_original:
        slices.extend(hin.tensor.relation_slices())
        names.extend(hin.relation_names)
    for name, path in paths.items():
        slices.append(compose_relations(hin, path, binary=binary))
        names.append(name)
    tensor = SparseTensor3.from_slices(slices, n=hin.n_nodes)
    return HIN(
        tensor,
        names,
        hin.features,
        hin.label_matrix,
        hin.label_names,
        node_names=hin.node_names,
        multilabel=hin.multilabel,
        metadata=hin.metadata,
    )
