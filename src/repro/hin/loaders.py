"""Plain-text loaders for real HIN datasets.

The calibrated generators stand in for the paper's datasets in this
environment, but a downstream user with the actual archives (or any HIN
in flat files) can load them directly:

* **links file** (TSV/CSV): ``source  target  relation  [weight]``
  — one line per link; relation names are free-form strings.
* **labels file** (TSV/CSV): ``node  label[,label...]``
  — nodes may be missing (unlabeled) and may list several labels.
* **features file**: either a dense ``.npy`` / text matrix aligned with
  the node order, or a sparse TSV of ``node  dim  value`` triplets.

:func:`load_hin_from_files` wires the three together; the lower-level
parsers are exposed for custom pipelines.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.errors import DatasetError
from repro.hin.builder import HINBuilder
from repro.hin.graph import HIN


def _sniff_delimiter(path: Path) -> str:
    """Choose tab or comma from the first non-comment line."""
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if line.strip() and not line.startswith("#"):
                return "\t" if "\t" in line else ","
    raise DatasetError(f"{path} contains no data lines")


def _rows(path: Path):
    """Yield parsed rows, skipping blanks and ``#`` comments."""
    delimiter = _sniff_delimiter(path)
    with open(path, encoding="utf-8", newline="") as handle:
        for row in csv.reader(handle, delimiter=delimiter):
            cells = [cell.strip() for cell in row]
            if not cells or not any(cells) or cells[0].startswith("#"):
                continue
            yield cells


def parse_links_file(path) -> list[tuple[str, str, str, float]]:
    """Parse ``source target relation [weight]`` rows."""
    path = Path(path)
    links = []
    for lineno, cells in enumerate(_rows(path), start=1):
        if len(cells) < 3:
            raise DatasetError(
                f"{path}:{lineno}: expected 'source target relation [weight]', "
                f"got {len(cells)} fields"
            )
        weight = 1.0
        if len(cells) >= 4 and cells[3]:
            try:
                weight = float(cells[3])
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{lineno}: weight {cells[3]!r} is not a number"
                ) from exc
        links.append((cells[0], cells[1], cells[2], weight))
    if not links:
        raise DatasetError(f"{path}: no links found")
    return links


def parse_labels_file(path) -> dict[str, list[str]]:
    """Parse ``node label[,label...]`` rows into node -> label names."""
    path = Path(path)
    labels: dict[str, list[str]] = {}
    for lineno, cells in enumerate(_rows(path), start=1):
        if len(cells) < 2:
            raise DatasetError(
                f"{path}:{lineno}: expected 'node label[,label...]'"
            )
        node = cells[0]
        if node in labels:
            raise DatasetError(f"{path}:{lineno}: duplicate node {node!r}")
        names = [part.strip() for part in ",".join(cells[1:]).split(",")]
        labels[node] = [name for name in names if name]
    if not labels:
        raise DatasetError(f"{path}: no labels found")
    return labels


def parse_sparse_features_file(path) -> dict[str, dict[int, float]]:
    """Parse ``node dim value`` triplets into node -> {dim: value}."""
    path = Path(path)
    features: dict[str, dict[int, float]] = {}
    for lineno, cells in enumerate(_rows(path), start=1):
        if len(cells) != 3:
            raise DatasetError(f"{path}:{lineno}: expected 'node dim value'")
        node, dim_text, value_text = cells
        try:
            dim = int(dim_text)
            value = float(value_text)
        except ValueError as exc:
            raise DatasetError(
                f"{path}:{lineno}: bad dim/value {dim_text!r}/{value_text!r}"
            ) from exc
        if dim < 0:
            raise DatasetError(f"{path}:{lineno}: negative feature dim {dim}")
        features.setdefault(node, {})[dim] = value
    if not features:
        raise DatasetError(f"{path}: no features found")
    return features


def load_hin_from_files(
    links_path,
    labels_path,
    features_path=None,
    *,
    label_names=None,
    multilabel: bool = False,
    directed_relations: set[str] | frozenset[str] = frozenset(),
    n_features: int | None = None,
) -> HIN:
    """Assemble a HIN from flat files.

    Parameters
    ----------
    links_path:
        TSV/CSV of ``source target relation [weight]``.
    labels_path:
        TSV/CSV of ``node label[,label...]``; nodes appearing only in
        the links file become unlabeled nodes.
    features_path:
        Optional sparse-triplet TSV (``node dim value``).  When omitted,
        every node gets a single constant feature (structure-only HIN).
    label_names:
        Explicit label space; inferred (sorted) from the labels file
        when omitted.
    multilabel:
        Allow several labels per node.
    directed_relations:
        Relation names stored one-way (e.g. ``{"citation"}``); all other
        relations are symmetrised.
    n_features:
        Feature dimensionality; inferred as ``max dim + 1`` when omitted.
    """
    links = parse_links_file(links_path)
    labels = parse_labels_file(labels_path)
    features = (
        parse_sparse_features_file(features_path)
        if features_path is not None
        else None
    )

    node_names = sorted(
        {name for src, dst, _, _ in links for name in (src, dst)}
        | set(labels)
        | (set(features) if features else set())
    )
    if label_names is None:
        label_names = sorted({name for names in labels.values() for name in names})
    if features is not None and n_features is None:
        n_features = 1 + max(dim for dims in features.values() for dim in dims)
    if features is None:
        n_features = 1

    builder = HINBuilder(label_names, multilabel=multilabel)
    for node in node_names:
        vector = np.zeros(n_features)
        if features is None:
            vector[0] = 1.0
        else:
            for dim, value in features.get(node, {}).items():
                if dim >= n_features:
                    raise DatasetError(
                        f"feature dim {dim} of node {node!r} exceeds "
                        f"n_features={n_features}"
                    )
                vector[dim] = value
        builder.add_node(node, features=vector, labels=labels.get(node, ()))

    directed_relations = {str(r) for r in directed_relations}
    for source, target, relation, weight in links:
        builder.add_link(
            source,
            target,
            relation,
            weight=weight,
            directed=relation in directed_relations,
        )
    return builder.build(metadata={"source": str(Path(links_path))})
