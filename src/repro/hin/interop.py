"""Interoperability between :class:`HIN` and networkx multigraphs.

Downstream users usually already hold their network in networkx.  A HIN
maps naturally onto a :class:`networkx.MultiDiGraph`: one node per HIN
node (attributes: ``features``, ``labels``), one edge per stored tensor
entry (attributes: ``relation``, ``weight``).  The converse direction
builds a HIN from any multigraph whose edges carry a ``relation`` key.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.errors import ValidationError
from repro.hin.builder import HINBuilder
from repro.hin.graph import HIN

#: Edge attribute naming the link type.
RELATION_KEY = "relation"


def to_networkx(hin: HIN) -> nx.MultiDiGraph:
    """Convert a HIN to a :class:`networkx.MultiDiGraph`.

    Node attributes: ``features`` (1-D ndarray), ``labels`` (tuple of
    label names).  Edge attributes: ``relation`` (name), ``weight``.
    Every stored tensor entry becomes one directed edge ``j -> i`` (the
    walk direction), so an undirected HIN link appears as two edges.
    """
    graph = nx.MultiDiGraph()
    graph.graph["label_names"] = list(hin.label_names)
    graph.graph["relation_names"] = list(hin.relation_names)
    graph.graph["multilabel"] = hin.multilabel
    graph.graph.update(hin.metadata)
    features = hin.features_dense()
    for idx, name in enumerate(hin.node_names):
        labels = tuple(
            hin.label_names[c] for c in np.flatnonzero(hin.label_matrix[idx])
        )
        graph.add_node(name, features=features[idx].copy(), labels=labels)
    i, j, k = hin.tensor.coords
    values = hin.tensor.values
    for target, source, rel, weight in zip(i, j, k, values):
        graph.add_edge(
            hin.node_names[source],
            hin.node_names[target],
            **{RELATION_KEY: hin.relation_names[rel], "weight": float(weight)},
        )
    return graph


def from_networkx(
    graph: nx.Graph,
    *,
    label_names=None,
    multilabel: bool = False,
    feature_key: str = "features",
    label_key: str = "labels",
) -> HIN:
    """Build a HIN from a networkx (multi)graph.

    Parameters
    ----------
    graph:
        Any networkx graph; edges must carry a ``relation`` attribute.
        Undirected graphs contribute both directions per edge; directed
        graphs contribute the stored direction only.
    label_names:
        The class-label space; inferred from graph/node attributes when
        omitted.
    feature_key, label_key:
        Node-attribute names holding the feature vector and the label
        name(s).  A node may carry a single label name or a sequence.

    Raises
    ------
    ValidationError
        On missing relation attributes, missing/ragged features, or
        labels outside the label space.
    """
    if graph.number_of_nodes() == 0:
        raise ValidationError("cannot build a HIN from an empty graph")

    if label_names is None:
        label_names = graph.graph.get("label_names")
    if label_names is None:
        # Infer from node attributes, sorted for determinism.
        seen = set()
        for _, data in graph.nodes(data=True):
            seen.update(_as_label_tuple(data.get(label_key)))
        label_names = sorted(seen)
    if not label_names:
        raise ValidationError(
            "no label space: pass label_names or label nodes via the "
            f"{label_key!r} attribute"
        )

    builder = HINBuilder(label_names, multilabel=multilabel)
    # Preserve a round-tripped HIN's relation order when available.
    for relation in graph.graph.get("relation_names", ()):
        builder.add_relation(str(relation))
    for node, data in graph.nodes(data=True):
        if feature_key not in data:
            raise ValidationError(f"node {node!r} has no {feature_key!r} attribute")
        builder.add_node(
            str(node),
            features=np.asarray(data[feature_key], dtype=float),
            labels=_as_label_tuple(data.get(label_key)),
        )

    directed = graph.is_directed()
    for source, target, data in graph.edges(data=True):
        relation = data.get(RELATION_KEY)
        if relation is None:
            raise ValidationError(
                f"edge ({source!r}, {target!r}) has no {RELATION_KEY!r} attribute"
            )
        builder.add_link(
            str(source),
            str(target),
            str(relation),
            weight=float(data.get("weight", 1.0)),
            directed=directed,
        )
    metadata = {
        key: value
        for key, value in graph.graph.items()
        if key not in ("label_names", "relation_names", "multilabel")
    }
    return builder.build(metadata=metadata or None)


def _as_label_tuple(value) -> tuple[str, ...]:
    """Normalise a node's label attribute to a tuple of names."""
    if value is None:
        return ()
    if isinstance(value, str):
        return (value,)
    return tuple(str(v) for v in value)
