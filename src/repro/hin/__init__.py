"""Heterogeneous information network (HIN) substrate.

A :class:`~repro.hin.graph.HIN` couples the adjacency tensor of
:mod:`repro.tensor` with node features, a label space and human-readable
node/relation names.  :class:`~repro.hin.builder.HINBuilder` constructs one
incrementally from named nodes and typed links;
:mod:`~repro.hin.io` persists HINs to ``.npz``;
:mod:`~repro.hin.metapath` composes link types into meta-path relations
(used by the Hcc baseline); :mod:`~repro.hin.stats` computes the summary
statistics (density, homophily) that the dataset generators are calibrated
against.
"""

from repro.hin.builder import HINBuilder
from repro.hin.graph import HIN
from repro.hin.interop import from_networkx, to_networkx
from repro.hin.io import load_hin, save_hin
from repro.hin.loaders import load_hin_from_files
from repro.hin.metapath import compose_relations, with_metapath_relations
from repro.hin.sampling import induced_subgraph, sample_nodes
from repro.hin.stats import hin_summary, relation_homophily
from repro.hin.validate import HINWarning, check_hin

__all__ = [
    "HIN",
    "HINBuilder",
    "load_hin",
    "save_hin",
    "load_hin_from_files",
    "to_networkx",
    "from_networkx",
    "compose_relations",
    "induced_subgraph",
    "sample_nodes",
    "with_metapath_relations",
    "hin_summary",
    "relation_homophily",
    "check_hin",
    "HINWarning",
]
