"""Incremental construction of :class:`~repro.hin.graph.HIN` objects.

The builder accepts nodes and links by *name*, accumulates them, and emits
an immutable :class:`HIN` with a consistent index space.  All the dataset
generators and the file loaders go through it, so index-bookkeeping bugs
live (and are tested) in exactly one place.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.hin.graph import HIN
from repro.tensor.sptensor import SparseTensor3


class HINBuilder:
    """Accumulate named nodes / typed links and build a :class:`HIN`.

    Parameters
    ----------
    label_names:
        The full class-label space, fixed up front.
    multilabel:
        Whether nodes may carry several labels.

    Examples
    --------
    >>> builder = HINBuilder(label_names=["DM", "CV"])
    >>> builder.add_node("p1", features=[1.0, 0.0], labels=["DM"])
    >>> builder.add_node("p2", features=[0.0, 1.0], labels=["CV"])
    >>> builder.add_link("p1", "p2", "co-author")
    >>> hin = builder.build()
    >>> hin.n_nodes, hin.n_relations
    (2, 1)
    """

    def __init__(self, label_names: Sequence[str], *, multilabel: bool = False):
        label_names = [str(c) for c in label_names]
        if not label_names:
            raise ValidationError("label_names must be non-empty")
        if len(set(label_names)) != len(label_names):
            raise ValidationError("label names must be distinct")
        self._label_names = label_names
        self._label_index = {c: idx for idx, c in enumerate(label_names)}
        self._multilabel = bool(multilabel)
        self._node_names: list[str] = []
        self._node_index: dict[str, int] = {}
        self._features: list[np.ndarray] = []
        self._labels: list[set[int]] = []
        self._relation_names: list[str] = []
        self._relation_index: dict[str, int] = {}
        self._links: list[tuple[int, int, int, float]] = []
        self._n_features: int | None = None

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, name: str, *, features, labels: Sequence[str] = ()) -> int:
        """Register a node and return its index.

        Parameters
        ----------
        name:
            Unique node name.
        features:
            The node's feature vector; all nodes must share one length.
        labels:
            Zero or more class names from the builder's label space.
        """
        name = str(name)
        if name in self._node_index:
            raise ValidationError(f"duplicate node name: {name!r}")
        feats = np.asarray(features, dtype=float)
        if feats.ndim != 1:
            raise ShapeError(
                f"features for node {name!r} must be 1-D, got shape {feats.shape}"
            )
        if self._n_features is None:
            self._n_features = feats.size
        elif feats.size != self._n_features:
            raise ShapeError(
                f"node {name!r} has {feats.size} features, expected {self._n_features}"
            )
        label_set = set()
        for label in labels:
            if label not in self._label_index:
                raise ValidationError(
                    f"unknown label {label!r} for node {name!r}; "
                    f"known labels: {self._label_names}"
                )
            label_set.add(self._label_index[label])
        if not self._multilabel and len(label_set) > 1:
            raise ValidationError(
                f"node {name!r} has {len(label_set)} labels in a single-label HIN"
            )
        idx = len(self._node_names)
        self._node_names.append(name)
        self._node_index[name] = idx
        self._features.append(feats)
        self._labels.append(label_set)
        return idx

    def has_node(self, name: str) -> bool:
        """Return whether a node with ``name`` was added."""
        return str(name) in self._node_index

    # ------------------------------------------------------------------
    # Relations / links
    # ------------------------------------------------------------------
    def add_relation(self, name: str) -> int:
        """Register a link type (idempotent) and return its index."""
        name = str(name)
        if name not in self._relation_index:
            self._relation_index[name] = len(self._relation_names)
            self._relation_names.append(name)
        return self._relation_index[name]

    def add_link(
        self,
        source: str,
        target: str,
        relation: str,
        *,
        weight: float = 1.0,
        directed: bool = False,
    ) -> None:
        """Add a link ``source -> target`` of the given relation type.

        Undirected links (the default — co-author, same-conference, shared
        tag, ...) are stored as two converse directed links, following the
        paper's convention for the ACM dataset.  The tensor entry written
        for a directed link ``source -> target`` is ``A[target, source, k]``
        so that the Eq. 1 random walk steps *along* the link.

        An undirected *self-loop* (``source == target``) is its own
        converse, so it is stored once — appending both orientations
        would silently double its weight in ``A``.
        """
        if weight <= 0 or not np.isfinite(weight):
            raise ValidationError(f"link weight must be positive, got {weight}")
        try:
            src = self._node_index[str(source)]
        except KeyError:
            raise ValidationError(f"unknown source node: {source!r}") from None
        try:
            dst = self._node_index[str(target)]
        except KeyError:
            raise ValidationError(f"unknown target node: {target!r}") from None
        k = self.add_relation(relation)
        self._links.append((dst, src, k, float(weight)))
        if not directed and src != dst:
            self._links.append((src, dst, k, float(weight)))

    def link_group(self, members: Sequence[str], relation: str, *, weight: float = 1.0):
        """Pairwise-link every pair in ``members`` through ``relation``.

        This is how "two authors published at the same conference" /
        "two movies share a director" relations are materialised.
        Repeated names in ``members`` are ignored (first occurrence
        wins), so each distinct pair is linked exactly once.
        """
        members = list(dict.fromkeys(str(v) for v in members))
        self.add_relation(relation)
        for a_pos, a in enumerate(members):
            for b in members[a_pos + 1:]:
                if a != b:
                    self.add_link(a, b, relation, weight=weight)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes added so far."""
        return len(self._node_names)

    @property
    def n_relations(self) -> int:
        """Number of relation types registered so far."""
        return len(self._relation_names)

    def build(self, *, metadata: dict | None = None) -> HIN:
        """Emit the immutable :class:`HIN`.

        Raises
        ------
        ValidationError
            If no nodes or no relations were added.
        """
        n = len(self._node_names)
        if n == 0:
            raise ValidationError("cannot build a HIN with no nodes")
        m = len(self._relation_names)
        if m == 0:
            raise ValidationError("cannot build a HIN with no relations")

        if self._links:
            i, j, k, w = (np.asarray(col) for col in zip(*self._links))
        else:
            i = j = k = np.empty(0, dtype=np.int64)
            w = np.empty(0, dtype=float)
        tensor = SparseTensor3(i, j, k, w, shape=(n, n, m))

        features = np.vstack(self._features) if self._features else np.zeros((n, 0))
        label_matrix = np.zeros((n, len(self._label_names)), dtype=bool)
        for idx, label_set in enumerate(self._labels):
            for c in label_set:
                label_matrix[idx, c] = True

        return HIN(
            tensor,
            self._relation_names,
            features,
            label_matrix,
            self._label_names,
            node_names=self._node_names,
            multilabel=self._multilabel,
            metadata=metadata,
        )
