"""Summary statistics of a HIN.

Two uses: (a) the dataset generators in :mod:`repro.datasets` are
*calibrated* against these statistics (per-relation density and homophily
drive which method wins where — see DESIGN.md), and (b) section 6.3 of the
paper selects link types by exactly these quantities (homophily for
Tagset1, frequency for Tagset2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hin.graph import HIN


@dataclass(frozen=True)
class RelationStats:
    """Per-link-type structure statistics."""

    name: str
    #: Number of directed link entries stored for this relation.
    n_links: int
    #: n_links / (n * (n - 1)): fraction of possible directed pairs linked.
    density: float
    #: Fraction of links whose endpoints share at least one label
    #: (computed over links between two *labeled* nodes; NaN if none).
    homophily: float
    #: Number of distinct nodes incident to this relation.
    n_active_nodes: int


@dataclass(frozen=True)
class HINSummary:
    """Whole-network summary statistics."""

    n_nodes: int
    n_relations: int
    n_labels: int
    n_features: int
    n_links: int
    n_labeled: int
    multilabel: bool
    relations: list[RelationStats] = field(default_factory=list)

    def __str__(self) -> str:
        lines = [
            f"HIN: {self.n_nodes} nodes, {self.n_relations} relations, "
            f"{self.n_labels} labels, {self.n_features} features, "
            f"{self.n_links} links, {self.n_labeled} labeled"
            + (" (multi-label)" if self.multilabel else ""),
        ]
        for rel in self.relations:
            homo = "n/a" if np.isnan(rel.homophily) else f"{rel.homophily:.3f}"
            lines.append(
                f"  {rel.name}: links={rel.n_links} density={rel.density:.2e} "
                f"homophily={homo} active_nodes={rel.n_active_nodes}"
            )
        return "\n".join(lines)


def relation_homophily(hin: HIN, relation: int | str) -> float:
    """Fraction of a relation's links joining same-labeled nodes.

    Only links whose both endpoints carry labels count; returns NaN when
    there are none.  For multi-label HINs "same label" means the label
    sets intersect.
    """
    k = hin.relation_index(relation) if isinstance(relation, str) else int(relation)
    i, j, ks = hin.tensor.coords
    mask = ks == k
    src, dst = j[mask], i[mask]
    labels = hin.label_matrix
    labeled = labels.any(axis=1)
    both = labeled[src] & labeled[dst]
    if not np.any(both):
        return float("nan")
    shared = (labels[src[both]] & labels[dst[both]]).any(axis=1)
    return float(shared.mean())


def hin_summary(hin: HIN) -> HINSummary:
    """Compute the full :class:`HINSummary` of a network."""
    i, j, ks = hin.tensor.coords
    n = hin.n_nodes
    possible = max(n * (n - 1), 1)
    relations = []
    for k, name in enumerate(hin.relation_names):
        mask = ks == k
        n_links = int(mask.sum())
        active = np.union1d(i[mask], j[mask]).size
        relations.append(
            RelationStats(
                name=name,
                n_links=n_links,
                density=n_links / possible,
                homophily=relation_homophily(hin, k),
                n_active_nodes=int(active),
            )
        )
    return HINSummary(
        n_nodes=n,
        n_relations=hin.n_relations,
        n_labels=hin.n_labels,
        n_features=hin.n_features,
        n_links=hin.tensor.nnz,
        n_labeled=int(hin.labeled_mask.sum()),
        multilabel=hin.multilabel,
        relations=relations,
    )
