"""The feature-based transition matrix ``W`` (section 4.2, Eq. 9).

``C[i, j] = cos(f_i, f_j)`` is the cosine similarity between node feature
vectors; ``W`` column-normalises ``C`` so each column is a probability
distribution over nodes.  The T-Mark update mixes ``W x`` into the walk
with weight ``beta = gamma * (1 - alpha)``.

Practical details the paper leaves implicit, resolved here:

* negative similarities (possible with signed features) are clipped to
  zero — transition probabilities cannot be negative;
* a node with a zero feature vector has an undefined cosine; its
  similarities are zero and its *column* falls back to the uniform
  distribution, mirroring the dangling convention of Eq. 1;
* dense ``C`` is O(n^2) memory; ``top_k`` keeps only the strongest ``k``
  similarities per column (plus the diagonal) for large networks — an
  ablation bench quantifies the accuracy cost.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.utils.validation import check_positive_int


def cosine_similarity_matrix(features, *, clip_negative: bool = True) -> np.ndarray:
    """Dense pairwise cosine similarity ``C`` of node features.

    Rows with zero norm yield zero similarity against everything
    (including themselves).
    """
    if sp.issparse(features):
        feats = sp.csr_matrix(features, dtype=float)
        norms = np.sqrt(np.asarray(feats.multiply(feats).sum(axis=1)).ravel())
        safe = np.where(norms > 0, norms, 1.0)
        normalized = sp.diags(1.0 / safe) @ feats
        sims = (normalized @ normalized.T).toarray()
    else:
        feats = np.asarray(features, dtype=float)
        if feats.ndim != 2:
            raise ValidationError(f"features must be 2-D, got shape {feats.shape}")
        norms = np.linalg.norm(feats, axis=1)
        safe = np.where(norms > 0, norms, 1.0)
        normalized = feats / safe[:, None]
        # einsum, not GEMM: a fixed per-element summation order keeps
        # these values bit-consistent with the chunked panels of
        # topk_cosine_transition_matrix, so top-k ties resolve the same
        # way on both paths.
        sims = np.einsum("nd,cd->nc", normalized, normalized)
    zero = norms == 0
    if np.any(zero):
        sims[zero, :] = 0.0
        sims[:, zero] = 0.0
    if clip_negative:
        np.clip(sims, 0.0, None, out=sims)
    return sims


def rbf_similarity_matrix(features, *, bandwidth: float | None = None) -> np.ndarray:
    """Gaussian (RBF) similarity ``exp(-||f_i - f_j||^2 / (2 sigma^2))``.

    ``bandwidth`` (sigma) defaults to the median pairwise distance —
    the standard median heuristic.  One of the metric-learning style
    alternatives section 4.2 mentions for the node-similarity graph.
    """
    feats = features.toarray() if sp.issparse(features) else np.asarray(features, float)
    if feats.ndim != 2:
        raise ValidationError(f"features must be 2-D, got shape {feats.shape}")
    squared_norms = (feats**2).sum(axis=1)
    distances_sq = squared_norms[:, None] + squared_norms[None, :] - 2 * feats @ feats.T
    np.clip(distances_sq, 0.0, None, out=distances_sq)
    if bandwidth is None:
        off_diagonal = distances_sq[~np.eye(len(feats), dtype=bool)]
        median_sq = float(np.median(off_diagonal)) if off_diagonal.size else 1.0
        bandwidth = np.sqrt(median_sq) if median_sq > 0 else 1.0
    elif bandwidth <= 0:
        raise ValidationError(f"bandwidth must be positive, got {bandwidth}")
    return np.exp(-distances_sq / (2.0 * bandwidth**2))


def jaccard_similarity_matrix(features) -> np.ndarray:
    """Generalised Jaccard similarity ``sum min / sum max`` of count rows.

    Natural for bag-of-words features; requires non-negative entries.
    Two all-zero rows have similarity 0 (unknown, like the cosine case).
    """
    feats = features.toarray() if sp.issparse(features) else np.asarray(features, float)
    if feats.ndim != 2:
        raise ValidationError(f"features must be 2-D, got shape {feats.shape}")
    if feats.size and feats.min() < 0:
        raise ValidationError("jaccard similarity requires non-negative features")
    n = feats.shape[0]
    # sum(min(a, b)) + sum(max(a, b)) == sum(a) + sum(b), so only the
    # min-sums need an explicit pass; computed in row blocks to bound
    # the (n, block, d) broadcast at ~8 MB.
    row_sums = feats.sum(axis=1)
    sims = np.zeros((n, n))
    block = max(1, int(1e6 / max(feats.shape[1], 1)))
    for start in range(0, n, block):
        stop = min(start + block, n)
        min_sums = np.minimum(feats[None, start:stop, :], feats[:, None, :]).sum(axis=2)
        max_sums = row_sums[:, None] + row_sums[None, start:stop] - min_sums
        with np.errstate(invalid="ignore", divide="ignore"):
            sims[:, start:stop] = np.where(
                max_sums > 0, min_sums / np.where(max_sums > 0, max_sums, 1.0), 0.0
            )
    return sims


#: Similarity functions selectable in :func:`feature_transition_matrix`.
SIMILARITY_METRICS = ("cosine", "rbf", "jaccard")


def normalise_similarity_columns(sims: np.ndarray) -> np.ndarray:
    """The Eq. 9 tail: column-normalise ``sims``, zero columns uniform.

    Mutates ``sims`` in place (zero columns are overwritten with ones)
    and returns the normalised matrix.  Shared by
    :func:`feature_transition_matrix` and the streaming ``W`` patcher —
    one code path is what keeps the patched matrix bit-identical to a
    rebuild given the same similarity values.
    """
    col_sums = sims.sum(axis=0)
    zero_cols = col_sums == 0
    if np.any(zero_cols):
        # Featureless nodes: uniform column, as with dangling fibres.
        sims[:, zero_cols] = 1.0
        col_sums = sims.sum(axis=0)
    return sims / col_sums[None, :]


def topk_cosine_transition_matrix(
    features, top_k: int, *, chunk_size: int = 512
) -> sp.csr_matrix:
    """Chunked top-k cosine ``W`` without the dense ``n x n`` similarity.

    Equivalent to ``feature_transition_matrix(features, top_k=top_k)``
    but computes similarities in column blocks of ``chunk_size``, so peak
    memory is ``O(n * chunk_size)`` instead of ``O(n^2)`` — the path for
    networks with tens of thousands of nodes.

    The output is bit-identical for every valid ``chunk_size`` (a
    property test pins ``chunk_size`` in ``{1, 7, 512, n}``): each
    column's top-k selection and values depend only on that column's
    similarity panel, and similarity panels are reduced with a fixed
    per-element summation order (``np.einsum`` rather than a BLAS GEMM,
    whose kernel choice — and last-bit rounding — varies with panel
    width).  The out-of-core operator builds (:mod:`repro.ooc.build`)
    rely on this invariant.
    """
    top_k = check_positive_int(top_k, "top_k")
    chunk_size = check_positive_int(chunk_size, "chunk_size")
    if sp.issparse(features):
        feats = sp.csr_matrix(features, dtype=float)
        norms = np.sqrt(np.asarray(feats.multiply(feats).sum(axis=1)).ravel())
        safe = np.where(norms > 0, norms, 1.0)
        normalized = sp.diags(1.0 / safe) @ feats
    else:
        feats = np.asarray(features, dtype=float)
        if feats.ndim != 2:
            raise ValidationError(f"features must be 2-D, got shape {feats.shape}")
        norms = np.linalg.norm(feats, axis=1)
        safe = np.where(norms > 0, norms, 1.0)
        normalized = feats / safe[:, None]
    n = feats.shape[0]
    zero_rows = norms == 0
    k = min(top_k, n)

    rows_out: list[np.ndarray] = []
    cols_out: list[np.ndarray] = []
    data_out: list[np.ndarray] = []
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        block = normalized[start:stop]
        if sp.issparse(normalized):
            # Sparse matmul accumulates each output element in the fixed
            # order of the left operand's row, independent of panel width.
            sims = np.asarray((normalized @ block.T).todense())
        else:
            # einsum, not GEMM: BLAS kernels round differently per panel
            # width, which would break chunk-size bit-identity.
            sims = np.einsum("nd,cd->nc", normalized, block)
        np.clip(sims, 0.0, None, out=sims)
        sims[zero_rows, :] = 0.0
        sims[:, zero_rows[start:stop]] = 0.0
        # Force the diagonal in so self-similarity always survives
        # (featureless nodes excluded: their columns stay empty and fall
        # back to the uniform distribution below, matching the dense path).
        local = np.arange(start, stop)
        with_features = ~zero_rows[start:stop]
        sims[local[with_features], (local - start)[with_features]] = np.maximum(
            sims[local[with_features], (local - start)[with_features]], 1e-12
        )
        if k < n:
            top_rows = np.argpartition(-sims, k - 1, axis=0)[:k, :]
        else:
            top_rows = np.tile(np.arange(n)[:, None], (1, stop - start))
        block_cols = np.repeat(np.arange(start, stop)[None, :], top_rows.shape[0], 0)
        values = sims[top_rows, block_cols - start]
        keep = values > 0
        rows_out.append(top_rows[keep])
        cols_out.append(block_cols[keep])
        data_out.append(values[keep])
    matrix = sp.csr_matrix(
        (
            np.concatenate(data_out),
            (np.concatenate(rows_out), np.concatenate(cols_out)),
        ),
        shape=(n, n),
    )
    col_sums = np.asarray(matrix.sum(axis=0)).ravel()
    empty = col_sums == 0
    if np.any(empty):
        # Featureless columns: uniform, as elsewhere.
        uniform = sp.csr_matrix(
            (
                np.full(int(empty.sum()) * n, 1.0),
                (
                    np.tile(np.arange(n), int(empty.sum())),
                    np.repeat(np.flatnonzero(empty), n),
                ),
            ),
            shape=(n, n),
        )
        matrix = matrix + uniform
        col_sums = np.asarray(matrix.sum(axis=0)).ravel()
    return (matrix @ sp.diags(1.0 / col_sums)).tocsr()


def feature_transition_matrix(
    features, *, top_k: int | None = None, metric: str = "cosine"
):
    """The column-stochastic ``W`` of Eq. 9.

    Parameters
    ----------
    features:
        ``(n, d)`` dense array or scipy sparse matrix.
    top_k:
        When given, keep only the ``top_k`` largest similarities per
        column (the diagonal always survives) before normalising.  Returns
        a CSR matrix in that case, a dense array otherwise.
    metric:
        Node-similarity function: ``"cosine"`` (the paper's choice),
        ``"rbf"`` or ``"jaccard"`` (section 4.2 notes that any distance
        metric can drive the feature graph; an ablation bench compares
        them).

    Returns
    -------
    ``(n, n)`` column-stochastic matrix: every column is non-negative and
    sums to one (zero-similarity columns become uniform).
    """
    if metric == "cosine":
        sims = cosine_similarity_matrix(features)
    elif metric == "rbf":
        sims = rbf_similarity_matrix(features)
    elif metric == "jaccard":
        sims = jaccard_similarity_matrix(features)
    else:
        raise ValidationError(
            f"metric must be one of {SIMILARITY_METRICS}, got {metric!r}"
        )
    n = sims.shape[0]
    if top_k is not None:
        top_k = check_positive_int(top_k, "top_k")
        if top_k < n:
            # Zero out everything below each column's top_k values,
            # keeping the diagonal so self-similarity always survives.
            keep = np.zeros_like(sims, dtype=bool)
            idx = np.argpartition(-sims, top_k - 1, axis=0)[:top_k, :]
            keep[idx, np.arange(n)[None, :].repeat(top_k, axis=0)] = True
            keep[np.diag_indices(n)] = True
            sims = np.where(keep, sims, 0.0)
    result = normalise_similarity_columns(sims)
    if top_k is not None:
        return sp.csr_matrix(result)
    return result
