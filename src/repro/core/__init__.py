"""The paper's primary contribution: the T-Mark algorithm family.

* :class:`~repro.core.tmark.TMark` — Algorithm 1: per-class tensor Markov
  chains with restart, feature-similarity mixing and the ICA-style label
  update (Eq. 10–12).
* :class:`~repro.core.tensorrrcc.TensorRrCc` — the ICDM'17 predecessor
  (T-Mark without the label update), the paper's strongest baseline.
* :class:`~repro.core.multirank.MultiRank` — the unsupervised object /
  relation co-ranking substrate (Ng et al.) that T-Mark extends.
* :mod:`~repro.core.features` — the cosine feature-transition matrix ``W``
  (Eq. 9).
* :mod:`~repro.core.labels` — the restart vector ``l`` (Eq. 11) and its
  iterative update (Eq. 12).
"""

from repro.core.convergence import ChainHistory
from repro.core.features import (
    cosine_similarity_matrix,
    feature_transition_matrix,
    jaccard_similarity_matrix,
    rbf_similarity_matrix,
    topk_cosine_transition_matrix,
)
from repro.core.har import HAR, HARResult
from repro.core.labels import initial_label_vector, updated_label_vector
from repro.core.multirank import MultiRank, MultiRankResult
from repro.core.persistence import load_result, save_result
from repro.core.tensorrrcc import TensorRrCc
from repro.core.tmark import TMark, TMarkOperators, TMarkResult, build_operators

__all__ = [
    "TMark",
    "TMarkResult",
    "TMarkOperators",
    "build_operators",
    "TensorRrCc",
    "MultiRank",
    "MultiRankResult",
    "HAR",
    "HARResult",
    "ChainHistory",
    "save_result",
    "load_result",
    "cosine_similarity_matrix",
    "rbf_similarity_matrix",
    "jaccard_similarity_matrix",
    "feature_transition_matrix",
    "topk_cosine_transition_matrix",
    "initial_label_vector",
    "updated_label_vector",
]
