"""T-Mark: the tensor-based Markov chain collective classifier (Algorithm 1).

For every class ``c`` T-Mark iterates the coupled updates of Eq. 10 and
Eq. 8:

.. math::

    x_t = (1 - \\alpha - \\beta)\\, O \\bar\\times_1 x_{t-1}
          \\bar\\times_3 z_{t-1} + \\beta W x_{t-1} + \\alpha l, \\qquad
    z_t = R \\bar\\times_1 x_t \\bar\\times_2 x_t

until ``||x_t - x_{t-1}||_1 + ||z_t - z_{t-1}||_1 < \\varepsilon``.  The
restart vector ``l`` starts as the uniform distribution over the class's
labeled nodes (Eq. 11) and, from iteration 3 on, additionally accepts
confident predictions (Eq. 12) — the ICA-style extension that
distinguishes T-Mark from its TensorRrCc predecessor.

The stationary ``x`` per class is the classification confidence; the
stationary ``z`` per class is the relative importance of the link types
(the quantity behind Tables 2, 5, 9, 10 and Fig. 5 of the paper).

Note on Algorithm 1's pseudo-code: its step 5 prints ``+ alpha z_{t-1}``,
an evident typo for ``+ alpha l`` — Eq. 10 and Theorem 2 both use ``l``,
and ``z`` has length ``m`` which does not even broadcast against ``x``.
We implement Eq. 10.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.convergence import ChainHistory
from repro.core.features import feature_transition_matrix
from repro.core.labels import (
    THRESHOLD_MODES,
    initial_label_vector,
    updated_label_vector,
)
from repro.errors import NotFittedError, ValidationError
from repro.hin.graph import HIN
from repro.obs.health import health_from_history
from repro.obs.recorder import CHAIN_PHASES, PhaseTimer, get_recorder
from repro.obs.spans import span
from repro.solvers.base import (
    PLAIN_SOLVER,
    check_solver,
    make_solver,
    propose_safeguarded,
)
from repro.tensor.transition import build_transition_tensors
from repro.utils.simplex import project_to_simplex, uniform_distribution
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_probability,
)

#: Relational weights below this are floating-point dust from
#: ``1 - alpha - beta`` (e.g. gamma values that round to just under 1)
#: and are clamped to exactly zero so the O-propagation — the dominant
#: per-iteration cost — is skipped when it cannot contribute.
RELATIONAL_WEIGHT_EPS = 1e-12


@dataclass(frozen=True)
class TMarkOperators:
    """Precomputed transition operators for one HIN.

    ``O``, ``R`` and ``W`` depend only on the network structure and the
    node features — not on which labels are visible — so they can be
    built once and shared across fits that differ only in supervision or
    in the chain hyper-parameters (label-fraction grids, alpha/gamma
    sweeps, tuning).  Build with :func:`build_operators` and pass to
    :meth:`TMark.fit` via ``operators=``.
    """

    o_tensor: object
    r_tensor: object
    w_matrix: object
    shape: tuple[int, int]  # (n_nodes, n_relations)
    similarity_top_k: int | None
    similarity_metric: str


def build_operators(
    hin: HIN,
    *,
    similarity_top_k: int | None = None,
    similarity_metric: str = "cosine",
    recorder=None,
) -> TMarkOperators:
    """Precompute the ``(O, R, W)`` operator triple for ``hin``.

    The returned object can be passed to any number of
    :meth:`TMark.fit` calls on HINs sharing this structure and feature
    matrix (e.g. ``hin.masked(...)`` views), skipping the operator
    construction — the dominant fixed cost of parameter sweeps.

    ``recorder`` (default: the ambient :func:`repro.obs.get_recorder`)
    receives one ``operator_build`` event with the O/R and W
    construction wall-clock split.
    """
    rec = get_recorder() if recorder is None else recorder
    with span("build_operators", recorder=rec, n_nodes=hin.n_nodes):
        started = time.perf_counter()
        o_tensor, r_tensor = build_transition_tensors(hin.tensor)
        transition_done = time.perf_counter()
        w_matrix = feature_transition_matrix(
            hin.features, top_k=similarity_top_k, metric=similarity_metric
        )
        if rec.enabled:
            feature_done = time.perf_counter()
            rec.emit(
                "operator_build",
                n_nodes=hin.n_nodes,
                n_relations=hin.n_relations,
                similarity_top_k=similarity_top_k,
                similarity_metric=similarity_metric,
                transition_seconds=transition_done - started,
                feature_seconds=feature_done - transition_done,
            )
            rec.count("operator_builds")
    return TMarkOperators(
        o_tensor=o_tensor,
        r_tensor=r_tensor,
        w_matrix=w_matrix,
        shape=(hin.n_nodes, hin.n_relations),
        similarity_top_k=similarity_top_k,
        similarity_metric=similarity_metric,
    )


@dataclass(frozen=True)
class TMarkResult:
    """Stationary distributions of a fitted T-Mark model.

    Attributes
    ----------
    node_scores:
        ``(n, q)`` matrix; column ``c`` is the stationary node
        distribution ``x`` of class ``c`` (each column sums to one).
    relation_scores:
        ``(m, q)`` matrix; column ``c`` is the stationary relation
        distribution ``z`` of class ``c``.
    histories:
        One :class:`ChainHistory` per class.
    label_names, relation_names:
        Names aligned with the score columns / rows.
    node_names:
        Names aligned with the ``node_scores`` rows — the chain-start
        metadata that lets a :class:`repro.stream.StreamingSession`
        resume from a saved result (``None`` on results loaded from
        archives predating the field).
    """

    node_scores: np.ndarray
    relation_scores: np.ndarray
    histories: list[ChainHistory]
    label_names: tuple[str, ...]
    relation_names: tuple[str, ...]
    node_names: tuple[str, ...] | None = None

    def ranked_relations(self, label: int | str) -> list[tuple[str, float]]:
        """Relations sorted by importance for ``label`` (name, score)."""
        c = self._label_idx(label)
        order = np.argsort(-self.relation_scores[:, c], kind="stable")
        return [(self.relation_names[k], float(self.relation_scores[k, c])) for k in order]

    def top_relations(self, label: int | str, count: int = 5) -> list[str]:
        """Names of the ``count`` most important relations for ``label``."""
        return [name for name, _ in self.ranked_relations(label)[:count]]

    def _label_idx(self, label: int | str) -> int:
        if isinstance(label, str):
            try:
                return self.label_names.index(label)
            except ValueError:
                raise ValidationError(f"unknown label name: {label!r}") from None
        c = int(label)
        if not 0 <= c < len(self.label_names):
            raise ValidationError(
                f"label index {c} out of range [0, {len(self.label_names)})"
            )
        return c


class TMark:
    """The T-Mark collective classifier and link ranker.

    Parameters
    ----------
    alpha:
        Restart probability toward the labeled nodes (Eq. 10); the paper
        uses 0.8 on DBLP and 0.9 elsewhere (section 6.5).  ``alpha=0``
        is allowed and reproduces a restart-free walk — without the
        contraction the restart term provides, such chains may never
        converge (periodic structures oscillate; see
        :mod:`repro.obs.health`).
    gamma:
        Feature/relation mix in [0, 1]: 0 = relational information only,
        1 = feature information only.  Internally
        ``beta = gamma * (1 - alpha)``.
    tol:
        The stopping tolerance ``epsilon`` of Algorithm 1.
    max_iter:
        Iteration budget per class chain.
    update_labels:
        Enable the Eq. 12 ICA update from iteration 3 on (the T-Mark
        extension).  ``False`` reproduces TensorRrCc.
    label_threshold:
        The acceptance threshold ``lambda`` of Eq. 12.
    threshold_mode:
        ``"relative"`` (default — ``x_i > lambda * max(x)``) or
        ``"absolute"`` (the literal Eq. 12); see
        :mod:`repro.core.labels`.
    similarity_top_k:
        Optional sparsification of the feature transition matrix ``W``
        (keep the ``k`` strongest similarities per column).
    similarity_metric:
        Node-similarity function behind ``W``: ``"cosine"`` (the
        paper's choice and the default), ``"rbf"`` or ``"jaccard"``
        (section 4.2 allows any distance metric here).
    solver:
        Fixed-point solver for the per-class chains: ``"plain"`` (the
        default — the literal Algorithm 1 power iteration, bit-identical
        to releases predating :mod:`repro.solvers`), ``"anderson"``
        (windowed least-squares mixing), ``"aitken"`` (vector Aitken
        Δ² extrapolation), or ``"auto"`` (watch the empirical decay
        rate and switch slow chains onto Anderson).  All accelerated
        solvers are safeguarded: an extrapolated iterate that leaves
        the simplex is discarded for the plain step, so the stationary
        pair they converge to is the same one (argmax-identical
        predictions, residual ≤ ``tol``).

    Examples
    --------
    >>> from repro.datasets import make_worked_example
    >>> model = TMark(alpha=0.8, gamma=0.5)
    >>> result = model.fit(make_worked_example()).result_
    >>> result.node_scores.shape
    (4, 2)
    """

    def __init__(
        self,
        *,
        alpha: float = 0.8,
        gamma: float = 0.5,
        tol: float = 1e-8,
        max_iter: int = 500,
        update_labels: bool = True,
        label_threshold: float = 0.9,
        threshold_mode: str = "relative",
        similarity_top_k: int | None = None,
        similarity_metric: str = "cosine",
        solver: str = PLAIN_SOLVER,
    ):
        self.alpha = check_fraction(alpha, "alpha", inclusive_low=True)
        self.gamma = check_probability(gamma, "gamma")
        if tol <= 0:
            raise ValidationError(f"tol must be positive, got {tol}")
        self.tol = float(tol)
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.update_labels = bool(update_labels)
        self.label_threshold = check_probability(label_threshold, "label_threshold")
        if threshold_mode not in THRESHOLD_MODES:
            raise ValidationError(
                f"threshold_mode must be one of {THRESHOLD_MODES}, got {threshold_mode!r}"
            )
        self.threshold_mode = threshold_mode
        if similarity_top_k is not None:
            similarity_top_k = check_positive_int(similarity_top_k, "similarity_top_k")
        self.similarity_top_k = similarity_top_k
        from repro.core.features import SIMILARITY_METRICS

        if similarity_metric not in SIMILARITY_METRICS:
            raise ValidationError(
                f"similarity_metric must be one of {SIMILARITY_METRICS}, "
                f"got {similarity_metric!r}"
            )
        self.similarity_metric = similarity_metric
        self.solver = check_solver(solver)
        self.result_: TMarkResult | None = None
        self._hin: HIN | None = None

    @property
    def beta(self) -> float:
        """The feature-walk weight ``beta = gamma * (1 - alpha)``."""
        return self.gamma * (1.0 - self.alpha)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        hin: HIN,
        *,
        warm_start: bool = False,
        starts=None,
        operators=None,
        recorder=None,
        solver: str | None = None,
        shards: int | None = None,
        workers: int | None = None,
    ) -> "TMark":
        """Run the per-class chains on ``hin``.

        ``hin.label_matrix`` supplies the supervision: labeled rows are
        the training set, all-``False`` rows are the nodes to classify
        (transductive setting).

        Parameters
        ----------
        warm_start:
            Initialise each class chain from the previous fit's
            stationary pair instead of the Eq. 11 / uniform start.  When
            labels arrive incrementally on the same network, the old
            fixed point is close to the new one and chains converge in a
            fraction of the iterations (see the warm-start bench).
            Requires a previous fit with matching shapes *and* matching
            ``label_names`` / ``relation_names`` (a same-shape fit with
            reordered classes would seed every chain from the wrong
            class's stationary pair); silently falls back to a cold
            start otherwise.
        starts:
            Explicit warm-start pair ``(X0, Z0)`` of shapes ``(n, q)``
            and ``(m, q)`` (each column is projected onto the simplex
            before use).  Takes precedence over ``warm_start`` and,
            unlike it, fails loudly on a shape mismatch — this is the
            entry point for callers that maintain their own chain state,
            such as :class:`repro.stream.StreamingSession`, which pads
            the previous stationary ``x`` for newly added nodes and
            therefore cannot rely on the same-shape heuristic.
        operators:
            Optional :class:`TMarkOperators` precomputed with
            :func:`build_operators` on a HIN sharing this one's
            structure and features.  Skips the O/R/W construction —
            useful when fitting many label masks or hyper-parameter
            settings on one network.
        recorder:
            Optional :class:`repro.obs.Recorder` receiving the fit's
            telemetry (``chain_iteration`` phase timings, per-class
            ``chain_class`` residuals, one ``fit`` summary).  Defaults
            to the ambient recorder (:func:`repro.obs.get_recorder`),
            which is a no-op unless one was installed.
        solver:
            Per-fit override of the constructor's ``solver`` knob (one
            of :data:`repro.solvers.SOLVER_NAMES`); ``None`` keeps the
            constructor's choice.
        shards:
            Partition the node set into this many contiguous shards and
            run the per-iteration propagation in fork-based worker
            processes (see :mod:`repro.shard`).  ``None`` or ``1`` keeps
            the serial chain runner untouched.  With in-memory operators
            the sharded scores are bit-identical to the serial ones for
            any shard count; where no fork pool can be built (platforms
            without ``fork``, nested inside a pool worker) the fit warns
            and runs serially with identical results.
        workers:
            Worker-process count for a sharded fit; defaults to
            ``min(shards, available CPUs)``.  Ignored without ``shards``.

        Warns
        -----
        RuntimeWarning
            When a class chain exhausts ``max_iter`` without reaching
            ``tol`` — the warning names the class and its final
            residual, and the matching :class:`ChainHistory` is marked
            ``exhausted`` with ``converged=False`` (surfaced as the
            ``not_converged`` status on the ``chain_health`` event).
        """
        rec = get_recorder() if recorder is None else recorder
        fit_started = time.perf_counter() if rec.enabled else 0.0
        if not isinstance(hin, HIN):
            raise ValidationError(f"expected a HIN, got {type(hin).__name__}")
        if operators is not None:
            if operators.shape != (hin.n_nodes, hin.n_relations):
                raise ValidationError(
                    f"operators were built for shape {operators.shape}, the HIN "
                    f"has ({hin.n_nodes}, {hin.n_relations})"
                )
        else:
            operators = build_operators(
                hin,
                similarity_top_k=self.similarity_top_k,
                similarity_metric=self.similarity_metric,
                recorder=rec,
            )
        self.fit_operators(
            operators,
            hin.label_matrix,
            label_names=hin.label_names,
            relation_names=hin.relation_names,
            node_names=hin.node_names,
            warm_start=warm_start,
            starts=starts,
            recorder=rec,
            solver=solver,
            shards=shards,
            workers=workers,
            _fit_started=fit_started,
        )
        self._hin = hin
        return self

    def fit_operators(
        self,
        operators,
        label_matrix,
        *,
        label_names=None,
        relation_names=None,
        node_names=None,
        warm_start: bool = False,
        starts=None,
        recorder=None,
        solver: str | None = None,
        shards: int | None = None,
        workers: int | None = None,
        _fit_started: float | None = None,
    ) -> "TMark":
        """Run the per-class chains directly on a precomputed operator triple.

        The HIN-free core of :meth:`fit`: everything Algorithm 1 needs
        is the ``(O, R, W)`` operators plus the ``(n, q)`` boolean
        supervision matrix, so callers that never materialise a
        :class:`HIN` — above all the out-of-core tier, where a
        million-node graph lives in a :class:`repro.ooc.GraphStore` and
        the operators stream over memory-mapped slices — enter here.
        :meth:`fit` itself delegates to this method, so both paths are
        one code path with identical telemetry and results.

        Parameters
        ----------
        operators:
            A :class:`TMarkOperators` from :func:`build_operators`, or
            any object with the same surface (``o_tensor`` /
            ``r_tensor`` / ``w_matrix`` / ``shape`` / similarity
            attributes) such as :class:`repro.ooc.ChunkedOperators`.
        label_matrix:
            ``(n, q)`` boolean supervision; all-``False`` rows are the
            nodes to classify.
        label_names, relation_names:
            Names attached to the result's score axes; default to
            ``class_<c>`` / ``relation_<k>``.
        node_names:
            Optional node names for the result (``None`` keeps the
            result free of per-node strings — the only sane choice at
            millions of nodes).
        warm_start, starts, recorder, solver, shards, workers:
            As in :meth:`fit`.  Chunked store-backed operators shard
            along their on-disk column chunks (argmax-identical across
            shard counts); in-memory operators shard along rows
            (bit-identical).

        Returns
        -------
        ``self``; ``result_`` holds the stationary scores.  After this
        call :meth:`predict_multilabel` requires explicit
        ``positive_rates`` (there is no fitted HIN to infer them from).
        """
        rec = get_recorder() if recorder is None else recorder
        fit_started = (
            (time.perf_counter() if rec.enabled else 0.0)
            if _fit_started is None
            else _fit_started
        )
        solver_name = self.solver if solver is None else check_solver(solver)
        if (
            operators.similarity_top_k != self.similarity_top_k
            or operators.similarity_metric != self.similarity_metric
        ):
            raise ValidationError(
                "operators were built with different similarity settings "
                f"(top_k={operators.similarity_top_k}, "
                f"metric={operators.similarity_metric!r})"
            )
        label_matrix = np.asarray(label_matrix, dtype=bool)
        if label_matrix.ndim != 2:
            raise ValidationError(
                f"label_matrix must be 2-D (n, q), got shape {label_matrix.shape}"
            )
        n, q = label_matrix.shape
        n_ops, m = operators.shape
        if n_ops != n:
            raise ValidationError(
                f"operators were built for {n_ops} nodes, the label matrix "
                f"has {n} rows"
            )
        if self.beta > 0.0 and operators.w_matrix is None:
            raise ValidationError(
                "operators carry no feature-walk matrix (W) but "
                f"gamma={self.gamma} needs one; rebuild with W or set gamma=0"
            )
        if label_names is None:
            label_names = tuple(f"class_{c}" for c in range(q))
        else:
            label_names = tuple(str(name) for name in label_names)
            if len(label_names) != q:
                raise ValidationError(
                    f"expected {q} label names, got {len(label_names)}"
                )
        if relation_names is None:
            relation_names = tuple(f"relation_{k}" for k in range(m))
        else:
            relation_names = tuple(str(name) for name in relation_names)
            if len(relation_names) != m:
                raise ValidationError(
                    f"expected {m} relation names, got {len(relation_names)}"
                )
        o_tensor, r_tensor, w_matrix = (
            operators.o_tensor,
            operators.r_tensor,
            operators.w_matrix,
        )

        if starts is not None:
            if len(starts) != 2:
                raise ValidationError(
                    "starts must be an (X0, Z0) pair of score matrices"
                )
            x0 = np.asarray(starts[0], dtype=float)
            z0 = np.asarray(starts[1], dtype=float)
            if x0.shape != (n, q) or z0.shape != (m, q):
                raise ValidationError(
                    f"starts shapes {x0.shape} / {z0.shape} do not match the "
                    f"HIN's ({n}, {q}) / ({m}, {q})"
                )
            if not (np.all(np.isfinite(x0)) and np.all(np.isfinite(z0))):
                raise ValidationError(
                    "starts must be finite: (X0, Z0) contains NaN or inf"
                )
            if float(x0.min()) < -1e-6 or float(z0.min()) < -1e-6:
                raise ValidationError(
                    "starts must be non-negative (entries below -1e-6 found); "
                    "warm starts are score matrices, not arbitrary vectors"
                )
            # Valid-but-unnormalised columns (including all-zero ones,
            # which become uniform) are repaired by the per-column
            # simplex projection inside the chain runner.
            starts = (x0, z0)
        else:
            previous = self.result_ if warm_start else None
            if previous is not None and (
                previous.node_scores.shape != (n, q)
                or previous.relation_scores.shape != (m, q)
                or tuple(previous.label_names) != tuple(label_names)
                or tuple(previous.relation_names) != tuple(relation_names)
            ):
                previous = None
            if previous is not None:
                starts = (previous.node_scores, previous.relation_scores)
        if shards is not None:
            shards = check_positive_int(shards, "shards")
        if shards is not None and shards > 1:
            from repro.shard import shard_fallback_reason

            reason = shard_fallback_reason()
            if reason is not None:
                warnings.warn(
                    f"fit(shards={shards}) falling back to serial: {reason}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                shards = None
        else:
            shards = None
        with span(
            "fit_chains", recorder=rec, n_classes=q, solver=solver_name
        ):
            if shards is not None:
                from repro.shard import run_chains_sharded

                node_scores, relation_scores, histories = run_chains_sharded(
                    self, o_tensor, r_tensor, w_matrix, label_matrix,
                    shards=shards, workers=workers, starts=starts,
                    recorder=rec, solver=solver_name,
                )
            else:
                node_scores, relation_scores, histories = (
                    self._run_chains_batched(
                        o_tensor, r_tensor, w_matrix, label_matrix,
                        starts=starts, recorder=rec, solver=solver_name,
                    )
                )
        for c, history in enumerate(histories):
            if history.exhausted:
                warnings.warn(
                    f"chain for class {label_names[c]!r} exhausted "
                    f"max_iter={self.max_iter} without converging "
                    f"(final residual {history.final_residual:.3e} >= "
                    f"tol {self.tol:.3e})",
                    RuntimeWarning,
                    stacklevel=2,
                )

        self.result_ = TMarkResult(
            node_scores=node_scores,
            relation_scores=relation_scores,
            histories=histories,
            label_names=label_names,
            relation_names=relation_names,
            node_names=tuple(node_names) if node_names is not None else None,
        )
        self._hin = None
        if rec.enabled:
            for c, history in enumerate(histories):
                verdict = health_from_history(
                    history, class_index=c, label=label_names[c]
                )
                rec.emit("chain_health", **verdict.as_event())
                if not verdict.ok:
                    rec.count("unhealthy_chains")
            rec.emit(
                "fit",
                n_nodes=n,
                n_classes=q,
                n_relations=m,
                tol=self.tol,
                solver=solver_name,
                warm_start=starts is not None,
                iterations=max(h.n_iterations for h in histories),
                converged=all(h.converged for h in histories),
                seconds=time.perf_counter() - fit_started,
            )
            rec.count("fits")
        return self

    @property
    def _relational_weight(self) -> float:
        """``1 - alpha - beta`` with floating-point dust clamped to zero.

        For ``gamma`` values that are mathematically 1 but round to just
        below it (e.g. ``0.7 + 0.3``), the raw subtraction leaves a
        ~1e-17 residue that would trigger a full O-propagation per
        iteration contributing nothing.
        """
        weight = 1.0 - self.alpha - self.beta
        return 0.0 if weight < RELATIONAL_WEIGHT_EPS else weight

    def _run_chains_batched(
        self, o_tensor, r_tensor, w_matrix, label_matrix, *, starts=None,
        recorder=None, solver=PLAIN_SOLVER,
    ):
        """Advance all ``q`` per-class chains of Algorithm 1 in lockstep.

        Every iteration contracts the still-active class columns through
        one :meth:`~repro.tensor.transition.NodeTransitionTensor.propagate_many`
        / ``propagate_many`` pair (plus one sparse ``W @ X`` product), so
        the sparse operator structure is traversed once per iteration
        instead of once per class.  Columns whose residual falls below
        ``tol`` are frozen — early-converging classes stop paying for
        slow ones — and each class keeps its own :class:`ChainHistory`
        with exactly the entries the sequential per-class loop
        (:meth:`_run_chain`) would record.

        ``starts`` optionally provides warm ``(X0, Z0)`` score matrices.
        Returns ``(node_scores, relation_scores, histories)``.

        When ``recorder`` is enabled, every iteration emits one
        ``chain_iteration`` event carrying the five
        :data:`~repro.obs.CHAIN_PHASES` wall-clock timings plus one
        ``chain_class`` event per active class with its residual and
        frozen flag.  When the recorder additionally asks for probes
        (``recorder.probes``), every iteration also emits one
        ``invariant_probe`` event checking the quantities Theorem 1
        guarantees: the simplex mass drift of the active ``x``/``z``
        columns (max ``|column sum - 1|``), their minimum entries and
        negative-entry count, the dangling-mass share the O/R builds
        had to repair, and the Eq. 12 restart-acceptance count (-1 on
        iterations where the update is inactive).  The instrumentation
        only *observes* — timings and probes are taken around/after the
        existing statements without reordering any floating-point
        operation, so traced and untraced fits are bit-identical.

        ``solver`` selects the fixed-point accelerator (see
        :mod:`repro.solvers`).  For the default ``"plain"`` no solver
        object is even created and every added statement is skipped, so
        plain fits stay bit-identical to the pre-solver code path.  For
        accelerated solvers, each per-class accelerator is offered the
        ``(x_prev, plain step)`` pair right after the x-projection;
        accepted proposals replace the column (a ``solver_step`` event),
        safeguard rejections fall back to the plain step and restart
        the accelerator's history (a ``solver_restart`` event), and an
        Eq. 12 restart-vector change resets the history too (the map
        being accelerated has moved).
        """
        rec = get_recorder() if recorder is None else recorder
        timed = rec.enabled
        probes_on = timed and rec.probes
        label_matrix = np.asarray(label_matrix, dtype=bool)
        n, q = label_matrix.shape
        m = r_tensor.shape[2]
        alpha, beta = self.alpha, self.beta
        relational_weight = self._relational_weight

        masks = [label_matrix[:, c] for c in range(q)]
        label_vectors = np.column_stack(
            [initial_label_vector(mask) for mask in masks]
        )
        if starts is None:
            x_scores = label_vectors.copy()
            z_scores = np.repeat(uniform_distribution(m)[:, None], q, axis=1)
        else:
            x_scores = np.column_stack(
                [
                    project_to_simplex(np.asarray(starts[0][:, c], dtype=float))
                    for c in range(q)
                ]
            )
            z_scores = np.column_stack(
                [
                    project_to_simplex(np.asarray(starts[1][:, c], dtype=float))
                    for c in range(q)
                ]
            )
        histories = [
            ChainHistory(tol=self.tol, n_anchors=int(mask.sum())) for mask in masks
        ]
        use_solver = solver != PLAIN_SOLVER
        solvers = (
            [make_solver(solver, tol=self.tol) for _ in range(q)]
            if use_solver
            else None
        )
        if probes_on:
            o_dangling_share = float(o_tensor.dangling_share)
            r_unlinked_share = float(r_tensor.unlinked_share)
        active = list(range(q))
        for t in range(1, self.max_iter + 1):
            if not active:
                break
            if timed:
                timer = PhaseTimer(CHAIN_PHASES)
                timer.start("label_update")
            if self.update_labels and t > 2:
                for c in active:
                    vector, n_accepted = updated_label_vector(
                        masks[c],
                        x_scores[:, c],
                        self.label_threshold,
                        mode=self.threshold_mode,
                        return_accepted=True,
                    )
                    if use_solver and not np.array_equal(
                        vector, label_vectors[:, c]
                    ):
                        # The restart vector moved (Eq. 12 accepted new
                        # nodes): the map being accelerated changed, so
                        # the solver's iterate history is stale.
                        solvers[c].map_changed()
                        if timed:
                            rec.emit(
                                "solver_restart",
                                t=t,
                                class_index=c,
                                solver=solvers[c].active_name,
                                reason="label_update",
                            )
                            rec.count("solver_restarts")
                    label_vectors[:, c] = vector
                    histories[c].accepted_history.append(n_accepted)
            if timed:
                timer.start("o_propagation")
            x_active = x_scores[:, active]
            x_new = alpha * label_vectors[:, active]
            if relational_weight > 0.0:
                x_new = x_new + relational_weight * o_tensor.propagate_many(
                    x_active, z_scores[:, active]
                )
            if timed:
                timer.start("feature_walk")
            if beta > 0.0:
                x_new = x_new + beta * (w_matrix @ x_active)
            if timed:
                timer.start("projection")
            for idx in range(len(active)):
                x_new[:, idx] = project_to_simplex(x_new[:, idx])
            if use_solver:
                if timed:
                    # Pause the phase clock: proposal time is reported on
                    # the solver_step/solver_restart events themselves so
                    # a plain-vs-accelerated trace-diff compares the
                    # shared phases like for like.
                    timer.stop()
                for idx, c in enumerate(active):
                    accelerator = solvers[c]
                    step_started = time.perf_counter() if timed else 0.0
                    outcome, safe = propose_safeguarded(
                        accelerator,
                        x_scores[:, c].copy(),
                        x_new[:, idx].copy(),
                        t=t,
                        residuals=histories[c].residuals,
                    )
                    if outcome == "none":
                        continue
                    if outcome == "rejected":
                        if timed:
                            rec.emit(
                                "solver_restart",
                                t=t,
                                class_index=c,
                                solver=accelerator.active_name,
                                reason="safeguard",
                                seconds=time.perf_counter() - step_started,
                            )
                            rec.count("solver_restarts")
                    else:
                        x_new[:, idx] = safe
                        if timed:
                            rec.emit(
                                "solver_step",
                                t=t,
                                class_index=c,
                                solver=accelerator.active_name,
                                seconds=time.perf_counter() - step_started,
                            )
                            rec.count("solver_steps")
            if timed:
                timer.start("r_contraction")
            z_new = r_tensor.propagate_many(x_new, x_new)
            if timed:
                timer.start("projection")
            still_active = []
            residuals = [] if timed else None
            for idx, c in enumerate(active):
                z_col = project_to_simplex(z_new[:, idx])
                rho = histories[c].record(
                    x_new[:, idx], x_scores[:, c], z_col, z_scores[:, c]
                )
                x_scores[:, c] = x_new[:, idx]
                z_scores[:, c] = z_col
                if rho >= self.tol:
                    still_active.append(c)
                if timed:
                    residuals.append((c, rho))
            if timed:
                timer.stop()
                rec.emit(
                    "chain_iteration",
                    t=t,
                    n_active=len(active),
                    phases=dict(timer.phases),
                )
                rec.count("chain_iterations")
                for c, rho in residuals:
                    frozen = rho < self.tol
                    rec.emit(
                        "chain_class",
                        t=t,
                        class_index=c,
                        residual=rho,
                        frozen=frozen,
                    )
                    if frozen:
                        rec.count("frozen_columns")
                if probes_on:
                    z_active = z_scores[:, active]
                    if self.update_labels and t > 2:
                        n_accepted = sum(
                            histories[c].accepted_history[-1] for c in active
                        )
                    else:
                        n_accepted = -1
                    rec.emit(
                        "invariant_probe",
                        t=t,
                        n_active=len(active),
                        x_mass_drift=float(np.abs(x_new.sum(axis=0) - 1.0).max()),
                        z_mass_drift=float(np.abs(z_active.sum(axis=0) - 1.0).max()),
                        x_min=float(x_new.min()),
                        z_min=float(z_active.min()),
                        n_negative=int((x_new < 0.0).sum() + (z_active < 0.0).sum()),
                        n_accepted=n_accepted,
                        o_dangling_share=o_dangling_share,
                        r_unlinked_share=r_unlinked_share,
                    )
                    rec.count("invariant_probes")
            active = still_active
        for c in active:
            # The loop ran out of budget with this chain still moving.
            histories[c].exhausted = True
        return x_scores, z_scores, histories

    def _run_chain(self, o_tensor, r_tensor, w_matrix, class_mask, *, start=None):
        """One per-class chain of Algorithm 1; returns ``(x, z, history)``.

        The sequential reference the batched runner is checked against:
        both share the same propagation kernels (``propagate`` delegates
        to ``propagate_many``), so their outputs agree bit-for-bit.
        ``start`` optionally provides a warm ``(x0, z0)`` pair.
        """
        m = r_tensor.shape[2]
        alpha, beta = self.alpha, self.beta
        relational_weight = self._relational_weight

        label_vec = initial_label_vector(class_mask)
        if start is None:
            x = label_vec.copy()
            z = uniform_distribution(m)
        else:
            x = project_to_simplex(np.asarray(start[0], dtype=float))
            z = project_to_simplex(np.asarray(start[1], dtype=float))
        history = ChainHistory(tol=self.tol, n_anchors=int(class_mask.sum()))
        for t in range(1, self.max_iter + 1):
            if self.update_labels and t > 2:
                label_vec, n_accepted = updated_label_vector(
                    class_mask,
                    x,
                    self.label_threshold,
                    mode=self.threshold_mode,
                    return_accepted=True,
                )
                history.accepted_history.append(n_accepted)
            x_new = alpha * label_vec
            if relational_weight > 0.0:
                x_new = x_new + relational_weight * o_tensor.propagate(x, z)
            if beta > 0.0:
                x_new = x_new + beta * (w_matrix @ x)
            x_new = project_to_simplex(np.asarray(x_new).ravel())
            z_new = project_to_simplex(r_tensor.propagate(x_new, x_new))
            rho = history.record(x_new, x, z_new, z)
            x, z = x_new, z_new
            if rho < self.tol:
                break
        if not history.converged:
            history.exhausted = True
        return x, z, history

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _require_fitted(self) -> TMarkResult:
        if self.result_ is None:
            raise NotFittedError("TMark.fit must be called before predicting")
        return self.result_

    def predict_scores(self) -> np.ndarray:
        """The raw ``(n, q)`` stationary confidence matrix."""
        return self._require_fitted().node_scores.copy()

    def predict_proba(self) -> np.ndarray:
        """Row-normalised class probabilities per node."""
        scores = self._require_fitted().node_scores
        totals = scores.sum(axis=1, keepdims=True)
        safe = np.where(totals > 0, totals, 1.0)
        proba = scores / safe
        zero_rows = (totals == 0).ravel()
        if np.any(zero_rows):
            proba[zero_rows] = 1.0 / scores.shape[1]
        return proba

    def predict(self) -> np.ndarray:
        """Single-label prediction: class index per node (argmax)."""
        return np.argmax(self._require_fitted().node_scores, axis=1)

    def predict_multilabel(self, positive_rates=None) -> np.ndarray:
        """Multi-label prediction as an ``(n, q)`` boolean matrix.

        Each class accepts its top-scoring nodes at the class's training
        positive rate (prior matching): if 12% of labeled nodes carry
        class ``c``, the 12% highest-scoring nodes are predicted positive.
        Every node receives at least its argmax class so no node ends up
        label-free.

        Parameters
        ----------
        positive_rates:
            Optional length-``q`` per-class positive rates in (0, 1];
            defaults to the rates observed among the fitted HIN's labeled
            nodes.  Must be finite — clipping happens only after shape
            and finiteness are validated, so a NaN cannot slip through
            ``np.clip`` (which propagates it) into the selection counts.
        """
        result = self._require_fitted()
        scores = result.node_scores
        n, q = scores.shape
        if positive_rates is None:
            if self._hin is None:
                raise NotFittedError("positive_rates is required without a fitted HIN")
            labeled = self._hin.labeled_mask
            n_labeled = max(int(labeled.sum()), 1)
            positive_rates = self._hin.label_matrix[labeled].sum(axis=0) / n_labeled
        rates = np.asarray(positive_rates, dtype=float)
        if rates.shape != (q,):
            raise ValidationError(
                f"positive_rates must have shape ({q},), got {rates.shape}"
            )
        if not np.all(np.isfinite(rates)):
            raise ValidationError("positive_rates must be finite, got NaN or inf")
        rates = np.clip(rates, 1.0 / n, 1.0)
        predictions = np.zeros((n, q), dtype=bool)
        for c in range(q):
            count = max(int(round(rates[c] * n)), 1)
            top = np.argsort(-scores[:, c], kind="stable")[:count]
            predictions[top, c] = True
        predictions[np.arange(n), np.argmax(scores, axis=1)] = True
        return predictions

    def diagnostics(self) -> dict[str, dict]:
        """Per-class convergence and label-update diagnostics.

        Returns, per class label: the iteration count, convergence flag,
        final residual, number of labeled anchors, and the number of
        unlabeled nodes the Eq. 12 update had accepted into the restart
        vector at the final iteration (-1 when the update never fired).
        """
        result = self._require_fitted()
        report: dict[str, dict] = {}
        for label, history in zip(result.label_names, result.histories):
            accepted = history.accepted_history
            report[label] = {
                "iterations": history.n_iterations,
                "converged": history.converged,
                "final_residual": history.final_residual,
                "n_anchors": history.n_anchors,
                "final_accepted": accepted[-1] if accepted else -1,
            }
        return report

    def fit_predict(self, hin: HIN, rng=None, *, operators=None) -> np.ndarray:
        """Fit on ``hin`` and return the ``(n, q)`` score matrix.

        This is the common transductive-classifier interface shared with
        the baselines (``rng`` is accepted for uniformity; T-Mark is
        deterministic).  ``operators`` optionally passes a precomputed
        :class:`TMarkOperators` through to :meth:`fit`, letting the
        experiment harness share one operator build across the many
        masked fits of a sweep.
        """
        del rng  # deterministic algorithm; parameter kept for interface parity
        return self.fit(hin, operators=operators).result_.node_scores.copy()
