"""Persistence for fitted T-Mark results.

Fitting is cheap on the calibrated datasets but expensive on real HINs;
``save_result`` / ``load_result`` store a :class:`TMarkResult` (scores,
rankings, convergence telemetry) in a pickle-free ``.npz`` archive so
predictions and link rankings can be served without refitting.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.convergence import ChainHistory
from repro.core.tmark import TMarkResult
from repro.errors import ValidationError

#: Version 2 adds ``node_names`` — the chain-start metadata that lets a
#: :class:`repro.stream.StreamingSession` resume from a saved result.
#: Version-1 archives still load (with ``node_names=None``).
_FORMAT_VERSION = 2


def save_result(result: TMarkResult, path) -> Path:
    """Serialise a fitted :class:`TMarkResult` to ``path`` (``.npz``)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    header = {
        "format_version": _FORMAT_VERSION,
        "label_names": list(result.label_names),
        "relation_names": list(result.relation_names),
        "node_names": (
            None if result.node_names is None else list(result.node_names)
        ),
        "histories": [
            {
                "tol": history.tol,
                "converged": history.converged,
                "n_anchors": history.n_anchors,
                "residuals": list(map(float, history.residuals)),
                "accepted_history": list(map(int, history.accepted_history)),
            }
            for history in result.histories
        ],
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        node_scores=result.node_scores,
        relation_scores=result.relation_scores,
    )
    return path


def load_result(path) -> TMarkResult:
    """Load a :class:`TMarkResult` written by :func:`save_result`."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no such result archive: {path}")
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
        version = header.get("format_version")
        if version not in (1, _FORMAT_VERSION):
            raise ValidationError(
                f"unsupported result archive version: {version}"
            )
        node_names = header.get("node_names")
        histories = []
        for payload in header["histories"]:
            history = ChainHistory(
                tol=float(payload["tol"]),
                residuals=[float(r) for r in payload["residuals"]],
                converged=bool(payload["converged"]),
                n_anchors=int(payload["n_anchors"]),
                accepted_history=[int(a) for a in payload["accepted_history"]],
            )
            histories.append(history)
        return TMarkResult(
            node_scores=archive["node_scores"],
            relation_scores=archive["relation_scores"],
            histories=histories,
            label_names=tuple(header["label_names"]),
            relation_names=tuple(header["relation_names"]),
            node_names=None if node_names is None else tuple(node_names),
        )
