"""HAR: hub, authority and relevance scores in multi-relational data.

Li, Ng & Ye's HAR [23] extends MultiRank to *directed* multi-relational
networks: it co-ranks every node twice — as a **hub** (points at good
authorities) and as an **authority** (pointed at by good hubs) — together
with a **relevance** score per relation, via the coupled fixed point

.. math::

    x = (1-\\lambda)\\, O_a \\bar\\times_1 y \\bar\\times_3 z + \\lambda u, \\\\
    y = (1-\\lambda)\\, O_h \\bar\\times_1 x \\bar\\times_3 z + \\lambda u, \\\\
    z = (1-\\mu)\\, R \\bar\\times_1 x \\bar\\times_2 y + \\mu v,

where ``O_a`` normalises the adjacency tensor over target nodes, ``O_h``
over source nodes, ``R`` over relations, and ``u``/``v`` are uniform (or
query-personalised) restart vectors.  It is included here both as part
of the MultiRank family T-Mark builds on (section 2.2) and as a usable
ranking tool for directed HINs (citation networks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.convergence import ChainHistory
from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.tensor.sptensor import SparseTensor3
from repro.tensor.transition import NodeTransitionTensor, RelationTransitionTensor
from repro.utils.simplex import (
    is_distribution,
    project_to_simplex,
    uniform_distribution,
)
from repro.utils.validation import check_array_1d, check_probability, check_positive_int


@dataclass(frozen=True)
class HARResult:
    """Stationary hub / authority / relevance distributions.

    Attributes
    ----------
    authority:
        Length-``n`` authority scores (nodes pointed at by good hubs).
    hub:
        Length-``n`` hub scores (nodes pointing at good authorities).
    relevance:
        Length-``m`` relation relevance scores.
    history:
        Residual history of the coupled iteration.
    """

    authority: np.ndarray
    hub: np.ndarray
    relevance: np.ndarray
    history: ChainHistory

    def top_authorities(self, count: int = 10) -> np.ndarray:
        """Indices of the ``count`` highest-authority nodes."""
        return np.argsort(-self.authority, kind="stable")[:count]

    def top_hubs(self, count: int = 10) -> np.ndarray:
        """Indices of the ``count`` highest-hub nodes."""
        return np.argsort(-self.hub, kind="stable")[:count]

    def top_relations(self, count: int = 10) -> np.ndarray:
        """Indices of the ``count`` most relevant relations."""
        return np.argsort(-self.relevance, kind="stable")[:count]


class HAR:
    """Hub/authority/relevance co-ranking (Li, Ng & Ye [23]).

    Parameters
    ----------
    damping:
        The restart weight ``lambda`` toward the node personalisation
        vector (0 = pure structure, as in MultiRank).
    relation_damping:
        The restart weight ``mu`` toward the relation personalisation
        vector.
    tol, max_iter:
        Convergence control of the coupled iteration.
    """

    def __init__(
        self,
        *,
        damping: float = 0.15,
        relation_damping: float = 0.15,
        tol: float = 1e-10,
        max_iter: int = 1000,
    ):
        self.damping = check_probability(damping, "damping")
        self.relation_damping = check_probability(
            relation_damping, "relation_damping"
        )
        if tol <= 0:
            raise ValidationError(f"tol must be positive, got {tol}")
        self.tol = float(tol)
        self.max_iter = check_positive_int(max_iter, "max_iter")

    def rank(
        self,
        data: "SparseTensor3 | HIN",
        *,
        node_personalization=None,
        relation_personalization=None,
    ) -> HARResult:
        """Run the coupled iteration to its stationary triple.

        Parameters
        ----------
        data:
            A :class:`SparseTensor3` or :class:`HIN` (directed links
            meaningful: ``A[i, j, k]`` is a link ``j -> i``).
        node_personalization:
            Optional restart distribution over nodes (query-sensitive
            ranking); uniform when omitted.
        relation_personalization:
            Optional restart distribution over relations.
        """
        tensor = data.tensor if isinstance(data, HIN) else data
        if not isinstance(tensor, SparseTensor3):
            raise ValidationError(
                f"expected a SparseTensor3 or HIN, got {type(data).__name__}"
            )
        n, _, m = tensor.shape
        node_restart = self._restart(node_personalization, n, "node_personalization")
        relation_restart = self._restart(
            relation_personalization, m, "relation_personalization"
        )

        # O_a: columns normalised over targets (authority update);
        # O_h: same construction on the transposed tensor (hub update).
        authority_tensor = NodeTransitionTensor(tensor)
        hub_tensor = NodeTransitionTensor(tensor.transpose_nodes())
        relation_tensor = RelationTransitionTensor(tensor)

        authority = uniform_distribution(n)
        hub = uniform_distribution(n)
        relevance = uniform_distribution(m)
        lam, mu = self.damping, self.relation_damping
        history = ChainHistory(tol=self.tol)
        for _ in range(self.max_iter):
            authority_new = project_to_simplex(
                (1 - lam) * authority_tensor.propagate(hub, relevance)
                + lam * node_restart
            )
            hub_new = project_to_simplex(
                (1 - lam) * hub_tensor.propagate(authority_new, relevance)
                + lam * node_restart
            )
            relevance_new = project_to_simplex(
                (1 - mu) * relation_tensor.propagate(authority_new, hub_new)
                + mu * relation_restart
            )
            rho = history.record(
                np.concatenate([authority_new, hub_new]),
                np.concatenate([authority, hub]),
                relevance_new,
                relevance,
            )
            authority, hub, relevance = authority_new, hub_new, relevance_new
            if rho < self.tol:
                break
        return HARResult(
            authority=authority, hub=hub, relevance=relevance, history=history
        )

    @staticmethod
    def _restart(vector, size: int, name: str) -> np.ndarray:
        if vector is None:
            return uniform_distribution(size)
        vector = check_array_1d(vector, name, size=size)
        if not is_distribution(vector):
            raise ValidationError(f"{name} must be a probability distribution")
        return vector
