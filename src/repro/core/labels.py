"""Restart label vectors: Eq. 11 (initial) and Eq. 12 (ICA update).

The restart vector ``l`` concentrates the random walk on the nodes
believed to carry the current class.  Initially these are the labeled
training nodes (uniform ``1/n_c`` each).  From iteration 3 onwards T-Mark
additionally *accepts* unlabeled nodes whose current stationary confidence
``x_i`` clears a threshold ``lambda`` — the ICA idea of folding confident
predictions back into the supervision.

The paper calls ``lambda`` a "relative threshold" while Eq. 12 writes the
absolute test ``[x]_i > lambda``.  Two facts make the literal reading
unusable: stationary probabilities scale like ``1/n`` (so a fixed
absolute threshold is meaningless across network sizes), and the restart
term concentrates the bulk of the mass on the labeled anchors (so even a
threshold relative to the *global* maximum would never accept an
unlabeled node).  The default here is therefore relative to the best
*candidate*: a node is accepted when
``x_i > lambda * max(x over unlabeled nodes)``.  The absolute variant
remains available for the ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_array_1d, check_probability

#: Supported interpretations of the Eq. 12 threshold.
THRESHOLD_MODES = ("relative", "absolute")


def initial_label_vector(labeled_class_mask: np.ndarray) -> np.ndarray:
    """The Eq. 11 restart vector for one class.

    Parameters
    ----------
    labeled_class_mask:
        Boolean mask over nodes: ``True`` where the node is a *labeled
        training node of the current class*.

    Returns
    -------
    Length-``n`` distribution: ``1/n_c`` on the masked nodes.  When the
    class has no labeled nodes (possible under tiny label fractions) the
    walk has no anchor and the vector falls back to uniform over all
    nodes, which makes the class's confidence uninformative but keeps the
    chain well-defined.
    """
    mask = np.asarray(labeled_class_mask, dtype=bool)
    if mask.ndim != 1 or mask.size == 0:
        raise ValidationError("labeled_class_mask must be a non-empty 1-D bool mask")
    n_c = int(mask.sum())
    if n_c == 0:
        return np.full(mask.size, 1.0 / mask.size)
    vector = np.zeros(mask.size)
    vector[mask] = 1.0 / n_c
    return vector


def updated_label_vector(
    labeled_class_mask: np.ndarray,
    x: np.ndarray,
    threshold: float,
    *,
    mode: str = "relative",
    return_accepted: bool = False,
):
    """The Eq. 12 restart vector: training nodes plus confident predictions.

    Parameters
    ----------
    labeled_class_mask:
        Boolean mask of labeled training nodes of the current class.
    x:
        Current stationary node distribution for this class.
    threshold:
        The ``lambda`` of Eq. 12, in [0, 1].
    mode:
        ``"relative"`` accepts unlabeled nodes with
        ``x_i > threshold * max(x over unlabeled nodes)`` (default, see
        module docstring); ``"absolute"`` uses the literal Eq. 12 test
        ``x_i > threshold``.
    return_accepted:
        When ``True``, return ``(vector, n_accepted)`` where
        ``n_accepted`` is the number of *unlabeled* nodes the update
        accepted.  In the degenerate uniform fallback (no training node
        and no confident prediction) ``n_accepted`` is 0 — the fallback
        anchors nothing, so counting its support as acceptances would
        corrupt diagnostics.

    Returns
    -------
    Length-``n`` distribution: ``1/n_l`` over the union of training nodes
    and accepted nodes (plus the acceptance count when requested).
    """
    mask = np.asarray(labeled_class_mask, dtype=bool)
    x = check_array_1d(x, "x", size=mask.size)
    threshold = check_probability(threshold, "threshold")
    if mode not in THRESHOLD_MODES:
        raise ValidationError(
            f"mode must be one of {THRESHOLD_MODES}, got {mode!r}"
        )
    candidates = ~mask
    if mode == "relative":
        candidate_max = float(x[candidates].max()) if np.any(candidates) else 0.0
        cutoff = threshold * candidate_max
    else:
        cutoff = threshold
    accepted = mask | (candidates & (x > cutoff))
    n_l = int(accepted.sum())
    if n_l == 0:
        # Degenerate: nothing labeled and nothing confident; stay uniform.
        vector = np.full(mask.size, 1.0 / mask.size)
        return (vector, 0) if return_accepted else vector
    vector = np.zeros(mask.size)
    vector[accepted] = 1.0 / n_l
    if return_accepted:
        return vector, n_l - int(mask.sum())
    return vector
