"""TensorRrCc — the ICDM 2017 predecessor of T-Mark (Han et al. [12]).

TensorRrCc runs the same coupled tensor Markov chain as T-Mark but keeps
the restart vector ``l`` fixed at the Eq. 11 initial value: there is no
ICA-style label update.  The delta between :class:`TensorRrCc` and
:class:`~repro.core.tmark.TMark` is therefore exactly the paper's claimed
extension, which makes this class both the strongest baseline in the
evaluation tables and the natural ablation control.
"""

from __future__ import annotations

from repro.core.tmark import TMark


class TensorRrCc(TMark):
    """T-Mark without the iterative label update (Eq. 12 disabled).

    Accepts the same parameters as :class:`~repro.core.tmark.TMark`
    except ``update_labels`` (forced to ``False``) and the
    ``label_threshold`` / ``threshold_mode`` knobs that only matter with
    the update enabled.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.8,
        gamma: float = 0.5,
        tol: float = 1e-8,
        max_iter: int = 500,
        similarity_top_k: int | None = None,
    ):
        super().__init__(
            alpha=alpha,
            gamma=gamma,
            tol=tol,
            max_iter=max_iter,
            update_labels=False,
            similarity_top_k=similarity_top_k,
        )
