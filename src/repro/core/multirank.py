"""MultiRank: unsupervised co-ranking of objects and relations.

Ng, Li & Ye's MultiRank [22] solves the *unsupervised* fixed point

.. math::

    \\bar x = O \\bar\\times_1 \\bar x \\bar\\times_3 \\bar z, \\qquad
    \\bar z = R \\bar\\times_1 \\bar x \\bar\\times_2 \\bar x

(Eq. 7–8 of the T-Mark paper) — no labels, no features.  T-Mark extends
this substrate with a restart term, a feature transition matrix and
per-class supervision.  MultiRank is included both as the mathematical
foundation (its fixed point is the ``alpha = beta = 0`` corner of
Eq. 10) and as a usable object/relation ranking tool in its own right.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.convergence import ChainHistory
from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.tensor.sptensor import SparseTensor3
from repro.tensor.transition import build_transition_tensors
from repro.utils.simplex import project_to_simplex, uniform_distribution
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class MultiRankResult:
    """Stationary distributions of a MultiRank run.

    Attributes
    ----------
    x:
        Length-``n`` object (node) ranking distribution.
    z:
        Length-``m`` relation ranking distribution.
    history:
        Residual history of the iteration.
    """

    x: np.ndarray
    z: np.ndarray
    history: ChainHistory

    def top_objects(self, count: int = 10) -> np.ndarray:
        """Indices of the ``count`` highest-ranked objects."""
        return np.argsort(-self.x, kind="stable")[:count]

    def top_relations(self, count: int = 10) -> np.ndarray:
        """Indices of the ``count`` highest-ranked relations."""
        return np.argsort(-self.z, kind="stable")[:count]


class MultiRank:
    """Unsupervised object/relation co-ranking (Ng et al. [22]).

    Parameters
    ----------
    tol:
        Stopping tolerance on ``||x_t - x_{t-1}||_1 + ||z_t - z_{t-1}||_1``.
    max_iter:
        Iteration budget.
    """

    def __init__(self, *, tol: float = 1e-10, max_iter: int = 1000):
        if tol <= 0:
            raise ValidationError(f"tol must be positive, got {tol}")
        self.tol = float(tol)
        self.max_iter = check_positive_int(max_iter, "max_iter")

    def rank(self, data: "SparseTensor3 | HIN") -> MultiRankResult:
        """Run the co-ranking iteration to its stationary pair ``(x, z)``."""
        tensor = data.tensor if isinstance(data, HIN) else data
        if not isinstance(tensor, SparseTensor3):
            raise ValidationError(
                f"expected a SparseTensor3 or HIN, got {type(data).__name__}"
            )
        o_tensor, r_tensor = build_transition_tensors(tensor)
        n, _, m = tensor.shape
        x = uniform_distribution(n)
        z = uniform_distribution(m)
        history = ChainHistory(tol=self.tol)
        for _ in range(self.max_iter):
            x_new = project_to_simplex(o_tensor.propagate(x, z))
            z_new = project_to_simplex(r_tensor.propagate(x_new, x_new))
            rho = history.record(x_new, x, z_new, z)
            x, z = x_new, z_new
            if rho < self.tol:
                break
        return MultiRankResult(x=x, z=z, history=history)
