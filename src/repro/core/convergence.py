"""Convergence tracking for the iterative tensor Markov chains.

Every per-class chain records its residual sequence
``rho_t = ||x_t - x_{t-1}||_1 + ||z_t - z_{t-1}||_1`` — exactly the
stopping quantity of Algorithm 1 and the y-axis of the paper's Fig. 10
convergence study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError


@dataclass
class ChainHistory:
    """Residual history of one stationary-distribution iteration.

    Attributes
    ----------
    residuals:
        ``rho_t`` per iteration (1-indexed conceptually; ``residuals[0]``
        is the residual after the first update).
    converged:
        Whether the final residual fell below the tolerance.
    exhausted:
        Whether the chain spent its full ``max_iter`` budget without
        converging.  Set by the chain runners after the loop; a chain
        can be unconverged without being exhausted only transiently
        (mid-iteration).
    tol:
        The tolerance ``epsilon`` the chain ran with.
    n_anchors:
        Number of labeled training nodes anchoring the chain's class.
    accepted_history:
        Per-iteration count of *unlabeled* nodes accepted into the
        restart vector by the Eq. 12 update (empty when the update is
        disabled or has not fired yet).
    """

    tol: float
    residuals: list[float] = field(default_factory=list)
    converged: bool = False
    exhausted: bool = False
    n_anchors: int = 0
    accepted_history: list[int] = field(default_factory=list)

    @property
    def n_iterations(self) -> int:
        """Number of iterations performed."""
        return len(self.residuals)

    @property
    def final_residual(self) -> float:
        """The last recorded residual (inf before any iteration)."""
        return self.residuals[-1] if self.residuals else float("inf")

    def record(self, x_new, x_old, z_new, z_old) -> float:
        """Append and return the Algorithm 1 residual for this step."""
        rho = float(
            np.abs(np.asarray(x_new) - np.asarray(x_old)).sum()
            + np.abs(np.asarray(z_new) - np.asarray(z_old)).sum()
        )
        self.residuals.append(rho)
        self.converged = rho < self.tol
        return rho

    def require_converged(self, context: str = "iteration") -> None:
        """Raise :class:`ConvergenceError` unless the chain converged."""
        if not self.converged:
            raise ConvergenceError(
                f"{context} did not converge: final residual "
                f"{self.final_residual:.3e} >= tol {self.tol:.3e} after "
                f"{self.n_iterations} iterations"
            )
