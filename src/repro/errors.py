"""Exception hierarchy for the :mod:`repro` library.

All errors raised intentionally by this package derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array or tensor has an incompatible shape."""


class ValidationError(ReproError, ValueError):
    """An input value violates a documented invariant."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring ``fit`` was called before fitting."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within its budget."""


class DatasetError(ReproError, ValueError):
    """A dataset generator or loader received inconsistent arguments."""
