"""NUS-WIDE generator — the link-selection study (Tables 6–10, Figs. 7, 9).

Section 6.3's point: building the HIN from *relevant* tags (Tagset1 —
tags whose images mostly share a class) gives ~0.95 accuracy with 10%
labels, while *frequent but irrelevant* tags (Tagset2) cap accuracy at
~0.69 no matter how much supervision is available.

The generator reproduces that contrast directly: Tagset1 tags have high
class homophily and one-sided class affinity; Tagset2 tags have high
frequency (more links) but near-chance homophily.  The two HINs share
nodes, labels and features when built with the same ``seed`` (the label /
feature stream is drawn before any tag links), so Table 8's comparison is
apples-to-apples.

Tag names are the paper's own Tables 6 and 7 lists.
"""

from __future__ import annotations

from repro.datasets.synthetic import (
    RelationSpec,
    sample_labels,
    sample_topic_features,
)
from repro.errors import DatasetError
from repro.hin.builder import HINBuilder
from repro.hin.graph import HIN
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

#: The two high-level classes of section 6.3.
NUS_CLASSES: tuple[str, str] = ("Scene", "Object")

#: Paper Table 6 — the 41 relevance-selected tags.
TAGSET1: tuple[str, ...] = (
    "sky", "water", "clouds", "landscape", "sunset", "architecture",
    "portrait", "reflection", "animal", "building", "animals", "lake",
    "mountains", "cute", "abandoned", "grass", "mountain", "window",
    "cat", "sunrise", "zoo", "bridge", "cloud", "dog", "fall", "face",
    "square", "rain", "airplane", "eyes", "home", "cold", "windows",
    "sign", "flying", "plane", "arizona", "manhattan", "peace", "rural",
    "sports",
)

#: Object-flavoured tags within Tagset1 (the rest lean Scene) — used to
#: set each tag's class affinity and as Table 9's qualitative ground truth.
TAGSET1_OBJECT_TAGS: frozenset[str] = frozenset(
    {
        "portrait", "animal", "animals", "cute", "cat", "zoo", "dog",
        "face", "airplane", "eyes", "flying", "plane", "sports",
    }
)

#: Paper Table 7 — the 41 frequency-selected tags.
TAGSET2: tuple[str, ...] = (
    "nature", "sky", "blue", "water", "clouds", "red", "green", "bravo",
    "landscape", "explore", "sunset", "white", "night", "architecture",
    "portrait", "city", "travel", "trees", "california", "reflection",
    "animal", "girl", "interestingness", "building", "river", "animals",
    "lake", "abandoned", "window", "cat", "sunrise", "zoo", "bridge",
    "dog", "baby", "buildings", "food", "storm", "moon", "skyline",
    "cats",
)


def make_nus(
    *,
    tagset: str = "tagset1",
    n_images: int = 400,
    links_per_relevant_tag: int = 55,
    links_per_frequent_tag: int = 90,
    relevant_homophily: float = 0.9,
    frequent_homophily: float = 0.15,
    vocab_size: int = 100,
    words_per_node: int = 30,
    feature_noise: float = 0.9,
    seed=None,
) -> HIN:
    """Generate a NUS-like scene/object HIN over one tag set.

    Parameters
    ----------
    tagset:
        ``"tagset1"`` (relevance-selected tags) or ``"tagset2"``
        (frequency-selected tags).  Same ``seed`` => same nodes, labels
        and features across the two.
    n_images:
        Number of image nodes.
    links_per_relevant_tag, links_per_frequent_tag:
        Links per tag link type; Tagset2 tags are (by construction) more
        frequent.
    relevant_homophily, frequent_homophily:
        Class homophily of tags in each set (two classes => 0.5 is
        chance level).
    vocab_size, words_per_node, feature_noise:
        SIFT-codeword bag-of-words model; noisy by default (Fig. 9: the
        relational signal alone suffices on NUS).
    seed:
        RNG seed or generator.
    """
    if tagset not in ("tagset1", "tagset2"):
        raise DatasetError(f"tagset must be 'tagset1' or 'tagset2', got {tagset!r}")
    n_images = check_positive_int(n_images, "n_images")
    rng = ensure_rng(seed)
    classes = list(NUS_CLASSES)

    # Drawn before any tag-specific randomness: both tag sets built from
    # the same seed share labels and features.
    labels = sample_labels(n_images, len(classes), None, rng)
    features = sample_topic_features(
        labels,
        len(classes),
        vocab_size=vocab_size,
        words_per_node=words_per_node,
        feature_noise=feature_noise,
        rng=rng,
    )

    specs: list[RelationSpec] = []
    tag_classes: dict[str, str] = {}
    if tagset == "tagset1":
        for tag in TAGSET1:
            is_object = tag in TAGSET1_OBJECT_TAGS
            affinity = (0.0, 1.0) if is_object else (1.0, 0.0)
            tag_classes[tag] = classes[1] if is_object else classes[0]
            specs.append(
                RelationSpec(
                    name=tag,
                    n_links=links_per_relevant_tag,
                    homophily=relevant_homophily,
                    affinity=affinity,
                )
            )
    else:
        for tag in TAGSET2:
            specs.append(
                RelationSpec(
                    name=tag,
                    n_links=links_per_frequent_tag,
                    homophily=frequent_homophily,
                    affinity=None,
                )
            )

    builder = HINBuilder(classes)
    for idx in range(n_images):
        builder.add_node(
            f"image_{idx}", features=features[idx], labels=[classes[labels[idx]]]
        )
    from repro.datasets.synthetic import sample_relation_links

    for spec in specs:
        builder.add_relation(spec.name)
        for u, v in sample_relation_links(spec, labels, len(classes), rng):
            builder.add_link(f"image_{u}", f"image_{v}", spec.name)
    metadata = {"dataset": "nus", "tagset": tagset}
    if tag_classes:
        metadata["tag_classes"] = tag_classes
    return builder.build(metadata=metadata)
