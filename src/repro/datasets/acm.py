"""ACM digital-library generator — the multi-label study (Table 11, Fig. 5).

The paper's ACM task: predict the (multiple) ACM index terms of KDD /
SIGIR publications linked through six relation types — authors, concepts,
conferences, keywords, published year and citations (citations directed,
the rest undirected).  The generator is calibrated to the two structural
facts behind the paper's results:

* **link-type quality varies wildly** — "concept" and "conference" links
  are strongly class-aligned while "year" links are essentially random
  and voluminous (Fig. 5's finding), so methods that weight link types
  (T-Mark) beat methods that cannot (ICA, EMR) by a wide margin;
* **index terms are many and imbalanced** — a Zipf prior over 11 terms
  makes Macro-F1 punish methods whose estimates are dominated by the
  majority classes; T-Mark's per-class chains are inherently
  class-normalised, which is where its low-label advantage comes from.

The calibrated per-type homophily/volume is stored in
``hin.metadata["relation_homophily"]`` for the Fig. 5 bench.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import RelationSpec, make_synthetic_hin
from repro.hin.graph import HIN
from repro.utils.validation import check_positive_int

#: The six ACM link types and their generator homophily (calibrated so
#: concept > conference >> the rest, with year links near-random —
#: Fig. 5's ordering).
ACM_RELATION_HOMOPHILY: dict[str, float] = {
    "concept": 0.95,
    "conference": 0.90,
    "citation": 0.50,
    "keyword": 0.35,
    "author": 0.20,
    "year": 0.02,
}

#: Link volume per relation.  The noisy relations (author, year) carry
#: *more* links than the clean ones — exactly the regime where treating
#: all link types equally (ICA / EMR / wvRN) is punished.
ACM_RELATION_LINKS: dict[str, int] = {
    "concept": 500,
    "conference": 450,
    "citation": 250,
    "keyword": 450,
    "author": 550,
    "year": 600,
}

#: Eleven index terms standing in for ACM CCS categories, assigned with
#: a Zipf prior (the first terms are common, the tail rare).
ACM_INDEX_TERMS: tuple[str, ...] = (
    "H.2.8-database-applications",
    "H.3.3-information-search",
    "I.2.6-learning",
    "I.5.2-classifier-design",
    "H.2.4-systems",
    "G.3-probability-statistics",
    "H.3.4-systems-software",
    "I.5.3-clustering",
    "H.2.5-heterogeneous-databases",
    "I.2.7-natural-language",
    "F.2.2-nonnumerical-algorithms",
)


def make_acm(
    *,
    n_papers: int = 300,
    link_scale: float = 1.0,
    extra_labels_rate: float = 0.35,
    vocab_size: int = 150,
    words_per_node: int = 25,
    feature_noise: float = 0.8,
    seed=None,
) -> HIN:
    """Generate the ACM-like multi-label publication HIN.

    Parameters
    ----------
    n_papers:
        Number of publication nodes.
    link_scale:
        Multiplier on the per-relation link volumes of
        :data:`ACM_RELATION_LINKS`.
    extra_labels_rate:
        Expected extra index terms per paper beyond the primary one
        (extras shape both links and features, so they are learnable).
    vocab_size, words_per_node, feature_noise:
        Title bag-of-words model; noisy by default — on the paper's ACM
        the relational signal dominates the content signal.
    seed:
        RNG seed or generator.
    """
    n_papers = check_positive_int(n_papers, "n_papers")
    if link_scale <= 0:
        raise ValueError(f"link_scale must be positive, got {link_scale}")
    specs = [
        RelationSpec(
            name=name,
            n_links=int(round(link_scale * ACM_RELATION_LINKS[name])),
            homophily=homophily,
            directed=(name == "citation"),
        )
        for name, homophily in ACM_RELATION_HOMOPHILY.items()
    ]
    priors = 1.0 / np.arange(1, len(ACM_INDEX_TERMS) + 1)
    priors /= priors.sum()
    return make_synthetic_hin(
        n_papers,
        ACM_INDEX_TERMS,
        specs,
        class_priors=priors,
        vocab_size=vocab_size,
        words_per_node=words_per_node,
        feature_noise=feature_noise,
        multilabel=True,
        extra_labels_rate=extra_labels_rate,
        seed=seed,
        metadata={
            "dataset": "acm",
            "relation_homophily": dict(ACM_RELATION_HOMOPHILY),
            "relation_links": dict(ACM_RELATION_LINKS),
        },
    )
