"""DBLP four-area generator (Tables 2–3, Figs. 6, 8, 10).

The paper's DBLP task: classify authors into four research areas (DB,
DM, AI, IR), where each of 20 conferences is one link type and "two
authors have one type of link if they have published papers on the
corresponding conference" — i.e. every conference link type is a *clique*
over its attendees.  The generator mirrors that construction directly:

* each conference samples ``attendees_per_conference`` authors from an
  affinity distribution over areas (mostly its own area; the *purity*
  varies per conference, so some venues are much noisier link types than
  others — the signal T-Mark's relation ranking exploits);
* the attendees are pairwise-linked into the conference's link type;
* a couple of venues (CIKM, WWW) deliberately attract a second community,
  reproducing Table 2's effect of CIKM entering DB's top-5 ranking;
* features are noisy title bag-of-words.

Ground truth for the Table 2 ranking experiment is stored in
``hin.metadata["conference_areas"]`` (primary area per conference) and
``hin.metadata["conference_purity"]``.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import sample_labels, sample_topic_features
from repro.hin.builder import HINBuilder
from repro.hin.graph import HIN
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

#: The paper's Table 1: conferences per research area, in rank order.
DBLP_CONFERENCES: dict[str, list[str]] = {
    "DB": ["VLDB", "SIGMOD", "ICDE", "EDBT", "PODS"],
    "DM": ["KDD", "ICDM", "PAKDD", "SDM", "PKDD"],
    "AI": ["IJCAI", "AAAI", "ICML", "ECML", "CVPR"],
    "IR": ["SIGIR", "CIKM", "ECIR", "WWW", "WSDM"],
}

#: Research areas in paper order.
DBLP_AREAS: tuple[str, ...] = tuple(DBLP_CONFERENCES)

#: Purity of each area's conferences in Table 1 order: the first venues
#: draw almost purely from their own community, the last are noisy
#: (cross-community) link types.  This heterogeneity is what gives the
#: per-class relation ranking (Table 2) its signal.
DEFAULT_CONFERENCE_PURITY: tuple[float, ...] = (0.93, 0.90, 0.85, 0.70, 0.55)

#: Venues with a genuine second community: maps conference -> extra area
#: and the attendee mass it contributes.  CIKM and WWW attract the DB and
#: DM crowds respectively, which is why they show up inside other areas'
#: top rankings in the paper's Table 2.
CROSS_COMMUNITY_VENUES: dict[str, tuple[str, float]] = {
    "CIKM": ("DB", 0.25),
    "WWW": ("DM", 0.20),
}


def make_dblp(
    *,
    n_authors: int = 400,
    attendees_per_conference: int = 35,
    conference_purity: tuple[float, ...] = DEFAULT_CONFERENCE_PURITY,
    vocab_size: int = 120,
    words_per_node: int = 12,
    feature_noise: float = 0.65,
    seed=None,
) -> HIN:
    """Generate the DBLP-like author-classification HIN.

    Parameters
    ----------
    n_authors:
        Number of author nodes (the paper's crawl has 4,057; the default
        keeps the 9-method x 9-fraction grids laptop-fast — the scaling
        ablation bench shows the comparisons are size-stable).
    attendees_per_conference:
        Attendee draws per conference; the clique over the distinct
        attendees becomes the conference's link type.
    conference_purity:
        Purity per within-area conference rank (length 5, Table 1 order).
    vocab_size, words_per_node, feature_noise:
        Title bag-of-words model; noisy enough that content-only
        methods trail the collective ones, as in Table 3.
    seed:
        RNG seed or generator.
    """
    n_authors = check_positive_int(n_authors, "n_authors")
    if len(conference_purity) != 5:
        raise ValueError(
            f"conference_purity must list 5 tiers, got {len(conference_purity)}"
        )
    rng = ensure_rng(seed)
    areas = list(DBLP_AREAS)
    n_areas = len(areas)

    labels = sample_labels(n_authors, n_areas, None, rng)
    features = sample_topic_features(
        labels,
        n_areas,
        vocab_size=vocab_size,
        words_per_node=words_per_node,
        feature_noise=feature_noise,
        rng=rng,
    )

    builder = HINBuilder(areas)
    for idx in range(n_authors):
        builder.add_node(
            f"author_{idx}", features=features[idx], labels=[areas[labels[idx]]]
        )

    members = [np.flatnonzero(labels == c) for c in range(n_areas)]
    all_nodes = np.arange(n_authors)
    conference_areas: dict[str, str] = {}
    purity_map: dict[str, float] = {}
    for area_idx, area in enumerate(areas):
        for rank, conference in enumerate(DBLP_CONFERENCES[area]):
            purity = float(conference_purity[rank])
            conference_areas[conference] = area
            purity_map[conference] = purity
            cross = CROSS_COMMUNITY_VENUES.get(conference)
            attendees: set[int] = set()
            for _ in range(attendees_per_conference):
                draw = rng.random()
                if draw < purity:
                    pool = members[area_idx]
                elif cross is not None and draw < purity + cross[1]:
                    pool = members[areas.index(cross[0])]
                else:
                    pool = all_nodes
                attendees.add(int(rng.choice(pool)))
            builder.link_group(
                [f"author_{i}" for i in sorted(attendees)], conference
            )
    return builder.build(
        metadata={
            "dataset": "dblp",
            "conference_areas": conference_areas,
            "conference_purity": purity_map,
        }
    )
