"""Movies (HetRec IMDB) generator — Tables 4 and 5.

The paper's Movies task: predict one of five genres per movie, where each
of ~439 directors is its own link type joining the handful of movies they
directed, and features are noisy user-tag bags.  Two structural facts
drive the paper's Table 4 outcome (EMR best, everyone far below DBLP
accuracy) and both are reproduced here:

* each director link type is *extremely sparse* — a small clique over
  2–6 movies, useless in isolation;
* tag features are only weakly informative (the paper: "the director and
  the tag information ... are not sufficient for this task").

Each synthetic director has a preferred genre (most of their movies come
from it), giving Table 5's per-genre director ranking a recoverable
ground truth in ``hin.metadata["director_genres"]``.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import sample_labels, sample_topic_features
from repro.hin.builder import HINBuilder
from repro.hin.graph import HIN
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int, check_probability

#: The five genres of section 6.2.
MOVIE_GENRES: tuple[str, ...] = (
    "Adventure",
    "Documentary",
    "Romance",
    "Thriller",
    "War",
)

#: Real director names seeded from the paper's Table 5 (padded with
#: synthetic names when more directors are requested).
DIRECTOR_NAMES: tuple[str, ...] = (
    "Alfred Hitchcock", "Akira Kurosawa", "Steven Spielberg", "Clint Eastwood",
    "Joel Schumacher", "Ivan Reitman", "Woody Allen", "Martin Scorsese",
    "Sydney Pollack", "William Wyler", "Renny Harlin", "George Miller",
    "Oliver Stone", "John Huston", "Phillip Noyce", "Billy Wilder",
    "Peter Jackson", "Howard Hawks", "John Badham", "Wes Craven",
    "Peter Howitt", "Michael Mann", "Oliver Hirschbiegel", "Jim Gillespie",
    "Christian Duguay", "Werner Herzog", "Ron Howard", "Don Siegel",
    "Terry Gilliam", "Kenneth Branagh", "Roger Donaldson", "Brian De Palma",
    "Richard Fleischer", "Michael Apted", "Stephen Hopkins", "John Woo",
    "Ethan Coen", "Sidney Lumet", "John Sturges",
)


def make_movies(
    *,
    n_movies: int = 400,
    n_directors: int = 120,
    movies_per_director: tuple[int, int] = (2, 4),
    director_genre_loyalty: float = 0.65,
    vocab_size: int = 300,
    words_per_node: int = 10,
    feature_noise: float = 0.6,
    seed=None,
) -> HIN:
    """Generate the Movies-like genre-classification HIN.

    Parameters
    ----------
    n_movies:
        Number of movie nodes.
    n_directors:
        Number of director link types.
    movies_per_director:
        Inclusive ``(low, high)`` range of each director's filmography
        size — small on purpose (per-link sparsity).
    director_genre_loyalty:
        Probability each of a director's movies comes from their
        preferred genre (the paper: "most directors prefer one specific
        type of movie").
    vocab_size, words_per_node, feature_noise:
        User-tag bag-of-words model; high noise by default.
    seed:
        RNG seed or generator.
    """
    n_movies = check_positive_int(n_movies, "n_movies")
    n_directors = check_positive_int(n_directors, "n_directors")
    check_probability(director_genre_loyalty, "director_genre_loyalty")
    low, high = movies_per_director
    if not (1 <= low <= high):
        raise ValueError(f"movies_per_director must satisfy 1 <= low <= high, got {movies_per_director}")
    rng = ensure_rng(seed)
    genres = list(MOVIE_GENRES)
    n_genres = len(genres)

    labels = sample_labels(n_movies, n_genres, None, rng)
    features = sample_topic_features(
        labels,
        n_genres,
        vocab_size=vocab_size,
        words_per_node=words_per_node,
        feature_noise=feature_noise,
        rng=rng,
    )

    director_names = list(DIRECTOR_NAMES[:n_directors])
    director_names += [
        f"Director {idx:03d}" for idx in range(len(director_names), n_directors)
    ]

    builder = HINBuilder(genres)
    for idx in range(n_movies):
        builder.add_node(
            f"movie_{idx}", features=features[idx], labels=[genres[labels[idx]]]
        )

    members_by_genre = [np.flatnonzero(labels == c) for c in range(n_genres)]
    director_genres: dict[str, str] = {}
    for name in director_names:
        preferred = int(rng.integers(0, n_genres))
        director_genres[name] = genres[preferred]
        size = int(rng.integers(low, high + 1))
        filmography: set[int] = set()
        for _ in range(size):
            if rng.random() < director_genre_loyalty:
                pool = members_by_genre[preferred]
            else:
                pool = np.arange(n_movies)
            filmography.add(int(rng.choice(pool)))
        builder.link_group(
            [f"movie_{idx}" for idx in sorted(filmography)], name
        )
    return builder.build(
        metadata={"dataset": "movies", "director_genres": director_genres}
    )
