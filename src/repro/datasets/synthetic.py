"""The shared synthetic-HIN engine.

Generates attributed HINs with controlled per-relation *homophily* (the
probability a link joins same-class nodes) and *density* (link count),
plus topic-model bag-of-words features of controlled informativeness.
All four calibrated dataset generators are thin parameterisations of
:func:`make_synthetic_hin`; see DESIGN.md for the calibration table.

Generation model
----------------
* Labels: node classes drawn from ``class_priors`` (single-label) or 1-3
  classes per node (multi-label).
* Features: the vocabulary is split into one topic block per class plus a
  shared-noise block; a node's word counts are multinomial draws from
  ``(1 - feature_noise) * topic_c + feature_noise * uniform``.
* Links: each :class:`RelationSpec` contributes ``n_links`` undirected
  (or directed) links.  With probability ``homophily`` a link is *forced*
  to join two nodes of one class ``c ~ affinity``; otherwise both
  endpoints are drawn uniformly (which still joins same-class nodes at
  the chance rate, so the *effective* same-class link rate is
  ``homophily + (1 - homophily) * chance``).  An optional node pool
  restricts the relation to a subset of nodes (how per-conference /
  per-director / per-tag link types arise).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError
from repro.hin.builder import HINBuilder
from repro.hin.graph import HIN
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int, check_probability


@dataclass(frozen=True)
class RelationSpec:
    """One link type's generation parameters.

    Attributes
    ----------
    name:
        Relation name.
    n_links:
        Number of links to sample.
    homophily:
        Probability a link is forced to join two same-class nodes (the
        remainder is uniform, so same-class links still occur at chance
        rate among the unforced links).
    affinity:
        Distribution over classes used to pick the shared class of
        homophilous links; ``None`` = uniform.
    directed:
        Store links one-way (citations) instead of both ways.
    node_pool:
        Optional node-index subset the relation is restricted to.
    """

    name: str
    n_links: int
    homophily: float = 0.8
    affinity: tuple[float, ...] | None = None
    directed: bool = False
    node_pool: tuple[int, ...] | None = field(default=None, repr=False)

    def __post_init__(self):
        check_probability(self.homophily, "homophily")
        if self.n_links < 0:
            raise DatasetError(f"n_links must be >= 0, got {self.n_links}")


def sample_labels(n_nodes: int, n_classes: int, class_priors, rng) -> np.ndarray:
    """Draw single-label class assignments covering every class."""
    if class_priors is None:
        class_priors = np.full(n_classes, 1.0 / n_classes)
    class_priors = np.asarray(class_priors, dtype=float)
    if class_priors.shape != (n_classes,) or np.any(class_priors < 0):
        raise DatasetError("class_priors must be a non-negative length-q vector")
    total = class_priors.sum()
    if total <= 0:
        raise DatasetError("class_priors must have positive mass")
    class_priors = class_priors / total
    if n_nodes < n_classes:
        raise DatasetError(
            f"need at least {n_classes} nodes to cover every class, got {n_nodes}"
        )
    labels = rng.choice(n_classes, size=n_nodes, p=class_priors)
    # Guarantee coverage: overwrite the first q nodes cyclically if needed.
    for c in range(n_classes):
        if not np.any(labels == c):
            labels[c] = c
    return labels


def class_topics(n_classes: int, vocab_size: int) -> np.ndarray:
    """Per-class topic distributions over disjoint vocabulary blocks."""
    if vocab_size < 2 * n_classes:
        raise DatasetError(
            f"vocab_size must be at least 2 * n_classes = {2 * n_classes}"
        )
    block = vocab_size // (n_classes + 1)
    topics = np.zeros((n_classes, vocab_size))
    for c in range(n_classes):
        start = c * block
        topics[c, start:start + block] = 1.0
        topics[c] /= topics[c].sum()
    return topics


def sample_topic_features(
    labels: np.ndarray,
    n_classes: int,
    *,
    vocab_size: int,
    words_per_node: int,
    feature_noise: float,
    rng,
) -> np.ndarray:
    """Bag-of-words counts from per-class topic distributions.

    ``feature_noise`` is the probability mass each node spends on the
    uniform background (1.0 = completely uninformative features).
    Single-label convenience wrapper over
    :func:`sample_topic_features_from_membership`.
    """
    labels = np.asarray(labels, dtype=np.int64)
    membership = np.zeros((labels.size, n_classes), dtype=bool)
    membership[np.arange(labels.size), labels] = True
    return sample_topic_features_from_membership(
        membership,
        vocab_size=vocab_size,
        words_per_node=words_per_node,
        feature_noise=feature_noise,
        rng=rng,
    )


def sample_topic_features_from_membership(
    membership: np.ndarray,
    *,
    vocab_size: int,
    words_per_node: int,
    feature_noise: float,
    rng,
) -> np.ndarray:
    """Bag-of-words counts; a node's topic is the mean of its labels' topics.

    ``membership`` is an ``(n, q)`` boolean matrix.  Multi-label nodes mix
    their topics, so secondary labels leave a learnable trace in the
    features (the paper's ACM index terms are semantically real, not
    noise).
    """
    check_probability(feature_noise, "feature_noise")
    membership = np.asarray(membership, dtype=bool)
    n_nodes, n_classes = membership.shape
    topics = class_topics(n_classes, vocab_size)
    uniform = np.full(vocab_size, 1.0 / vocab_size)
    features = np.zeros((n_nodes, vocab_size))
    for idx in range(n_nodes):
        labels = np.flatnonzero(membership[idx])
        mix = topics[labels].mean(axis=0) if labels.size else uniform
        mix = (1.0 - feature_noise) * mix + feature_noise * uniform
        features[idx] = rng.multinomial(words_per_node, mix)
    return features


def sample_relation_links(
    spec: RelationSpec,
    labels,
    n_classes: int,
    rng,
) -> list[tuple[int, int]]:
    """Sample the ``(source, target)`` node pairs of one relation.

    ``labels`` is either a length-``n`` integer vector (single-label) or
    an ``(n, q)`` boolean membership matrix (multi-label); homophilous
    links join two nodes *sharing* the drawn class.
    """
    labels = np.asarray(labels)
    if labels.ndim == 1:
        membership = np.zeros((labels.size, n_classes), dtype=bool)
        membership[np.arange(labels.size), labels.astype(np.int64)] = True
    else:
        membership = labels.astype(bool)
    n_nodes = membership.shape[0]
    pool = (
        np.asarray(spec.node_pool, dtype=np.int64)
        if spec.node_pool is not None
        else np.arange(n_nodes)
    )
    if pool.size < 2:
        return []
    affinity = (
        np.asarray(spec.affinity, dtype=float)
        if spec.affinity is not None
        else np.full(n_classes, 1.0 / n_classes)
    )
    if affinity.shape != (n_classes,) or np.any(affinity < 0) or affinity.sum() <= 0:
        raise DatasetError(
            f"relation {spec.name!r}: affinity must be a non-negative length-q vector"
        )
    affinity = affinity / affinity.sum()
    members_by_class = [pool[membership[pool, c]] for c in range(n_classes)]
    # Restrict affinity to classes with >= 2 pool members (pairable).
    pairable = np.array([m.size >= 2 for m in members_by_class])
    links: list[tuple[int, int]] = []
    for _ in range(spec.n_links):
        same_class = rng.random() < spec.homophily and np.any(pairable & (affinity > 0))
        if same_class:
            weights = np.where(pairable, affinity, 0.0)
            total = weights.sum()
            if total <= 0:
                weights = pairable.astype(float)
                total = weights.sum()
            c = rng.choice(n_classes, p=weights / total)
            u, v = rng.choice(members_by_class[c], size=2, replace=False)
        else:
            u, v = rng.choice(pool, size=2, replace=False)
        links.append((int(u), int(v)))
    return links


def make_synthetic_hin(
    n_nodes: int,
    label_names,
    relation_specs,
    *,
    class_priors=None,
    vocab_size: int = 100,
    words_per_node: int = 40,
    feature_noise: float = 0.3,
    multilabel: bool = False,
    extra_labels_rate: float = 0.3,
    seed=None,
    metadata: dict | None = None,
) -> HIN:
    """Generate an attributed HIN (fully labeled — mask splits later).

    Parameters
    ----------
    n_nodes:
        Number of nodes.
    label_names:
        The class-label space.
    relation_specs:
        Iterable of :class:`RelationSpec`.
    class_priors:
        Class distribution for the primary label; ``None`` = uniform.
    vocab_size, words_per_node, feature_noise:
        Bag-of-words feature model (see :func:`sample_topic_features`).
    multilabel:
        Give nodes extra secondary labels (ACM-style).
    extra_labels_rate:
        Expected number of *additional* labels per node when
        ``multilabel`` is on.
    seed:
        RNG seed or generator.
    metadata:
        Stored on the returned HIN (generator ground truth).
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    rng = ensure_rng(seed)
    label_names = [str(c) for c in label_names]
    n_classes = len(label_names)
    if n_classes < 2:
        raise DatasetError("need at least two classes")
    specs = list(relation_specs)
    if not specs:
        raise DatasetError("need at least one RelationSpec")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise DatasetError("relation names must be distinct")

    labels = sample_labels(n_nodes, n_classes, class_priors, rng)
    membership = np.zeros((n_nodes, n_classes), dtype=bool)
    membership[np.arange(n_nodes), labels] = True
    if multilabel:
        check_probability(min(extra_labels_rate, 1.0), "extra_labels_rate")
        for idx in range(n_nodes):
            n_extra = rng.poisson(extra_labels_rate)
            for _ in range(n_extra):
                membership[idx, int(rng.integers(0, n_classes))] = True

    # Features and links are derived from the full membership, so
    # secondary labels are learnable from both channels.
    features = sample_topic_features_from_membership(
        membership,
        vocab_size=vocab_size,
        words_per_node=words_per_node,
        feature_noise=feature_noise,
        rng=rng,
    )

    builder = HINBuilder(label_names, multilabel=multilabel)
    for idx in range(n_nodes):
        builder.add_node(
            f"node_{idx}",
            features=features[idx],
            labels=[label_names[c] for c in np.flatnonzero(membership[idx])],
        )
    link_labels = membership if multilabel else labels
    for spec in specs:
        builder.add_relation(spec.name)
        for u, v in sample_relation_links(spec, link_labels, n_classes, rng):
            builder.add_link(
                f"node_{u}", f"node_{v}", spec.name, directed=spec.directed
            )
    return builder.build(metadata=metadata)
