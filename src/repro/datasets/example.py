"""The section 3.2 / 4.3 worked example: four publications, three relations.

The paper walks through T-Mark on a tiny DBLP subgraph:

* publications ``p1..p4``;
* "co-author": ``p1 -- p2`` (shared author Jiawei Han);
* "citation" (directed): ``p3 -> p2``, ``p3 -> p4``, ``p4 -> p1``;
* "same-conference": ``p2 -- p3`` (both at WWW);
* cosine feature similarity ``C = [[1,0,0,1],[0,1,1,0],[0,1,1,0],[1,0,0,1]]``
  — realised here with orthogonal two-dimensional features;
* labels: ``p1 = DM``, ``p2 = CV``; ground truth for the unlabeled nodes
  (``p3 = CV``, ``p4 = DM``) is stored in metadata.

Golden tests check the resulting tensors and the qualitative outcome the
paper reports (p3 -> CV, p4 -> DM; co-author and citation outrank
same-conference for the DM class).
"""

from __future__ import annotations

from repro.hin.builder import HINBuilder
from repro.hin.graph import HIN

#: Feature vectors giving exactly the paper's cosine matrix C.
_EXAMPLE_FEATURES = {
    "p1": [1.0, 0.0],
    "p2": [0.0, 1.0],
    "p3": [0.0, 1.0],
    "p4": [1.0, 0.0],
}

#: The ground-truth classes of the unlabeled nodes (section 4.3).
EXAMPLE_GROUND_TRUTH = {"p3": "CV", "p4": "DM"}


def make_worked_example() -> HIN:
    """Build the exact 4-publication HIN of section 3.2."""
    builder = HINBuilder(label_names=["DM", "CV"])
    builder.add_node("p1", features=_EXAMPLE_FEATURES["p1"], labels=["DM"])
    builder.add_node("p2", features=_EXAMPLE_FEATURES["p2"], labels=["CV"])
    builder.add_node("p3", features=_EXAMPLE_FEATURES["p3"])
    builder.add_node("p4", features=_EXAMPLE_FEATURES["p4"])
    # Relation order matches the paper's tensor slices.
    builder.add_relation("co-author")
    builder.add_relation("citation")
    builder.add_relation("same-conference")
    builder.add_link("p1", "p2", "co-author")
    builder.add_link("p3", "p2", "citation", directed=True)
    builder.add_link("p3", "p4", "citation", directed=True)
    builder.add_link("p4", "p1", "citation", directed=True)
    builder.add_link("p2", "p3", "same-conference")
    return builder.build(
        metadata={"dataset": "worked-example", "ground_truth": EXAMPLE_GROUND_TRUTH}
    )
