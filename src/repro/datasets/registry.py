"""Named dataset factories with a single scale knob.

Central place mapping dataset names to their calibrated generators, so
the experiment runners, benches and user code construct identical
networks.  ``scale`` multiplies node counts; link densities are
compensated so the structural regime (per-node degree, homophily) stays
invariant — see docs/datasets.md for why DBLP needs the sqrt.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.acm import make_acm
from repro.datasets.dblp import make_dblp
from repro.datasets.movies import make_movies
from repro.datasets.nus import make_nus
from repro.errors import ValidationError
from repro.hin.graph import HIN


def scaled_dblp(scale: float = 1.0, seed=None) -> HIN:
    """DBLP at ``scale`` (conference attendance grows with sqrt(scale)
    so clique degree — hence relational signal strength — is scale-free)."""
    return make_dblp(
        n_authors=max(80, int(round(400 * scale))),
        attendees_per_conference=max(10, int(round(35 * scale**0.5))),
        seed=seed,
    )


def scaled_movies(scale: float = 1.0, seed=None) -> HIN:
    """Movies at ``scale`` (director count scales with the node count,
    filmography sizes stay fixed, so per-relation sparsity is preserved)."""
    return make_movies(
        n_movies=max(100, int(round(400 * scale))),
        n_directors=max(20, int(round(120 * scale))),
        seed=seed,
    )


def scaled_nus(scale: float = 1.0, seed=None, *, tagset: str = "tagset1") -> HIN:
    """NUS at ``scale`` (links per tag scale linearly, keeping degree)."""
    return make_nus(
        tagset=tagset,
        n_images=max(100, int(round(400 * scale))),
        links_per_relevant_tag=max(10, int(round(55 * scale))),
        links_per_frequent_tag=max(15, int(round(90 * scale))),
        seed=seed,
    )


def scaled_acm(scale: float = 1.0, seed=None) -> HIN:
    """ACM at ``scale`` (link volumes scale linearly)."""
    return make_acm(
        n_papers=max(80, int(round(300 * scale))),
        link_scale=max(0.25, scale),
        seed=seed,
    )


#: name -> scaled factory (callables taking ``(scale, seed, **kwargs)``).
DATASET_FACTORIES: dict[str, Callable[..., HIN]] = {
    "dblp": scaled_dblp,
    "movies": scaled_movies,
    "nus": scaled_nus,
    "acm": scaled_acm,
}


def dataset_names() -> list[str]:
    """The registered dataset names."""
    return list(DATASET_FACTORIES)


def get_dataset(name: str, *, scale: float = 1.0, seed=None, **kwargs) -> HIN:
    """Build a registered dataset by name at the given scale."""
    try:
        factory = DATASET_FACTORIES[name]
    except KeyError:
        raise ValidationError(
            f"unknown dataset {name!r}; known: {dataset_names()}"
        ) from None
    return factory(scale, seed, **kwargs)
