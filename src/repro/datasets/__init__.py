"""Dataset generators calibrated to the paper's four evaluation datasets.

The original archives (DBLP four-area, HetRec Movies, NUS-WIDE, ACM-DL)
cannot be downloaded in this environment, so each is replaced by a
synthetic generator that preserves the structural properties T-Mark and
the baselines are sensitive to — per-link-type class homophily, density
and feature informativeness.  DESIGN.md documents each substitution.

* :func:`~repro.datasets.synthetic.make_synthetic_hin` — the shared
  engine: classes, topic-model features, per-relation link sampling.
* :func:`~repro.datasets.dblp.make_dblp` — 4 research areas x 5 named
  conferences (Tables 2–3, Figs. 6, 8, 10).
* :func:`~repro.datasets.movies.make_movies` — sparse per-director link
  types, 5 genres (Tables 4–5).
* :func:`~repro.datasets.nus.make_nus` — Tagset1 (homophilous tags) vs
  Tagset2 (frequent tags) over the same images (Tables 6–10, Figs. 7, 9).
* :func:`~repro.datasets.acm.make_acm` — 6 link types, multi-label index
  terms (Table 11, Fig. 5).
* :func:`~repro.datasets.example.make_worked_example` — the exact
  4-publication HIN of section 3.2.
"""

from repro.datasets.acm import make_acm
from repro.datasets.dblp import DBLP_CONFERENCES, make_dblp
from repro.datasets.example import make_worked_example
from repro.datasets.movies import make_movies
from repro.datasets.nus import make_nus
from repro.datasets.registry import dataset_names, get_dataset
from repro.datasets.synthetic import RelationSpec, make_synthetic_hin

__all__ = [
    "RelationSpec",
    "make_synthetic_hin",
    "make_dblp",
    "DBLP_CONFERENCES",
    "make_movies",
    "make_nus",
    "make_acm",
    "make_worked_example",
    "get_dataset",
    "dataset_names",
]
