"""A sparse 3-way tensor in coordinate (COO) format.

:class:`SparseTensor3` stores the HIN adjacency tensor ``A`` of the paper
(section 3.1): shape ``(n, n, m)`` with ``A[i, j, k]`` the weight of the
link from node ``j`` to node ``i`` through relation ``k``.  Only non-zero
entries are stored, which matters because real HINs have ``nnz`` in the
tens of thousands while ``n^2 * m`` is astronomically larger.

The class is immutable after construction; duplicate coordinates are summed
on construction (standard COO semantics).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError, ValidationError


class SparseTensor3:
    """Immutable sparse tensor of shape ``(n, n, m)``.

    Parameters
    ----------
    i, j, k:
        Integer coordinate arrays of equal length.  ``i`` and ``j`` index
        nodes (``0 <= i, j < n``); ``k`` indexes relations
        (``0 <= k < m``).
    values:
        Non-negative entry values; ``None`` means all ones (unweighted
        links, the paper's setting).
    shape:
        The tuple ``(n, n, m)``.

    Notes
    -----
    Duplicate ``(i, j, k)`` coordinates are summed.  Entries that sum to
    zero are dropped.
    """

    __slots__ = ("_i", "_j", "_k", "_values", "_n", "_m")

    def __init__(self, i, j, k, values=None, *, shape: tuple[int, int, int]):
        if len(shape) != 3 or shape[0] != shape[1]:
            raise ShapeError(
                f"shape must be (n, n, m) with equal first axes, got {shape}"
            )
        n, _, m = (int(s) for s in shape)
        if n <= 0 or m <= 0:
            raise ShapeError(f"shape axes must be positive, got {shape}")

        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        if not (i.shape == j.shape == k.shape) or i.ndim != 1:
            raise ShapeError("i, j, k must be 1-D arrays of equal length")
        if values is None:
            values = np.ones(i.size, dtype=float)
        else:
            values = np.asarray(values, dtype=float)
            if values.shape != i.shape:
                raise ShapeError("values must match the coordinate arrays in length")
        if i.size:
            if i.min(initial=0) < 0 or i.max(initial=0) >= n:
                raise ValidationError(f"i coordinates out of range [0, {n})")
            if j.min(initial=0) < 0 or j.max(initial=0) >= n:
                raise ValidationError(f"j coordinates out of range [0, {n})")
            if k.min(initial=0) < 0 or k.max(initial=0) >= m:
                raise ValidationError(f"k coordinates out of range [0, {m})")
        if np.any(values < 0) or not np.all(np.isfinite(values)):
            raise ValidationError("tensor values must be finite and non-negative")

        # Coalesce duplicates by flattening to a single linear index.
        flat = (k * n + j) * n + i
        order = np.argsort(flat, kind="stable")
        flat = flat[order]
        values = values[order]
        if flat.size:
            unique_flat, inverse = np.unique(flat, return_inverse=True)
            summed = np.bincount(inverse, weights=values)
            keep = summed > 0
            unique_flat = unique_flat[keep]
            summed = summed[keep]
        else:
            unique_flat = flat
            summed = values

        self._i = (unique_flat % n).astype(np.int64)
        rest = unique_flat // n
        self._j = (rest % n).astype(np.int64)
        self._k = (rest // n).astype(np.int64)
        self._values = summed.astype(float)
        for arr in (self._i, self._j, self._k, self._values):
            arr.setflags(write=False)
        self._n = n
        self._m = m

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_slices(cls, slices: Iterable, n: int | None = None) -> "SparseTensor3":
        """Build a tensor from per-relation adjacency matrices.

        ``slices`` is an iterable of ``(n, n)`` arrays or scipy sparse
        matrices; slice ``k`` becomes the frontal slice ``A[:, :, k]``
        (entry convention: ``slice[i, j]`` = weight of link ``j -> i``).
        """
        mats = [sp.coo_matrix(s) for s in slices]
        if not mats:
            raise ShapeError("at least one slice is required")
        inferred = mats[0].shape[0]
        n = inferred if n is None else int(n)
        for idx, mat in enumerate(mats):
            if mat.shape != (n, n):
                raise ShapeError(
                    f"slice {idx} has shape {mat.shape}, expected ({n}, {n})"
                )
        i = np.concatenate([m.row for m in mats]) if mats else np.empty(0, int)
        j = np.concatenate([m.col for m in mats])
        k = np.concatenate(
            [np.full(m.nnz, idx, dtype=np.int64) for idx, m in enumerate(mats)]
        )
        values = np.concatenate([m.data for m in mats])
        return cls(i, j, k, values, shape=(n, n, len(mats)))

    @classmethod
    def from_dense(cls, array) -> "SparseTensor3":
        """Build a tensor from a dense ``(n, n, m)`` numpy array."""
        arr = np.asarray(array, dtype=float)
        if arr.ndim != 3 or arr.shape[0] != arr.shape[1]:
            raise ShapeError(f"expected a dense (n, n, m) array, got {arr.shape}")
        i, j, k = np.nonzero(arr)
        return cls(i, j, k, arr[i, j, k], shape=arr.shape)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int, int]:
        """The tensor shape ``(n, n, m)``."""
        return (self._n, self._n, self._m)

    @property
    def n_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def n_relations(self) -> int:
        """Number of link types ``m``."""
        return self._m

    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries."""
        return self._values.size

    @property
    def coords(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The coordinate arrays ``(i, j, k)`` (read-only views)."""
        return self._i, self._j, self._k

    @property
    def values(self) -> np.ndarray:
        """The non-zero entry values (read-only view)."""
        return self._values

    def __repr__(self) -> str:
        return (
            f"SparseTensor3(shape=({self._n}, {self._n}, {self._m}), "
            f"nnz={self.nnz})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, SparseTensor3):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self._i, other._i)
            and np.array_equal(self._j, other._j)
            and np.array_equal(self._k, other._k)
            and np.allclose(self._values, other._values)
        )

    def __hash__(self):  # pragma: no cover - explicit unhashability
        raise TypeError("SparseTensor3 is not hashable")

    # ------------------------------------------------------------------
    # Views and conversions
    # ------------------------------------------------------------------
    def relation_slice(self, k: int) -> sp.csr_matrix:
        """Return frontal slice ``A[:, :, k]`` as a CSR matrix.

        Entry ``[i, j]`` is the weight of the link ``j -> i`` through
        relation ``k``.
        """
        if not 0 <= k < self._m:
            raise ValidationError(f"relation index {k} out of range [0, {self._m})")
        mask = self._k == k
        return sp.csr_matrix(
            (self._values[mask], (self._i[mask], self._j[mask])),
            shape=(self._n, self._n),
        )

    def relation_slices(self) -> list[sp.csr_matrix]:
        """Return all ``m`` frontal slices (see :meth:`relation_slice`)."""
        return [self.relation_slice(k) for k in range(self._m)]

    def aggregate_relations(self) -> sp.csr_matrix:
        """Sum the tensor over its relation axis into one ``(n, n)`` matrix.

        This is the "merge all link types" operation used by the ICA
        baseline (section 6 of the paper).
        """
        return sp.csr_matrix(
            (self._values, (self._i, self._j)), shape=(self._n, self._n)
        )

    def unfold(self, mode: int) -> sp.csr_matrix:
        """Matricize the tensor along ``mode`` (1 or 3, as in section 3.2).

        * mode 1: shape ``(n, n*m)``; column ``k*n + j`` holds fibre
          ``A[:, j, k]`` — the layout of the paper's ``A_(1)`` example.
        * mode 3: shape ``(m, n*n)``; column ``j*n + i`` holds fibre
          ``A[i, j, :]`` — the layout of the paper's ``A_(3)`` example.
        """
        if mode == 1:
            cols = self._k * self._n + self._j
            return sp.csr_matrix(
                (self._values, (self._i, cols)),
                shape=(self._n, self._n * self._m),
            )
        if mode == 3:
            cols = self._j * self._n + self._i
            return sp.csr_matrix(
                (self._values, (self._k, cols)),
                shape=(self._m, self._n * self._n),
            )
        raise ValidationError(f"mode must be 1 or 3, got {mode}")

    def to_dense(self) -> np.ndarray:
        """Materialise the full dense ``(n, n, m)`` array (small tensors only)."""
        dense = np.zeros(self.shape)
        dense[self._i, self._j, self._k] = self._values
        return dense

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def mode1_column_sums(self) -> np.ndarray:
        """Sums over ``i`` for every ``(j, k)`` fibre, as a flat ``n*m`` array.

        Index ``k*n + j`` (mode-1 column order).  Zero entries mark the
        dangling columns that Eq. 1 replaces with the uniform 1/n.
        """
        cols = self._k * self._n + self._j
        return np.bincount(
            cols, weights=self._values, minlength=self._n * self._m
        ).astype(float)

    def mode3_fibre_sums(self) -> np.ndarray:
        """Sums over ``k`` for every ``(i, j)`` fibre, flat ``n*n`` array.

        Index ``j*n + i`` (mode-3 column order).  Zero entries mark the
        node pairs with no relation, replaced by uniform 1/m in Eq. 2.
        """
        cols = self._j * self._n + self._i
        return np.bincount(
            cols, weights=self._values, minlength=self._n * self._n
        ).astype(float)

    def relation_degrees(self) -> np.ndarray:
        """Total link weight per relation (length ``m``)."""
        return np.bincount(self._k, weights=self._values, minlength=self._m).astype(float)

    def transpose_nodes(self) -> "SparseTensor3":
        """Swap the two node axes (reverse every link's direction)."""
        return SparseTensor3(
            self._j, self._i, self._k, self._values, shape=self.shape
        )

    def symmetrized(self) -> "SparseTensor3":
        """Return ``A + A^T`` over the node axes (make every link two-way)."""
        i = np.concatenate([self._i, self._j])
        j = np.concatenate([self._j, self._i])
        k = np.concatenate([self._k, self._k])
        values = np.concatenate([self._values, self._values])
        return SparseTensor3(i, j, k, values, shape=self.shape)
