"""Reference (dense, brute-force) tensor-vector contractions.

These mirror the definitions in section 4.1 of the paper:

* ``(T x-bar_1 x x-bar_3 z)_i = sum_j sum_k T[i, j, k] x[j] z[k]``
* ``(T x-bar_1 x x-bar_2 y)_k = sum_i sum_j T[i, j, k] x[i] y[j]``

They exist to cross-check the optimised sparse implementations in
:mod:`repro.tensor.transition` (property tests assert elementwise equality
on random tensors) and to keep the maths of the paper readable in code.
They are O(n^2 m) and meant for small inputs only.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.utils.validation import check_array_1d, check_array_2d


def dense_mode13_product(tensor: np.ndarray, x: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Compute ``T x-bar_1 x x-bar_3 z`` on a dense ``(n, n, m)`` array.

    Returns the length-``n`` vector with entries
    ``sum_{j,k} T[i, j, k] * x[j] * z[k]``.
    """
    arr = np.asarray(tensor, dtype=float)
    if arr.ndim != 3 or arr.shape[0] != arr.shape[1]:
        raise ShapeError(f"expected a dense (n, n, m) tensor, got {arr.shape}")
    n, _, m = arr.shape
    x = check_array_1d(x, "x", size=n)
    z = check_array_1d(z, "z", size=m)
    return np.einsum("ijk,j,k->i", arr, x, z)


def dense_mode12_product(tensor: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Compute ``T x-bar_1 x x-bar_2 y`` on a dense ``(n, n, m)`` array.

    Returns the length-``m`` vector with entries
    ``sum_{i,j} T[i, j, k] * x[i] * y[j]``.
    """
    arr = np.asarray(tensor, dtype=float)
    if arr.ndim != 3 or arr.shape[0] != arr.shape[1]:
        raise ShapeError(f"expected a dense (n, n, m) tensor, got {arr.shape}")
    n, _, m = arr.shape
    x = check_array_1d(x, "x", size=n)
    y = check_array_1d(y, "y", size=n)
    return np.einsum("ijk,i,j->k", arr, x, y)


def dense_mode13_product_many(
    tensor: np.ndarray, X: np.ndarray, Z: np.ndarray
) -> np.ndarray:
    """Batched :func:`dense_mode13_product` over column-stacked pairs.

    ``X`` is ``(n, q)`` and ``Z`` is ``(m, q)``; column ``c`` of the
    ``(n, q)`` result is ``T x-bar_1 X[:, c] x-bar_3 Z[:, c]``.  The
    dense cross-check for ``NodeTransitionTensor.propagate_many``.
    """
    arr = np.asarray(tensor, dtype=float)
    if arr.ndim != 3 or arr.shape[0] != arr.shape[1]:
        raise ShapeError(f"expected a dense (n, n, m) tensor, got {arr.shape}")
    n, _, m = arr.shape
    X = check_array_2d(X, "X", shape=(n, None))
    Z = check_array_2d(Z, "Z", shape=(m, X.shape[1]))
    return np.einsum("ijk,jc,kc->ic", arr, X, Z)


def dense_mode12_product_many(
    tensor: np.ndarray, X: np.ndarray, Y: np.ndarray
) -> np.ndarray:
    """Batched :func:`dense_mode12_product` over column-stacked pairs.

    ``X`` and ``Y`` are ``(n, q)``; column ``c`` of the ``(m, q)`` result
    is ``T x-bar_1 X[:, c] x-bar_2 Y[:, c]``.  The dense cross-check for
    ``RelationTransitionTensor.propagate_many``.
    """
    arr = np.asarray(tensor, dtype=float)
    if arr.ndim != 3 or arr.shape[0] != arr.shape[1]:
        raise ShapeError(f"expected a dense (n, n, m) tensor, got {arr.shape}")
    n, _, m = arr.shape
    X = check_array_2d(X, "X", shape=(n, None))
    Y = check_array_2d(Y, "Y", shape=(n, X.shape[1]))
    return np.einsum("ijk,ic,jc->kc", arr, X, Y)
