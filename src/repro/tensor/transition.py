"""Transition probability tensors ``O`` and ``R`` (Eq. 1 and 2).

``O[i, j, k] = A[i, j, k] / sum_i A[i, j, k]`` is the probability of
stepping to node ``i`` given the walk sits at node ``j`` and uses relation
``k``.  ``R[i, j, k] = A[i, j, k] / sum_k A[i, j, k]`` is the probability
of using relation ``k`` for the step ``j -> i``.

Dangling fibres — a ``(j, k)`` column with no out-weight, or an ``(i, j)``
pair with no relation — are defined by the paper as uniform (``1/n`` resp.
``1/m``).  Materialising those would destroy sparsity (*every* node pair
without a link is an ``R`` dangling fibre), so both classes keep the sparse
normalised part and apply the uniform correction *analytically* inside
their product methods.  The corrections are exact: when the inputs are
probability distributions the outputs are too (Theorem 1).

Kernel layout
-------------
Both tensors expose two contraction entry points:

* ``propagate(x, z)`` — one distribution pair, the Algorithm 1 step;
* ``propagate_many(X, Z)`` — ``q`` distribution pairs at once, stacked as
  columns of ``(n, q)`` / ``(m, q)`` matrices.  This is the kernel behind
  T-Mark's batched multi-class fit: all per-class chains advance through
  one set of sparse products instead of ``q`` sequential passes.

``O`` is stored as its ``m`` per-relation ``(n, n)`` CSR slices ``M_k``
(column ``j`` of ``M_k`` is the normalised fibre ``O[:, j, k]``), so the
contraction ``O x-bar_1 x x-bar_3 z`` becomes ``sum_k z_k (M_k @ x)``
with *no* ``(n * m)``-sized Kronecker temporary; batching ``q`` columns
through each ``M_k`` amortises the sparse-structure traversal across all
classes.  ``propagate`` delegates to ``propagate_many`` on a single
column, which guarantees the two paths are the same floating-point
computation — the property the batched-fit equivalence tests pin down.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.errors import ShapeError, ValidationError
from repro.tensor.sptensor import SparseTensor3
from repro.utils.validation import check_array_1d, check_array_2d


def _column_sums(matrix: np.ndarray) -> np.ndarray:
    """Per-column sums via 1-D reductions.

    ``matrix.sum(axis=0)`` uses a different accumulation order than a 1-D
    column sum, so its result depends on how many columns ride along in
    the batch.  Summing column by column keeps ``propagate_many`` output
    bit-for-bit identical to per-column ``propagate`` calls — the
    batching contract the property tests pin down.  The loop is over the
    (small) column count; each reduction is numpy-vectorised.
    """
    out = np.empty(matrix.shape[1])
    for c in range(matrix.shape[1]):
        out[c] = matrix[:, c].sum()
    return out


class NodeTransitionTensor:
    """The node-transition tensor ``O`` of Eq. 1, with implicit dangling mass.

    Stores the normalised tensor as ``m`` per-relation ``(n, n)`` CSR
    slices (plus the mode-1 matricization for :meth:`matricized` /
    :meth:`to_dense`) and an ``(m, n)`` indicator of the non-dangling
    ``(j, k)`` columns used to vectorise the uniform correction.
    """

    __slots__ = ("_mat", "_slices", "_nondangling_cols", "_nd_indicator", "_n", "_m")

    def __init__(self, tensor: SparseTensor3):
        n, _, m = tensor.shape
        self._n = n
        self._m = m
        unfolded = tensor.unfold(1).tocsc()
        col_sums = tensor.mode1_column_sums()
        nondangling = col_sums > 0
        # Normalise each non-dangling column to sum to one.
        scale = np.ones_like(col_sums)
        scale[nondangling] = 1.0 / col_sums[nondangling]
        unfolded = (unfolded @ sp.diags(scale)).tocsc()
        self._mat = unfolded.tocsr()
        # Mode-1 column k*n + j holds fibre O[:, j, k]: slicing the CSC
        # unfolding into n-column blocks yields the per-relation slices.
        self._slices = tuple(
            unfolded[:, k * n : (k + 1) * n].tocsr() for k in range(m)
        )
        self._nondangling_cols = np.flatnonzero(nondangling)
        k_nd, j_nd = np.divmod(self._nondangling_cols, n)
        self._nd_indicator = sp.csr_matrix(
            (np.ones(self._nondangling_cols.size), (k_nd, j_nd)), shape=(m, n)
        )

    @classmethod
    def from_parts(cls, slices, nondangling_cols, *, n: int, m: int):
        """Assemble a tensor directly from normalised per-relation slices.

        The constructor behind ``repro.stream``'s incremental operator
        maintenance: after a delta batch, only the touched slices are
        rebuilt and the untouched CSR objects are reused as-is.  The
        caller guarantees each slice column either sums to one or is
        empty, and that ``nondangling_cols`` (mode-1 flat ids
        ``k*n + j``, sorted) lists exactly the non-empty columns.  The
        mode-1 matricization is assembled lazily on first use —
        :meth:`propagate_many` never needs it.
        """
        if len(slices) != m:
            raise ShapeError(f"expected {m} slices, got {len(slices)}")
        self = object.__new__(cls)
        self._n = int(n)
        self._m = int(m)
        self._slices = tuple(slices)
        self._mat = None
        self._nondangling_cols = np.asarray(nondangling_cols, dtype=np.int64)
        k_nd, j_nd = np.divmod(self._nondangling_cols, self._n)
        self._nd_indicator = sp.csr_matrix(
            (np.ones(self._nondangling_cols.size), (k_nd, j_nd)),
            shape=(self._m, self._n),
        )
        return self

    def _matricized(self) -> sp.csr_matrix:
        if self._mat is None:
            self._mat = sp.hstack(self._slices, format="csr")
        return self._mat

    @property
    def shape(self) -> tuple[int, int, int]:
        """Logical tensor shape ``(n, n, m)``."""
        return (self._n, self._n, self._m)

    @property
    def n_dangling(self) -> int:
        """Number of dangling ``(j, k)`` columns (uniform 1/n fibres)."""
        return self._n * self._m - self._nondangling_cols.size

    @property
    def dangling_share(self) -> float:
        """Fraction of the ``n * m`` mode-1 columns that are dangling.

        The share of the walk's conditional distributions the O-build
        had to repair with the analytic uniform ``1/n`` fibre; reported
        by the ``invariant_probe`` diagnostics so a network whose
        propagation is dominated by the uniform correction is visible.
        """
        return self.n_dangling / (self._n * self._m)

    def matricized(self) -> sp.csr_matrix:
        """The sparse part of the mode-1 matricization (dangling cols zero)."""
        return self._matricized().copy()

    def relation_slice(self, k: int) -> sp.csr_matrix:
        """The normalised ``(n, n)`` slice ``M_k`` (dangling columns zero)."""
        if not 0 <= k < self._m:
            raise ValidationError(f"relation index {k} out of range [0, {self._m})")
        return self._slices[k].copy()

    @property
    def relation_nnz(self) -> tuple[int, ...]:
        """Stored entries per relation slice (``M_k.nnz``).

        A slice with zero entries is skipped by :meth:`propagate_many`;
        sharded row workers replicate exactly that skip condition, so
        the *global* counts — not the per-shard ones — are what they
        consult.
        """
        return tuple(int(slice_k.nnz) for slice_k in self._slices)

    def row_blocks(self, start: int, stop: int) -> tuple[sp.csr_matrix, ...]:
        """Rows ``[start, stop)`` of every relation slice, as CSR blocks.

        CSR row slicing copies only the block's entries, and a sparse
        row block times a dense matrix reproduces the corresponding rows
        of the full product bit-for-bit — the property the sharded fit's
        bit-identity contract rests on.
        """
        return tuple(slice_k[start:stop] for slice_k in self._slices)

    def row_nnz(self) -> np.ndarray:
        """Per-row stored-entry counts summed over all relation slices.

        The balanced-nnz shard planner's row weights: row ``i``'s cost in
        the O-propagation is proportional to its entries across slices.
        """
        weights = np.zeros(self._n, dtype=np.int64)
        for slice_k in self._slices:
            weights += np.diff(slice_k.indptr)
        return weights

    def dangling_mass(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        """The per-column uncovered mass the uniform ``1/n`` fibres carry.

        Exactly the correction term :meth:`propagate_many` adds (before
        the ``1/n`` scaling): ``max(colsum(X) * colsum(Z) -
        colsum(Z * (nd @ X)), 0)``.  Exposed so the sharded fit's
        coordinator can compute the global scalar part of the
        propagation itself — it is a column-global reduction that must
        not be split across shards if bit-identity is to hold.
        """
        totals = _column_sums(X) * _column_sums(Z)
        covered = _column_sums(Z * (self._nd_indicator @ X))
        return np.maximum(totals - covered, 0.0)

    def propagate(self, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Compute ``O x-bar_1 x x-bar_3 z`` (the contraction in Eq. 7/10).

        Returns the length-``n`` vector with entries
        ``sum_{j,k} O[i, j, k] * x[j] * z[k]`` including the uniform
        contribution of dangling columns.  Delegates to
        :meth:`propagate_many` on a single column so the looped and
        batched paths are the identical floating-point computation.
        """
        x = check_array_1d(x, "x", size=self._n)
        z = check_array_1d(z, "z", size=self._m)
        return self.propagate_many(x[:, None], z[:, None])[:, 0]

    def propagate_many(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        """Batched contraction: ``q`` pairs ``(x, z)`` stacked as columns.

        Parameters
        ----------
        X:
            ``(n, q)`` matrix; column ``c`` is a node distribution.
        Z:
            ``(m, q)`` matrix; column ``c`` is a relation distribution.

        Returns
        -------
        ``(n, q)`` matrix whose column ``c`` equals
        ``propagate(X[:, c], Z[:, c])``: the sparse part is
        ``sum_k Z[k, c] * (M_k @ X[:, c])`` computed as ``m`` sparse
        matrix-matrix products shared by all columns, and the dangling
        ``1/n`` correction is applied per column from the analytically
        tracked uncovered mass.
        """
        X = check_array_2d(X, "X", shape=(self._n, None))
        Z = check_array_2d(Z, "Z", shape=(self._m, X.shape[1]))
        result = np.zeros_like(X)
        for k, slice_k in enumerate(self._slices):
            if slice_k.nnz == 0:
                continue
            contribution = slice_k @ X
            contribution *= Z[k]
            result += contribution
        dangling = self.dangling_mass(X, Z)
        result += dangling / self._n
        return result

    def to_dense(self) -> np.ndarray:
        """Materialise the full ``(n, n, m)`` tensor including dangling fibres.

        Intended for tests and tiny examples only.
        """
        dense = np.full((self._n, self._n, self._m), 0.0)
        mat = self._matricized().tocoo()
        k, j = np.divmod(mat.col, self._n)
        dense[mat.row, j, k] = mat.data
        dangling = np.ones(self._n * self._m, dtype=bool)
        dangling[self._nondangling_cols] = False
        for col in np.flatnonzero(dangling):
            k, j = divmod(col, self._n)
            dense[:, j, k] = 1.0 / self._n
        return dense


class RelationTransitionTensor:
    """The relation-transition tensor ``R`` of Eq. 2, with implicit dangling mass.

    Stores the normalised entries as ``m`` per-relation ``(n, n)`` CSR
    slices ``B_k`` (``B_k[i, j] = R[i, j, k]``) plus an ``(n, n)``
    indicator of the linked ``(i, j)`` pairs, so both the per-relation
    reductions and the uniform ``1/m`` correction for unlinked pairs are
    sparse matrix products shared by every column of a batch — no
    ``(nnz, q)`` gather temporary.
    """

    __slots__ = (
        "_rel_slices",
        "_pair_indicator",
        "_pair_i",
        "_pair_j",
        "_n",
        "_m",
    )

    def __init__(self, tensor: SparseTensor3):
        n, _, m = tensor.shape
        self._n = n
        self._m = m
        i, j, k = tensor.coords
        values = tensor.values
        fibre_sums = tensor.mode3_fibre_sums()
        fibre_idx = j * n + i
        norm_values = values / fibre_sums[fibre_idx]
        # B_k holds relation k's normalised entries at (i, j): the Eq. 8
        # reduction z_k = sum_{i,j} R[i,j,k] x_i y_j becomes the bilinear
        # form x^T (B_k @ y), batched over columns.
        order = np.argsort(k, kind="stable")
        boundaries = np.searchsorted(k[order], np.arange(m + 1))
        slices = []
        for rel in range(m):
            sel = order[boundaries[rel] : boundaries[rel + 1]]
            slices.append(
                sp.csr_matrix(
                    (norm_values[sel], (i[sel], j[sel])), shape=(n, n)
                )
            )
        self._rel_slices = tuple(slices)
        linked = np.unique(fibre_idx)
        self._pair_j, self._pair_i = np.divmod(linked, n)
        self._pair_indicator = sp.csr_matrix(
            (np.ones(linked.size), (self._pair_i, self._pair_j)), shape=(n, n)
        )

    @classmethod
    def from_parts(cls, rel_slices, pair_i, pair_j, *, n: int, m: int):
        """Assemble a tensor directly from normalised per-relation slices.

        The streaming counterpart of the constructor: after a delta
        batch only the relations with touched fibres get fresh slices;
        ``pair_i`` / ``pair_j`` list the linked ``(i, j)`` pairs (the
        caller keeps them consistent with the non-empty fibres).
        """
        if len(rel_slices) != m:
            raise ShapeError(f"expected {m} slices, got {len(rel_slices)}")
        self = object.__new__(cls)
        self._n = int(n)
        self._m = int(m)
        self._rel_slices = tuple(rel_slices)
        self._pair_i = np.asarray(pair_i, dtype=np.int64)
        self._pair_j = np.asarray(pair_j, dtype=np.int64)
        self._pair_indicator = sp.csr_matrix(
            (np.ones(self._pair_i.size), (self._pair_i, self._pair_j)),
            shape=(self._n, self._n),
        )
        return self

    @property
    def shape(self) -> tuple[int, int, int]:
        """Logical tensor shape ``(n, n, m)``."""
        return (self._n, self._n, self._m)

    @property
    def n_linked_pairs(self) -> int:
        """Number of ``(i, j)`` pairs connected by at least one relation."""
        return self._pair_i.size

    @property
    def unlinked_share(self) -> float:
        """Fraction of the ``n^2`` node pairs with no relation at all.

        Those pairs are the ``R`` dangling fibres carrying the uniform
        ``1/m`` correction; the share is near 1 on any sparse network
        (every absent link is one), so the ``invariant_probe``
        diagnostics report it alongside the O-side dangling share to
        show how much of Eq. 8's mass flows through the correction.
        """
        return 1.0 - self.n_linked_pairs / (self._n * self._n)

    @property
    def relation_nnz(self) -> tuple[int, ...]:
        """Stored entries per relation slice (``B_k.nnz``).

        :meth:`propagate_many` writes a literal ``0.0`` row for an empty
        slice instead of evaluating the bilinear form; the sharded fit's
        coordinator consults these global counts to reproduce that exact
        branch.
        """
        return tuple(int(slice_k.nnz) for slice_k in self._rel_slices)

    def row_blocks(self, start: int, stop: int) -> tuple[sp.csr_matrix, ...]:
        """Rows ``[start, stop)`` of every relation slice, as CSR blocks."""
        return tuple(slice_k[start:stop] for slice_k in self._rel_slices)

    def pair_rows(self, start: int, stop: int) -> sp.csr_matrix:
        """Rows ``[start, stop)`` of the linked-pair indicator."""
        return self._pair_indicator[start:stop]

    def row_nnz(self) -> np.ndarray:
        """Per-row entry counts over the relation slices + pair indicator."""
        weights = np.zeros(self._n, dtype=np.int64)
        for slice_k in self._rel_slices:
            weights += np.diff(slice_k.indptr)
        weights += np.diff(self._pair_indicator.indptr)
        return weights

    def propagate(self, x: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        """Compute ``R x-bar_1 x x-bar_2 y`` (the contraction in Eq. 8).

        Returns the length-``m`` vector with entries
        ``sum_{i,j} R[i, j, k] * x[i] * y[j]`` including the uniform 1/m
        contribution of unlinked node pairs.  ``y`` defaults to ``x`` (the
        form used in Algorithm 1, step 6).  Delegates to
        :meth:`propagate_many` on a single column.
        """
        x = check_array_1d(x, "x", size=self._n)
        y = x if y is None else check_array_1d(y, "y", size=self._n)
        return self.propagate_many(x[:, None], y[:, None])[:, 0]

    def propagate_many(
        self, X: np.ndarray, Y: np.ndarray | None = None
    ) -> np.ndarray:
        """Batched contraction: ``q`` pairs ``(x, y)`` stacked as columns.

        Parameters
        ----------
        X, Y:
            ``(n, q)`` matrices of node distributions; ``Y`` defaults to
            ``X`` (the Algorithm 1 form).

        Returns
        -------
        ``(m, q)`` matrix whose column ``c`` equals
        ``propagate(X[:, c], Y[:, c])``.  Row ``k`` is the batched
        bilinear form ``X[:, c]^T (B_k @ Y[:, c])`` — one sparse product
        per relation shared by all columns — plus the unlinked-pair
        ``1/m`` correction computed the same way from the pair
        indicator.
        """
        X = check_array_2d(X, "X", shape=(self._n, None))
        Y = X if Y is None else check_array_2d(Y, "Y", shape=(self._n, X.shape[1]))
        result = np.empty((self._m, X.shape[1]))
        for k, slice_k in enumerate(self._rel_slices):
            if slice_k.nnz == 0:
                result[k] = 0.0
                continue
            result[k] = _column_sums(X * (slice_k @ Y))
        totals = _column_sums(X) * _column_sums(Y)
        linked_mass = _column_sums(X * (self._pair_indicator @ Y))
        dangling = np.maximum(totals - linked_mass, 0.0)
        result += dangling / self._m
        return result

    def to_dense(self) -> np.ndarray:
        """Materialise the full ``(n, n, m)`` tensor including dangling fibres.

        Intended for tests and tiny examples only.
        """
        dense = np.full((self._n, self._n, self._m), 1.0 / self._m)
        dense[self._pair_i, self._pair_j, :] = 0.0
        for k, slice_k in enumerate(self._rel_slices):
            coo = slice_k.tocoo()
            dense[coo.row, coo.col, k] = coo.data
        return dense


def build_transition_tensors(
    tensor: SparseTensor3,
) -> tuple[NodeTransitionTensor, RelationTransitionTensor]:
    """Build the ``(O, R)`` pair of section 3.1 from an adjacency tensor."""
    return NodeTransitionTensor(tensor), RelationTransitionTensor(tensor)


def is_irreducible(tensor: SparseTensor3) -> bool:
    """Check the paper's irreducibility assumption on ``A``.

    The tensor is treated as irreducible when the aggregated directed graph
    over all relations is strongly connected (any node reaches any other
    via some chain of relations).  The restart term of Eq. 10 makes T-Mark
    well-behaved even without this property, but positivity of the
    stationary distributions (Theorem 2) is only guaranteed with it.
    """
    if tensor.n_nodes == 1:
        return True
    agg = tensor.aggregate_relations()
    n_components, _ = connected_components(agg, directed=True, connection="strong")
    return bool(n_components == 1)


def stochastic_matrix_from_counts(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Column-normalise a non-negative matrix; zero columns become uniform.

    Utility shared by the feature-transition matrix ``W`` (Eq. 9) and
    several baselines.  The returned matrix is dense-free: zero columns are
    left zero and a caller needing exact stochasticity should handle them
    (``W`` does so explicitly because cosine similarity of a node with
    itself is 1, so its columns are never empty for non-zero features).

    Raises
    ------
    ValidationError
        If any entry is negative — normalising signed counts would
        silently produce columns that are not probability distributions.
    """
    mat = sp.csc_matrix(matrix, dtype=float)
    if mat.shape[0] != mat.shape[1]:
        raise ShapeError(f"expected a square matrix, got {mat.shape}")
    if mat.nnz and float(mat.data.min()) < 0.0:
        raise ValidationError(
            "cannot build a stochastic matrix from negative counts; "
            "clip or shift the input first"
        )
    col_sums = np.asarray(mat.sum(axis=0)).ravel()
    scale = np.ones_like(col_sums)
    nonzero = col_sums > 0
    scale[nonzero] = 1.0 / col_sums[nonzero]
    return (mat @ sp.diags(scale)).tocsr()
