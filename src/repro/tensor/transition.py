"""Transition probability tensors ``O`` and ``R`` (Eq. 1 and 2).

``O[i, j, k] = A[i, j, k] / sum_i A[i, j, k]`` is the probability of
stepping to node ``i`` given the walk sits at node ``j`` and uses relation
``k``.  ``R[i, j, k] = A[i, j, k] / sum_k A[i, j, k]`` is the probability
of using relation ``k`` for the step ``j -> i``.

Dangling fibres — a ``(j, k)`` column with no out-weight, or an ``(i, j)``
pair with no relation — are defined by the paper as uniform (``1/n`` resp.
``1/m``).  Materialising those would destroy sparsity (*every* node pair
without a link is an ``R`` dangling fibre), so both classes keep the sparse
normalised part and apply the uniform correction *analytically* inside
their product methods.  The corrections are exact: when the inputs are
probability distributions the outputs are too (Theorem 1).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.errors import ShapeError
from repro.tensor.sptensor import SparseTensor3
from repro.utils.validation import check_array_1d


class NodeTransitionTensor:
    """The node-transition tensor ``O`` of Eq. 1, with implicit dangling mass.

    Stores the mode-1 matricization of the normalised tensor as CSR
    (shape ``(n, n*m)``) plus the set of non-dangling columns.
    """

    __slots__ = ("_mat", "_nondangling_cols", "_n", "_m")

    def __init__(self, tensor: SparseTensor3):
        n, _, m = tensor.shape
        self._n = n
        self._m = m
        unfolded = tensor.unfold(1).tocsc()
        col_sums = tensor.mode1_column_sums()
        nondangling = col_sums > 0
        # Normalise each non-dangling column to sum to one.
        scale = np.ones_like(col_sums)
        scale[nondangling] = 1.0 / col_sums[nondangling]
        unfolded = unfolded @ sp.diags(scale)
        self._mat = unfolded.tocsr()
        self._nondangling_cols = np.flatnonzero(nondangling)

    @property
    def shape(self) -> tuple[int, int, int]:
        """Logical tensor shape ``(n, n, m)``."""
        return (self._n, self._n, self._m)

    @property
    def n_dangling(self) -> int:
        """Number of dangling ``(j, k)`` columns (uniform 1/n fibres)."""
        return self._n * self._m - self._nondangling_cols.size

    def matricized(self) -> sp.csr_matrix:
        """The sparse part of the mode-1 matricization (dangling cols zero)."""
        return self._mat.copy()

    def propagate(self, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Compute ``O x-bar_1 x x-bar_3 z`` (the contraction in Eq. 7/10).

        Returns the length-``n`` vector with entries
        ``sum_{j,k} O[i, j, k] * x[j] * z[k]`` including the uniform
        contribution of dangling columns.
        """
        x = check_array_1d(x, "x", size=self._n)
        z = check_array_1d(z, "z", size=self._m)
        # v[k*n + j] = x[j] * z[k] — the mode-1 column weights.
        v = (z[:, None] * x[None, :]).ravel()
        result = self._mat @ v
        total = float(x.sum()) * float(z.sum())
        nondangling_mass = float(v[self._nondangling_cols].sum())
        dangling_mass = max(total - nondangling_mass, 0.0)
        if dangling_mass > 0.0:
            result = result + dangling_mass / self._n
        return result

    def to_dense(self) -> np.ndarray:
        """Materialise the full ``(n, n, m)`` tensor including dangling fibres.

        Intended for tests and tiny examples only.
        """
        dense = np.full((self._n, self._n, self._m), 0.0)
        mat = self._mat.tocoo()
        k, j = np.divmod(mat.col, self._n)
        dense[mat.row, j, k] = mat.data
        dangling = np.ones(self._n * self._m, dtype=bool)
        dangling[self._nondangling_cols] = False
        for col in np.flatnonzero(dangling):
            k, j = divmod(col, self._n)
            dense[:, j, k] = 1.0 / self._n
        return dense


class RelationTransitionTensor:
    """The relation-transition tensor ``R`` of Eq. 2, with implicit dangling mass.

    Stores the normalised non-zeros in COO form plus the list of linked
    ``(i, j)`` pairs, so the uniform ``1/m`` correction for unlinked pairs
    can be applied analytically.
    """

    __slots__ = ("_i", "_j", "_k", "_values", "_pair_i", "_pair_j", "_n", "_m")

    def __init__(self, tensor: SparseTensor3):
        n, _, m = tensor.shape
        self._n = n
        self._m = m
        i, j, k = tensor.coords
        values = tensor.values
        fibre_sums = tensor.mode3_fibre_sums()
        fibre_idx = j * n + i
        self._values = values / fibre_sums[fibre_idx]
        self._i = i
        self._j = j
        self._k = k
        linked = np.unique(fibre_idx)
        self._pair_j, self._pair_i = np.divmod(linked, n)

    @property
    def shape(self) -> tuple[int, int, int]:
        """Logical tensor shape ``(n, n, m)``."""
        return (self._n, self._n, self._m)

    @property
    def n_linked_pairs(self) -> int:
        """Number of ``(i, j)`` pairs connected by at least one relation."""
        return self._pair_i.size

    def propagate(self, x: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        """Compute ``R x-bar_1 x x-bar_2 y`` (the contraction in Eq. 8).

        Returns the length-``m`` vector with entries
        ``sum_{i,j} R[i, j, k] * x[i] * y[j]`` including the uniform 1/m
        contribution of unlinked node pairs.  ``y`` defaults to ``x`` (the
        form used in Algorithm 1, step 6).
        """
        x = check_array_1d(x, "x", size=self._n)
        y = x if y is None else check_array_1d(y, "y", size=self._n)
        weights = self._values * x[self._i] * y[self._j]
        z = np.bincount(self._k, weights=weights, minlength=self._m)
        total = float(x.sum()) * float(y.sum())
        linked_mass = float((x[self._pair_i] * y[self._pair_j]).sum())
        dangling_mass = max(total - linked_mass, 0.0)
        if dangling_mass > 0.0:
            z = z + dangling_mass / self._m
        return z

    def to_dense(self) -> np.ndarray:
        """Materialise the full ``(n, n, m)`` tensor including dangling fibres.

        Intended for tests and tiny examples only.
        """
        dense = np.full((self._n, self._n, self._m), 1.0 / self._m)
        linked = set(zip(self._pair_i.tolist(), self._pair_j.tolist()))
        for ii, jj in linked:
            dense[ii, jj, :] = 0.0
        dense[self._i, self._j, self._k] = self._values
        return dense


def build_transition_tensors(
    tensor: SparseTensor3,
) -> tuple[NodeTransitionTensor, RelationTransitionTensor]:
    """Build the ``(O, R)`` pair of section 3.1 from an adjacency tensor."""
    return NodeTransitionTensor(tensor), RelationTransitionTensor(tensor)


def is_irreducible(tensor: SparseTensor3) -> bool:
    """Check the paper's irreducibility assumption on ``A``.

    The tensor is treated as irreducible when the aggregated directed graph
    over all relations is strongly connected (any node reaches any other
    via some chain of relations).  The restart term of Eq. 10 makes T-Mark
    well-behaved even without this property, but positivity of the
    stationary distributions (Theorem 2) is only guaranteed with it.
    """
    if tensor.n_nodes == 1:
        return True
    agg = tensor.aggregate_relations()
    n_components, _ = connected_components(agg, directed=True, connection="strong")
    return bool(n_components == 1)


def stochastic_matrix_from_counts(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Column-normalise a non-negative matrix; zero columns become uniform.

    Utility shared by the feature-transition matrix ``W`` (Eq. 9) and
    several baselines.  The returned matrix is dense-free: zero columns are
    left zero and a caller needing exact stochasticity should handle them
    (``W`` does so explicitly because cosine similarity of a node with
    itself is 1, so its columns are never empty for non-zero features).
    """
    mat = sp.csc_matrix(matrix, dtype=float)
    if mat.shape[0] != mat.shape[1]:
        raise ShapeError(f"expected a square matrix, got {mat.shape}")
    col_sums = np.asarray(mat.sum(axis=0)).ravel()
    scale = np.ones_like(col_sums)
    nonzero = col_sums > 0
    scale[nonzero] = 1.0 / col_sums[nonzero]
    return (mat @ sp.diags(scale)).tocsr()
