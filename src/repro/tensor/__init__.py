"""Sparse 3-way tensor substrate for HIN collective classification.

The paper represents a HIN with ``n`` nodes and ``m`` link types as a
non-negative tensor ``A`` of shape ``(n, n, m)`` where ``A[i, j, k] > 0``
iff node ``j`` connects to node ``i`` through link type ``k`` (section 3.1).
This subpackage provides:

* :class:`~repro.tensor.sptensor.SparseTensor3` — a COO sparse 3-way tensor
  with slicing, mode matricization and arithmetic;
* :class:`~repro.tensor.transition.NodeTransitionTensor` (``O``, Eq. 1) and
  :class:`~repro.tensor.transition.RelationTransitionTensor` (``R``, Eq. 2)
  with implicit dangling handling;
* the tensor-vector contractions of Eq. 5–8 as methods on those classes and
  as reference (dense, brute-force) functions in
  :mod:`~repro.tensor.products` used for cross-checking.
"""

from repro.tensor.products import (
    dense_mode13_product,
    dense_mode13_product_many,
    dense_mode12_product,
    dense_mode12_product_many,
)
from repro.tensor.sptensor import SparseTensor3
from repro.tensor.transition import (
    NodeTransitionTensor,
    RelationTransitionTensor,
    build_transition_tensors,
    is_irreducible,
)

__all__ = [
    "SparseTensor3",
    "NodeTransitionTensor",
    "RelationTransitionTensor",
    "build_transition_tensors",
    "is_irreducible",
    "dense_mode13_product",
    "dense_mode13_product_many",
    "dense_mode12_product",
    "dense_mode12_product_many",
]
