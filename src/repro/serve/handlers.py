"""Pure request handlers for the prediction daemon.

Every endpoint is a plain function ``(state, ...) -> (status, body)``
with no HTTP plumbing: the daemon translates paths and payloads in,
status codes and JSON (or Prometheus text) out, and the tests hit the
handlers directly.  ``body`` is a JSON-serialisable dict for every
endpoint except ``/metrics``, whose body is the Prometheus exposition
string.

:class:`ServingState` is the one mutable cell the handlers share: the
*current snapshot reference* (installed by atomic assignment — see
:meth:`ServingState.swap`), the metrics registry behind ``/metrics``,
and the update-queue hook the daemon wires in.  Handlers read
``state.snapshot`` exactly once per request and answer entirely from
that object, so a concurrent swap can never produce a torn response.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ValidationError
from repro.obs.metrics import MetricsRecorder, MetricsRegistry
from repro.serve.snapshot import Snapshot
from repro.stream.delta import GraphDelta

#: Hard cap on nodes per /classify request (keeps one bad client from
#: pinning a reader thread on a giant response).
MAX_BATCH = 10_000


class ServingState:
    """Shared state of a running daemon: snapshot ref + metrics + queue.

    ``snapshot`` is a plain attribute — reading it is a single atomic
    reference load, and :meth:`swap` replaces it with a single atomic
    store, so readers never need a lock.  ``enqueue_update`` is
    installed by the daemon; handlers never touch the streaming session
    directly (the background updater thread owns it exclusively).
    """

    def __init__(
        self,
        snapshot: Snapshot,
        *,
        registry: MetricsRegistry | None = None,
        enqueue_update=None,
    ):
        if not isinstance(snapshot, Snapshot):
            raise ValidationError(
                f"expected a Snapshot, got {type(snapshot).__name__}"
            )
        self.snapshot = snapshot
        self.registry = MetricsRegistry() if registry is None else registry
        self.enqueue_update = enqueue_update
        self.started = time.time()
        self._recorder = MetricsRecorder(self.registry)
        self._swap_lock = threading.Lock()
        self.registry.gauge("tmark_snapshot_version").set(snapshot.version)
        self.registry.gauge("tmark_snapshot_nodes").set(snapshot.n_nodes)

    def swap(self, snapshot: Snapshot, *, build_seconds: float = 0.0) -> None:
        """Install a new snapshot (atomic reference assignment).

        The lock serialises *writers* only (there is normally exactly
        one — the updater thread); readers keep loading the attribute
        lock-free.
        """
        with self._swap_lock:
            self.snapshot = snapshot
            self._recorder.emit(
                "snapshot_swap", version=snapshot.version, seconds=build_seconds
            )
            self.registry.gauge("tmark_snapshot_nodes").set(snapshot.n_nodes)

    def observe_request(self, endpoint: str, seconds: float, status: int) -> None:
        """Fold one served request into the metrics registry."""
        self._recorder.emit(
            "http_request", endpoint=endpoint, seconds=seconds, status=status
        )


# ----------------------------------------------------------------------
# Endpoint handlers
# ----------------------------------------------------------------------
def handle_classify(state: ServingState, payload) -> tuple[int, dict]:
    """``POST /classify`` — batched node ids to per-class confidences.

    Payload: ``{"nodes": ["name", ...]}``.  Responds 200 with one entry
    per requested node, 400 on a malformed payload, 404 when any node
    is unknown to the current snapshot.
    """
    snapshot = state.snapshot
    if not isinstance(payload, dict) or "nodes" not in payload:
        return 400, {"error": 'payload must be {"nodes": [...]}'}
    nodes = payload["nodes"]
    if isinstance(nodes, str) or not isinstance(nodes, (list, tuple)):
        return 400, {"error": '"nodes" must be a list of node names'}
    if not nodes:
        return 400, {"error": '"nodes" must not be empty'}
    if len(nodes) > MAX_BATCH:
        return 400, {"error": f"at most {MAX_BATCH} nodes per request"}
    try:
        results = snapshot.classify(nodes)
    except ValidationError as exc:
        return 404, {"error": str(exc), "snapshot_version": snapshot.version}
    return 200, {"snapshot_version": snapshot.version, "results": results}


def handle_topk(state: ServingState, params) -> tuple[int, dict]:
    """``GET /topk?label=L&k=K`` — the K best candidates for class L."""
    snapshot = state.snapshot
    label = params.get("label")
    if label is None:
        return 400, {"error": "missing required parameter: label"}
    try:
        k = int(params.get("k", 10))
    except (TypeError, ValueError):
        return 400, {"error": f"k must be an integer, got {params.get('k')!r}"}
    try:
        results = snapshot.topk(label, k)
    except ValidationError as exc:
        status = 404 if "unknown label" in str(exc) else 400
        return status, {"error": str(exc), "snapshot_version": snapshot.version}
    return 200, {
        "snapshot_version": snapshot.version,
        "label": label,
        "k": len(results),
        "results": results,
    }


def handle_relations(state: ServingState, params) -> tuple[int, dict]:
    """``GET /relations?label=L`` — stationary relation weights ``z``."""
    snapshot = state.snapshot
    label = params.get("label")
    if label is None:
        return 400, {"error": "missing required parameter: label"}
    try:
        results = snapshot.relations(label)
    except ValidationError as exc:
        return 404, {"error": str(exc), "snapshot_version": snapshot.version}
    return 200, {
        "snapshot_version": snapshot.version,
        "label": label,
        "relations": results,
    }


def handle_metrics(state: ServingState) -> tuple[int, str]:
    """``GET /metrics`` — Prometheus text exposition of the registry."""
    return 200, state.registry.to_prometheus()


def handle_healthz(state: ServingState) -> tuple[int, dict]:
    """``GET /healthz`` — readiness from the snapshot's chain health.

    200 when every chain of the producing fit is ``healthy``; 503
    otherwise (mirroring the ``health`` CLI's exit-4 semantics), with
    the per-class verdicts in the body either way.
    """
    snapshot = state.snapshot
    body = {
        "status": "ready" if snapshot.ready else "unhealthy",
        "worst_health": snapshot.worst_health,
        "health": dict(snapshot.health),
        "snapshot_version": snapshot.version,
        "n_nodes": snapshot.n_nodes,
        "uptime_seconds": time.time() - state.started,
    }
    return (200 if snapshot.ready else 503), body


def handle_update(state: ServingState, payload) -> tuple[int, dict]:
    """``POST /update`` — enqueue a delta batch for background reconverge.

    Payload: ``{"deltas": [<GraphDelta.to_dict() payload>, ...]}``.
    Deltas are validated here (400 on the first malformed one) and
    handed to the daemon's updater thread, which journals them through
    the session's :class:`~repro.stream.DeltaLog`, reconverges, and
    swaps in the new snapshot.  Responds 202: the update is *accepted*,
    not yet visible — poll ``snapshot_version`` to observe the swap.
    """
    if state.enqueue_update is None:
        return 503, {"error": "daemon is not accepting updates"}
    if not isinstance(payload, dict) or "deltas" not in payload:
        return 400, {"error": 'payload must be {"deltas": [...]}'}
    raw = payload["deltas"]
    if not isinstance(raw, (list, tuple)) or not raw:
        return 400, {"error": '"deltas" must be a non-empty list'}
    try:
        deltas = [GraphDelta.from_dict(entry) for entry in raw]
    except (ValidationError, TypeError, KeyError) as exc:
        return 400, {"error": f"bad delta payload: {exc}"}
    ticket = state.enqueue_update(deltas)
    state.registry.counter("tmark_updates_accepted_total").inc()
    state.registry.counter("tmark_update_deltas_total").inc(len(deltas))
    return 202, {
        "accepted": len(deltas),
        "ticket": ticket,
        "snapshot_version": state.snapshot.version,
    }
