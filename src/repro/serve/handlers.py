"""Pure request handlers for the prediction daemon.

Every endpoint is a plain function ``(state, ...) -> (status, body)``
with no HTTP plumbing: the daemon translates paths and payloads in,
status codes and JSON (or Prometheus text) out, and the tests hit the
handlers directly.  ``body`` is a JSON-serialisable dict for every
endpoint except ``/metrics``, whose body is the Prometheus exposition
string.

:class:`ServingState` is the one mutable cell the handlers share: the
*current snapshot reference* (installed by atomic assignment — see
:meth:`ServingState.swap`), the metrics registry behind ``/metrics``,
and the update-queue hook the daemon wires in.  Handlers read
``state.snapshot`` exactly once per request and answer entirely from
that object, so a concurrent swap can never produce a torn response.
"""

from __future__ import annotations

import sys
import threading
import time

from repro.errors import ValidationError
from repro.obs.flight import FlightRecorder, sample_process_stats
from repro.obs.metrics import MetricsRecorder, MetricsRegistry
from repro.serve.snapshot import Snapshot
from repro.stream.delta import GraphDelta

#: Hard cap on nodes per /classify request (keeps one bad client from
#: pinning a reader thread on a giant response).
MAX_BATCH = 10_000


class ServingState:
    """Shared state of a running daemon: snapshot ref + metrics + queue.

    ``snapshot`` is a plain attribute — reading it is a single atomic
    reference load, and :meth:`swap` replaces it with a single atomic
    store, so readers never need a lock.  ``enqueue_update`` is
    installed by the daemon; handlers never touch the streaming session
    directly (the background updater thread owns it exclusively).
    """

    def __init__(
        self,
        snapshot: Snapshot,
        *,
        registry: MetricsRegistry | None = None,
        enqueue_update=None,
        flight_capacity: int = 2048,
        slow_request_seconds: float | None = 1.0,
    ):
        if not isinstance(snapshot, Snapshot):
            raise ValidationError(
                f"expected a Snapshot, got {type(snapshot).__name__}"
            )
        if slow_request_seconds is not None and not slow_request_seconds > 0:
            raise ValidationError(
                f"slow_request_seconds must be > 0 or None, "
                f"got {slow_request_seconds!r}"
            )
        self.snapshot = snapshot
        self.registry = MetricsRegistry() if registry is None else registry
        self.enqueue_update = enqueue_update
        self.started = time.time()
        self.last_swap = self.started
        self.last_reconverge_seconds: float | None = None
        self.slow_request_seconds = slow_request_seconds
        # Always-on bounded telemetry: every event folds into the
        # registry *and* lands in the flight ring served by /debug/trace.
        self.flight = FlightRecorder(flight_capacity)
        self._recorder = MetricsRecorder(self.registry, forward=self.flight)
        self._swap_lock = threading.Lock()
        self.registry.gauge("tmark_snapshot_version").set(snapshot.version)
        self.registry.gauge("tmark_snapshot_nodes").set(snapshot.n_nodes)

    @property
    def recorder(self) -> MetricsRecorder:
        """The daemon-wide recorder chain (registry fold -> flight ring).

        The updater thread passes this into ``session.apply`` and the
        handler threads open their per-request spans on it, so serving
        telemetry is causally linked in one stream.
        """
        return self._recorder

    def swap(
        self,
        snapshot: Snapshot,
        *,
        build_seconds: float = 0.0,
        reconverge_seconds: float | None = None,
    ) -> None:
        """Install a new snapshot (atomic reference assignment).

        The lock serialises *writers* only (there is normally exactly
        one — the updater thread); readers keep loading the attribute
        lock-free.  ``reconverge_seconds`` records the producing refit's
        wall clock for ``/healthz`` staleness reporting.
        """
        with self._swap_lock:
            self.snapshot = snapshot
            self.last_swap = time.time()
            if reconverge_seconds is not None:
                self.last_reconverge_seconds = float(reconverge_seconds)
            self._recorder.emit(
                "snapshot_swap", version=snapshot.version, seconds=build_seconds
            )
            self.registry.gauge("tmark_snapshot_nodes").set(snapshot.n_nodes)

    def observe_request(
        self,
        endpoint: str,
        seconds: float,
        status: int,
        *,
        request_id: str | None = None,
    ) -> None:
        """Fold one served request into the metrics registry and ring.

        Requests slower than ``slow_request_seconds`` are additionally
        logged to stderr (with their id, so the line correlates with the
        client's response) and counted as ``tmark_slow_requests_total``.
        """
        fields = {"endpoint": endpoint, "seconds": seconds, "status": status}
        if request_id is not None:
            fields["request_id"] = request_id
        self._recorder.emit("http_request", **fields)
        if (
            self.slow_request_seconds is not None
            and seconds >= self.slow_request_seconds
        ):
            self.registry.counter("tmark_slow_requests_total").inc()
            print(
                f"[slow-request] {endpoint} took {seconds:.3f}s "
                f"(threshold {self.slow_request_seconds:g}s, status {status}"
                + (f", request_id {request_id})" if request_id else ")"),
                file=sys.stderr,
                flush=True,
            )


# ----------------------------------------------------------------------
# Endpoint handlers
# ----------------------------------------------------------------------
def handle_classify(state: ServingState, payload) -> tuple[int, dict]:
    """``POST /classify`` — batched node ids to per-class confidences.

    Payload: ``{"nodes": ["name", ...]}``.  Responds 200 with one entry
    per requested node, 400 on a malformed payload, 404 when any node
    is unknown to the current snapshot.
    """
    snapshot = state.snapshot
    if not isinstance(payload, dict) or "nodes" not in payload:
        return 400, {"error": 'payload must be {"nodes": [...]}'}
    nodes = payload["nodes"]
    if isinstance(nodes, str) or not isinstance(nodes, (list, tuple)):
        return 400, {"error": '"nodes" must be a list of node names'}
    if not nodes:
        return 400, {"error": '"nodes" must not be empty'}
    if len(nodes) > MAX_BATCH:
        return 400, {"error": f"at most {MAX_BATCH} nodes per request"}
    try:
        results = snapshot.classify(nodes)
    except ValidationError as exc:
        return 404, {"error": str(exc), "snapshot_version": snapshot.version}
    return 200, {"snapshot_version": snapshot.version, "results": results}


def handle_topk(state: ServingState, params) -> tuple[int, dict]:
    """``GET /topk?label=L&k=K`` — the K best candidates for class L."""
    snapshot = state.snapshot
    label = params.get("label")
    if label is None:
        return 400, {"error": "missing required parameter: label"}
    try:
        k = int(params.get("k", 10))
    except (TypeError, ValueError):
        return 400, {"error": f"k must be an integer, got {params.get('k')!r}"}
    try:
        results = snapshot.topk(label, k)
    except ValidationError as exc:
        status = 404 if "unknown label" in str(exc) else 400
        return status, {"error": str(exc), "snapshot_version": snapshot.version}
    return 200, {
        "snapshot_version": snapshot.version,
        "label": label,
        "k": len(results),
        "results": results,
    }


def handle_relations(state: ServingState, params) -> tuple[int, dict]:
    """``GET /relations?label=L`` — stationary relation weights ``z``."""
    snapshot = state.snapshot
    label = params.get("label")
    if label is None:
        return 400, {"error": "missing required parameter: label"}
    try:
        results = snapshot.relations(label)
    except ValidationError as exc:
        return 404, {"error": str(exc), "snapshot_version": snapshot.version}
    return 200, {
        "snapshot_version": snapshot.version,
        "label": label,
        "relations": results,
    }


def handle_metrics(state: ServingState) -> tuple[int, str]:
    """``GET /metrics`` — Prometheus text exposition of the registry."""
    return 200, state.registry.to_prometheus()


def handle_healthz(state: ServingState) -> tuple[int, dict]:
    """``GET /healthz`` — readiness from the snapshot's chain health.

    200 when every chain of the producing fit is ``healthy``; 503
    otherwise (mirroring the ``health`` CLI's exit-4 semantics), with
    the per-class verdicts in the body either way.

    ``snapshot_age_seconds`` (time since the served snapshot was
    installed) and ``last_reconverge_seconds`` (wall clock of the refit
    that produced it; ``None`` before the first update) let probes alert
    on *staleness* — a daemon whose updater silently stopped swapping
    still answers 200 here, but its age keeps growing.
    """
    snapshot = state.snapshot
    body = {
        "status": "ready" if snapshot.ready else "unhealthy",
        "worst_health": snapshot.worst_health,
        "health": dict(snapshot.health),
        "snapshot_version": snapshot.version,
        "n_nodes": snapshot.n_nodes,
        "uptime_seconds": time.time() - state.started,
        "snapshot_age_seconds": time.time() - state.last_swap,
        "last_reconverge_seconds": state.last_reconverge_seconds,
    }
    return (200 if snapshot.ready else 503), body


def handle_debug_trace(state: ServingState, params) -> tuple[int, dict]:
    """``GET /debug/trace?last=N`` — dump the flight-recorder ring.

    Returns the most recent events (all of the ring by default, the
    ``last`` newest with the parameter) as trace-event dicts: the same
    schema a ``--trace`` JSONL file holds, so the dump feeds directly
    into ``trace-summary`` / ``obs export --chrome`` (the ``obs
    flight`` CLI wraps exactly that).
    """
    last = params.get("last")
    if last is not None:
        try:
            last = int(last)
        except (TypeError, ValueError):
            return 400, {"error": f"last must be an integer, got {last!r}"}
        if last < 0:
            return 400, {"error": f"last must be >= 0, got {last}"}
    events = state.flight.events(last)
    return 200, {
        "snapshot_version": state.snapshot.version,
        "capacity": state.flight.capacity,
        "total_events": state.flight.n_events,
        "n_events": len(events),
        "events": events,
    }


def handle_debug_vars(state: ServingState) -> tuple[int, dict]:
    """``GET /debug/vars`` — live process and serving internals.

    Process stats (RSS, CPU, GC, threads) sampled on demand plus the
    serving-side gauges a quick ``curl`` diagnosis wants: snapshot
    version/age, the last reconverge wall clock, and how much of the
    flight ring is populated.
    """
    snapshot = state.snapshot
    now = time.time()
    body = dict(sample_process_stats())
    body.update(
        {
            "uptime_seconds": now - state.started,
            "snapshot_version": snapshot.version,
            "snapshot_age_seconds": now - state.last_swap,
            "last_reconverge_seconds": state.last_reconverge_seconds,
            "n_nodes": snapshot.n_nodes,
            "flight_capacity": state.flight.capacity,
            "flight_total_events": state.flight.n_events,
        }
    )
    return 200, body


def handle_update(state: ServingState, payload) -> tuple[int, dict]:
    """``POST /update`` — enqueue a delta batch for background reconverge.

    Payload: ``{"deltas": [<GraphDelta.to_dict() payload>, ...]}``.
    Deltas are validated here (400 on the first malformed one) and
    handed to the daemon's updater thread, which journals them through
    the session's :class:`~repro.stream.DeltaLog`, reconverges, and
    swaps in the new snapshot.  Responds 202: the update is *accepted*,
    not yet visible — poll ``snapshot_version`` to observe the swap.
    """
    if state.enqueue_update is None:
        return 503, {"error": "daemon is not accepting updates"}
    if not isinstance(payload, dict) or "deltas" not in payload:
        return 400, {"error": 'payload must be {"deltas": [...]}'}
    raw = payload["deltas"]
    if not isinstance(raw, (list, tuple)) or not raw:
        return 400, {"error": '"deltas" must be a non-empty list'}
    try:
        deltas = [GraphDelta.from_dict(entry) for entry in raw]
    except (ValidationError, TypeError, KeyError) as exc:
        return 400, {"error": f"bad delta payload: {exc}"}
    ticket = state.enqueue_update(deltas)
    state.registry.counter("tmark_updates_accepted_total").inc()
    state.registry.counter("tmark_update_deltas_total").inc(len(deltas))
    return 202, {
        "accepted": len(deltas),
        "ticket": ticket,
        "snapshot_version": state.snapshot.version,
    }
