"""Online prediction service over snapshot-swapped stationary state.

A fitted T-Mark model answers every query — classify a node, rank the
top-k candidates of a class, report relation weights — by reading the
frozen stationary pair ``(X, Z)``.  This package turns that shape into
a low-latency serving tier:

* :class:`Snapshot` (``snapshot.py``) — one immutable, precomputed
  serving state (scores, argmax labels, top-k rankings, chain health).
* :mod:`~repro.serve.handlers` — pure endpoint functions over a shared
  :class:`ServingState` whose snapshot reference is replaced by atomic
  assignment, never mutated.
* :class:`PredictionDaemon` (``daemon.py``) — a stdlib
  ``http.server``-based daemon: reader threads serve JSON from the
  current snapshot while a single updater thread journals incoming
  delta batches, reconverges the streaming session warm, and swaps the
  fresh snapshot in.

See ``docs/architecture.md`` ("Serving") for the lifecycle diagram and
readiness semantics.
"""

from repro.serve.daemon import PredictionDaemon, serve_forever
from repro.serve.handlers import ServingState
from repro.serve.snapshot import Snapshot

__all__ = [
    "PredictionDaemon",
    "ServingState",
    "Snapshot",
    "serve_forever",
]
