"""Immutable serving snapshots of a fitted T-Mark state.

T-Mark's entire inference output is the stationary pair ``(X, Z)`` per
class: once fitted, "classify node v", "top-k candidates for class c"
and "relation weights for class c" are all *reads* against frozen
arrays.  A :class:`Snapshot` freezes one such state — scores, argmax
labels, precomputed per-class rankings and the per-class
:class:`~repro.obs.health.ChainHealth` verdicts of the fit that
produced it — behind read-only views, so any number of reader threads
can answer queries from it without locks while the next state
reconverges elsewhere.

The daemon (:mod:`repro.serve.daemon`) publishes a new state by
*atomic reference swap*: build a fresh ``Snapshot``, then assign it to
the single shared attribute.  Readers load that reference once per
request and answer entirely from the object they loaded, so a request
observes either the old state or the new one — never a mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.obs.health import health_from_result, worst_status

#: Per-class ranking depth precomputed at snapshot build time.  ``topk``
#: requests beyond this fall back to a live argsort (rare, still
#: read-only) — the cache keeps the common case allocation-free.
TOPK_CACHE = 100


def _frozen(array: np.ndarray) -> np.ndarray:
    """A C-contiguous copy with the writeable flag cleared."""
    copy = np.array(array, dtype=float, copy=True, order="C")
    copy.setflags(write=False)
    return copy


@dataclass(frozen=True)
class Snapshot:
    """One immutable, fully precomputed serving state.

    Attributes
    ----------
    version:
        Monotonic publication counter (0 = the initial fit; each
        reconverge-and-swap increments it).
    node_names, label_names, relation_names:
        Names aligned with the score array axes.
    node_scores:
        ``(n, q)`` stationary node distributions (read-only); column
        ``c`` sums to one over the nodes.
    relation_scores:
        ``(m, q)`` stationary relation distributions (read-only).
    labels:
        Argmax label name per node, precomputed.
    health:
        ``label -> status`` verdicts from the producing fit — the
        readiness substrate (:attr:`ready`).
    """

    version: int
    node_names: tuple[str, ...]
    label_names: tuple[str, ...]
    relation_names: tuple[str, ...]
    node_scores: np.ndarray
    relation_scores: np.ndarray
    labels: tuple[str, ...]
    health: dict = field(default_factory=dict)
    _node_index: dict = field(default_factory=dict, repr=False)
    _topk_indices: np.ndarray | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, result, *, version: int = 0) -> "Snapshot":
        """Freeze a fitted :class:`~repro.core.tmark.TMarkResult`.

        The result must carry ``node_names`` (persistence format 2) —
        a snapshot without node identity cannot answer name-keyed
        queries.
        """
        if result.node_names is None:
            raise ValidationError(
                "result has no node_names; a serving snapshot needs node "
                "identity (persistence format 2)"
            )
        node_scores = _frozen(result.node_scores)
        n, q = node_scores.shape
        if len(result.node_names) != n:
            raise ValidationError(
                f"result has {len(result.node_names)} node_names for "
                f"{n} score rows"
            )
        argmax = np.argmax(node_scores, axis=1)
        labels = tuple(result.label_names[c] for c in argmax)
        depth = min(TOPK_CACHE, n)
        # Per-class descending ranking, stable so score ties break by
        # node index exactly like a full argsort would.
        order = np.argsort(-node_scores, axis=0, kind="stable")[:depth, :]
        health = {
            verdict.label: verdict.status
            for verdict in health_from_result(result)
        }
        return cls(
            version=int(version),
            node_names=tuple(result.node_names),
            label_names=tuple(result.label_names),
            relation_names=tuple(result.relation_names),
            node_scores=node_scores,
            relation_scores=_frozen(result.relation_scores),
            labels=labels,
            health=health,
            _node_index={name: i for i, name in enumerate(result.node_names)},
            _topk_indices=np.ascontiguousarray(order.T),
        )

    @classmethod
    def from_session(cls, session, *, version: int = 0) -> "Snapshot":
        """Freeze the current state of a fitted ``StreamingSession``."""
        result = session.result
        if result is None:
            raise ValidationError(
                "session has no fitted result; call session.fit() first"
            )
        node_names = result.node_names
        if node_names is None:
            # A live session knows its graph; borrow the node identity
            # the result would have carried if persisted under format 2.
            from dataclasses import replace

            result = replace(result, node_names=tuple(session.hin.node_names))
        return cls.from_result(result, version=version)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes the snapshot can classify."""
        return len(self.node_names)

    @property
    def worst_health(self) -> str:
        """The most severe per-class status (``healthy`` when empty)."""
        return worst_status(self.health.values())

    @property
    def ready(self) -> bool:
        """True when every chain of the producing fit was ``healthy``.

        Mirrors the ``health`` CLI's exit-4 semantics: any
        ``not_converged`` / ``stalled`` / ``oscillating`` / ``diverging``
        chain makes the snapshot not ready (HTTP 503 on ``/healthz``).
        """
        return self.worst_health == "healthy"

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def classify(self, names) -> list[dict]:
        """Per-class confidences + argmax label for each named node.

        Raises :class:`~repro.errors.ValidationError` naming every
        unknown node.  Each entry reports the raw stationary scores
        (column-stochastic mass — comparable *within* a class across
        nodes), the row-normalised per-class confidence, and the argmax
        label.
        """
        names = list(names)
        unknown = [n for n in names if n not in self._node_index]
        if unknown:
            raise ValidationError(
                f"unknown node(s): {', '.join(map(str, unknown[:5]))}"
                + (f" (+{len(unknown) - 5} more)" if len(unknown) > 5 else "")
            )
        results = []
        for name in names:
            row = self.node_scores[self._node_index[name]]
            total = float(row.sum())
            confidence = row / total if total > 0.0 else np.full_like(row, 1.0 / row.size)
            results.append(
                {
                    "node": name,
                    "label": self.labels[self._node_index[name]],
                    "scores": {
                        label: float(row[c])
                        for c, label in enumerate(self.label_names)
                    },
                    "confidence": {
                        label: float(confidence[c])
                        for c, label in enumerate(self.label_names)
                    },
                }
            )
        return results

    def topk(self, label, k: int = 10) -> list[dict]:
        """The ``k`` highest-scoring nodes for ``label`` (name + score)."""
        c = self._label_idx(label)
        k = int(k)
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        k = min(k, self.n_nodes)
        if self._topk_indices is not None and k <= self._topk_indices.shape[1]:
            indices = self._topk_indices[c, :k]
        else:
            indices = np.argsort(-self.node_scores[:, c], kind="stable")[:k]
        return [
            {
                "node": self.node_names[i],
                "score": float(self.node_scores[i, c]),
                "label": self.labels[i],
            }
            for i in indices
        ]

    def relations(self, label) -> list[dict]:
        """Relations ranked by stationary importance ``z`` for ``label``."""
        c = self._label_idx(label)
        order = np.argsort(-self.relation_scores[:, c], kind="stable")
        return [
            {
                "relation": self.relation_names[i],
                "weight": float(self.relation_scores[i, c]),
            }
            for i in order
        ]

    def _label_idx(self, label) -> int:
        if isinstance(label, str):
            try:
                return self.label_names.index(label)
            except ValueError:
                raise ValidationError(f"unknown label name: {label!r}") from None
        c = int(label)
        if not 0 <= c < len(self.label_names):
            raise ValidationError(
                f"label index {c} out of range [0, {len(self.label_names)})"
            )
        return c
