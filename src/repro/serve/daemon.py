"""The long-lived prediction daemon: stdlib HTTP over snapshot swaps.

:class:`PredictionDaemon` wraps a fitted
:class:`~repro.stream.StreamingSession` in a threaded
``http.server`` front end:

* **Readers** (one thread per connection via
  ``ThreadingHTTPServer``) answer ``/classify``, ``/topk``,
  ``/relations``, ``/metrics`` and ``/healthz`` from the current
  :class:`~repro.serve.snapshot.Snapshot` — an immutable object they
  load with a single reference read, so no reader ever blocks on (or
  observes) an in-flight update.
* **One updater thread** owns the streaming session exclusively.  Delta
  batches accepted by ``POST /update`` are queued to it; for each batch
  it journals the deltas through a :class:`~repro.stream.DeltaLog`
  (durably, before touching the model when a journal path is
  configured), applies them (operator patch + warm reconverge,
  optionally under a :mod:`repro.solvers` accelerator), builds a fresh
  snapshot and installs it with one atomic assignment
  (:meth:`~repro.serve.handlers.ServingState.swap`).

The daemon binds ``port=0`` to a free ephemeral port by default, which
is what the tests and the serving benchmark use.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ValidationError
from repro.obs.flight import ResourceSampler
from repro.obs.spans import span
from repro.serve import handlers as h
from repro.serve.snapshot import Snapshot
from repro.stream.delta import as_batch
from repro.stream.journal import DeltaLog

#: Sentinel queued to shut the updater thread down.
_STOP = object()


class PredictionDaemon:
    """Serve a fitted streaming session over HTTP with snapshot swaps.

    Parameters
    ----------
    session:
        A :class:`~repro.stream.StreamingSession` that has already been
        fitted (``session.result`` is not ``None``).
    host, port:
        Bind address; ``port=0`` picks a free ephemeral port.
    solver:
        Optional :mod:`repro.solvers` solver name used for every
        background reconvergence.
    journal:
        Optional path; accepted delta batches are appended to a
        :class:`~repro.stream.DeltaLog` and re-saved there *before*
        the model is updated, so a crash mid-reconverge loses no
        accepted deltas.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` backing
        ``/metrics`` (a fresh one by default).
    flight_capacity:
        Ring size of the always-on
        :class:`~repro.obs.flight.FlightRecorder` behind
        ``GET /debug/trace``.
    slow_request_seconds:
        Threshold for the stderr slow-request log (``None`` disables).
    sample_interval:
        Period of the background resource sampler emitting
        ``resource_sample`` events into the flight ring (``None``
        disables sampling).

    Examples
    --------
    >>> from repro.datasets import make_worked_example
    >>> from repro.stream import StreamingSession
    >>> session = StreamingSession(make_worked_example())
    >>> _ = session.fit()
    >>> daemon = PredictionDaemon(session)
    >>> daemon.start()
    >>> daemon.url.startswith("http://127.0.0.1:")
    True
    >>> daemon.stop()
    """

    def __init__(
        self,
        session,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        solver: str | None = None,
        journal=None,
        registry=None,
        flight_capacity: int = 2048,
        slow_request_seconds: float | None = 1.0,
        sample_interval: float | None = 1.0,
    ):
        if session.result is None:
            raise ValidationError(
                "session has no fitted result; call session.fit() before serving"
            )
        self._session = session
        self._solver = solver
        self._journal_path = journal
        self._log = DeltaLog()
        self.state = h.ServingState(
            Snapshot.from_session(session, version=0),
            registry=registry,
            enqueue_update=self._enqueue,
            flight_capacity=flight_capacity,
            slow_request_seconds=slow_request_seconds,
        )
        self._sampler = (
            ResourceSampler(self.state.recorder, interval=sample_interval)
            if sample_interval is not None
            else None
        )
        self._queue: queue.Queue = queue.Queue()
        self._tickets = 0
        self._applied = 0
        self._update_error: str | None = None
        self._server = ThreadingHTTPServer(
            (host, port), _make_handler(self.state), bind_and_activate=True
        )
        self._server.daemon_threads = True
        self._http_thread: threading.Thread | None = None
        self._updater_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The bound interface address."""
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with port=0)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    @property
    def applied_updates(self) -> int:
        """Number of delta batches the updater thread has applied."""
        return self._applied

    def start(self) -> "PredictionDaemon":
        """Start the HTTP listener and the background updater thread."""
        if self._http_thread is not None:
            return self
        self._updater_thread = threading.Thread(
            target=self._updater_loop, name="tmark-updater", daemon=True
        )
        self._updater_thread.start()
        self._http_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="tmark-http",
            daemon=True,
        )
        self._http_thread.start()
        if self._sampler is not None:
            self._sampler.start()
        return self

    def stop(self, *, timeout: float = 5.0) -> None:
        """Shut the listener down and drain the updater thread."""
        if self._sampler is not None:
            self._sampler.stop()
        if self._updater_thread is not None:
            self._queue.put(_STOP)
            self._updater_thread.join(timeout=timeout)
            self._updater_thread = None
        self._server.shutdown()
        self._server.server_close()
        self._http_thread = None

    def flush(self, *, timeout: float = 30.0) -> None:
        """Block until every queued update has been applied and swapped.

        Raises ``RuntimeError`` with the remote traceback summary when
        the updater thread died on a queued batch.
        """
        deadline = time.monotonic() + timeout
        while self._applied + (1 if self._update_error else 0) < self._tickets:
            if self._update_error:
                break
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"{self._tickets - self._applied} update(s) still pending "
                    f"after {timeout}s"
                )
            time.sleep(0.005)
        if self._update_error:
            raise RuntimeError(f"updater thread failed: {self._update_error}")

    # ------------------------------------------------------------------
    # Update pipeline (updater thread owns the session)
    # ------------------------------------------------------------------
    def _enqueue(self, deltas) -> int:
        """Handler hook: queue one validated batch, return its ticket."""
        if self._update_error:
            raise ValidationError(
                f"updater thread is down: {self._update_error}"
            )
        self._tickets += 1
        ticket = self._tickets
        self._queue.put((ticket, as_batch(deltas)))
        self.state.registry.gauge("tmark_update_queue_depth").set(
            self._tickets - self._applied
        )
        return ticket

    def _updater_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            ticket, batch = item
            try:
                self._apply_one(ticket, batch)
            except Exception as exc:  # noqa: BLE001 — surfaced via flush()/update 503s
                self._update_error = f"{type(exc).__name__}: {exc}"
                self.state.registry.counter("tmark_update_failures_total").inc()
                return

    def _apply_one(self, ticket: int, batch) -> None:
        started = time.perf_counter()
        rec = self.state.recorder
        # The update span roots this batch's causal tree: apply_deltas /
        # reconverge spans and their chain events nest under it in the
        # flight ring.  The session recorder also folds delta_apply /
        # reconverge events into the /metrics registry.
        with span("update", recorder=rec, ticket=ticket, n_deltas=len(batch)):
            # Journal first: an accepted batch survives a crash mid-update.
            self._log.extend(batch)
            self._log.commit()
            if self._journal_path is not None:
                self._log.save(self._journal_path)
            update = self._session.apply(batch, solver=self._solver, recorder=rec)
            snapshot = Snapshot.from_session(
                self._session, version=self.state.snapshot.version + 1
            )
        self._applied += 1
        self.state.swap(
            snapshot,
            build_seconds=time.perf_counter() - started,
            reconverge_seconds=update.fit_seconds,
        )
        registry = self.state.registry
        registry.counter("tmark_updates_applied_total").inc()
        registry.gauge("tmark_update_queue_depth").set(
            self._tickets - self._applied
        )
        if not update.converged:
            registry.counter("tmark_unconverged_reconverges_total").inc()


def _make_handler(state: h.ServingState):
    """Build the request-handler class bound to one ``ServingState``."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # http.server writes responses unbuffered line-by-line; without
        # TCP_NODELAY the Nagle / delayed-ACK interaction adds ~40 ms to
        # every keep-alive request on loopback.
        disable_nagle_algorithm = True
        # Quiet by default: per-request stderr logging would dominate
        # the serving benchmark.
        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass

        # -- plumbing ---------------------------------------------------
        def _reply(
            self,
            endpoint: str,
            started: float,
            status: int,
            body,
            *,
            request_id: str | None = None,
        ) -> None:
            if isinstance(body, str):
                raw = body.encode("utf-8")
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            else:
                if request_id is not None and isinstance(body, dict):
                    body = {**body, "request_id": request_id}
                raw = json.dumps(body).encode("utf-8")
                content_type = "application/json"
            # Observe before flushing the response: a client holding its
            # reply is then guaranteed to find the matching
            # ``http_request`` event in a /debug/trace dump.
            state.observe_request(
                endpoint,
                time.perf_counter() - started,
                status,
                request_id=request_id,
            )
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            if request_id is not None:
                self.send_header("X-Request-Id", request_id)
            self.send_header("Content-Length", str(len(raw)))
            self.end_headers()
            self.wfile.write(raw)

        def _read_json(self):
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return None
            try:
                return json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                return None

        # -- routing ----------------------------------------------------
        def _route(self, method: str, url) -> tuple[int, object]:
            if method == "GET":
                params = dict(parse_qsl(url.query))
                if url.path == "/healthz":
                    return h.handle_healthz(state)
                if url.path == "/metrics":
                    return h.handle_metrics(state)
                if url.path == "/topk":
                    return h.handle_topk(state, params)
                if url.path == "/relations":
                    return h.handle_relations(state, params)
                if url.path == "/debug/trace":
                    return h.handle_debug_trace(state, params)
                if url.path == "/debug/vars":
                    return h.handle_debug_vars(state)
                return 404, {"error": f"no such endpoint: {url.path}"}
            payload = self._read_json()
            if payload is None:
                return 400, {"error": "body must be JSON"}
            if url.path == "/classify":
                return h.handle_classify(state, payload)
            if url.path == "/update":
                try:
                    return h.handle_update(state, payload)
                except ValidationError as exc:
                    return 503, {"error": str(exc)}
            return 404, {"error": f"no such endpoint: {url.path}"}

        def _serve_one(self, method: str) -> None:
            started = time.perf_counter()
            url = urlsplit(self.path)
            # One span per request on this handler thread; its span_id
            # is the request id echoed to the client (X-Request-Id
            # header + "request_id" body field).
            with span(
                "request",
                recorder=state.recorder,
                endpoint=url.path,
                method=method,
            ) as ctx:
                status, body = self._route(method, url)
            self._reply(
                url.path,
                started,
                status,
                body,
                request_id=ctx.span_id if ctx is not None else None,
            )

        def do_GET(self):  # noqa: N802 - stdlib naming
            self._serve_one("GET")

        def do_POST(self):  # noqa: N802 - stdlib naming
            self._serve_one("POST")

    return Handler


def serve_forever(daemon: PredictionDaemon, *, max_seconds: float | None = None) -> None:
    """Run a started daemon until interrupted (the CLI's main loop).

    ``max_seconds`` bounds the run (smoke tests self-terminate with
    it); a dead updater thread raises so the process exits non-zero
    instead of silently refusing updates.
    """
    deadline = None if max_seconds is None else time.monotonic() + max_seconds
    try:
        while deadline is None or time.monotonic() < deadline:
            time.sleep(0.2)
            if daemon._update_error:
                raise RuntimeError(
                    f"updater thread failed: {daemon._update_error}"
                )
    except KeyboardInterrupt:
        pass
    finally:
        daemon.stop()


def run_serve_cli(args) -> int:
    """Back the ``python -m repro.experiments serve`` subcommand.

    Exit codes match the ``stream`` CLI vocabulary: 0 on a clean
    shutdown, 4 when the background updater died (the serving analogue
    of an unhealthy reconvergence), 5 for unreadable ``--hin`` /
    ``--result`` inputs.
    """
    from repro.experiments.streaming import (
        EXIT_UNHEALTHY,
        EXIT_UNREADABLE,
        build_streaming_session,
    )

    try:
        session = build_streaming_session(
            hin_path=args.hin,
            result_path=args.result,
            scale=args.scale,
            seed=args.seed,
            solver=args.solver,
        )
    except ValidationError as exc:
        print(f"error: {exc}")
        return EXIT_UNREADABLE
    daemon = PredictionDaemon(
        session,
        host=args.host,
        port=args.port,
        solver=args.solver,
        journal=args.journal,
    ).start()
    snapshot = daemon.state.snapshot
    print(
        f"[serving {snapshot.n_nodes} nodes x {len(snapshot.label_names)} "
        f"classes on {daemon.url}]",
        flush=True,
    )
    print(
        "[endpoints: POST /classify, POST /update, GET /topk, "
        "GET /relations, GET /metrics, GET /healthz, "
        "GET /debug/trace, GET /debug/vars]",
        flush=True,
    )
    if args.journal:
        print(f"[journaling accepted updates -> {args.journal}]", flush=True)
    try:
        serve_forever(daemon, max_seconds=args.max_seconds)
    except RuntimeError as exc:
        print(f"error: {exc}")
        return EXIT_UNHEALTHY
    return 0
