"""Synthetic delta workloads for exercising the streaming layer.

:func:`synthetic_delta_log` draws a reproducible mixed stream of edits
against a concrete HIN — link churn, relabeling, feature drift, node
arrivals — committed in fixed-size batches.  It maintains a mirror of
the evolving link structure so every generated delta is valid at its
position in the journal (removals target links that exist, added nodes
are wired into the graph before anything else references them).

Used by the ``stream`` experiment/CLI, the equivalence tests (randomised
delta sequences) and ``benchmarks/bench_stream_updates.py``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.stream.delta import GraphDelta
from repro.stream.journal import DeltaLog
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

#: Default op mix: link churn dominates, as in a citation/tagging stream.
DEFAULT_OP_WEIGHTS = {
    "add_link": 0.45,
    "remove_link": 0.20,
    "set_label": 0.15,
    "update_features": 0.10,
    "add_node": 0.10,
}


def synthetic_delta_log(
    hin: HIN,
    n_deltas: int,
    *,
    batch_size: int = 10,
    seed=None,
    op_weights: dict | None = None,
) -> DeltaLog:
    """Generate a valid ``n_deltas``-edit journal against ``hin``.

    Parameters
    ----------
    hin:
        The seed graph the journal will be replayed on.
    n_deltas:
        Total number of deltas (a node arrival counts as two: the
        ``add_node`` plus the ``add_link`` wiring it in).
    batch_size:
        Commit marker interval.
    seed:
        Anything :func:`repro.utils.rng.ensure_rng` accepts.
    op_weights:
        Optional ``{op: weight}`` mix overriding
        :data:`DEFAULT_OP_WEIGHTS`; missing ops get weight 0.
    """
    n_deltas = check_positive_int(n_deltas, "n_deltas")
    batch_size = check_positive_int(batch_size, "batch_size")
    rng = ensure_rng(seed)
    weights = dict(DEFAULT_OP_WEIGHTS if op_weights is None else op_weights)
    ops = [op for op, w in weights.items() if w > 0]
    if not ops:
        raise ValidationError("op_weights must give positive weight to some op")
    probs = np.array([float(weights[op]) for op in ops])
    if np.any(probs < 0) or not np.all(np.isfinite(probs)):
        raise ValidationError(f"op weights must be finite and non-negative: {weights}")
    probs = probs / probs.sum()

    node_names = list(hin.node_names)
    relation_names = list(hin.relation_names)
    label_names = list(hin.label_names)
    features = hin.features_dense()
    d = hin.n_features

    # Mirror of the undirected link structure: canonical (a, b, k) with
    # a <= b where both converse entries exist (one entry for a == b).
    # Kept consistent with the generated deltas so removals always
    # target a live link and never collide with an earlier removal.
    i0, j0, k0 = hin.tensor.coords
    entry_set = set(zip(i0.tolist(), j0.tolist(), k0.tolist()))
    pair_set: set[tuple[int, int, int]] = set()
    for i, j, k in entry_set:
        a, b = (i, j) if i <= j else (j, i)
        if a == b or (a, b, k) in entry_set and (b, a, k) in entry_set:
            pair_set.add((a, b, k))
    removable = sorted(pair_set)

    def pop_pair(index: int) -> tuple[int, int, int]:
        pair = removable[index]
        removable[index] = removable[-1]
        removable.pop()
        pair_set.discard(pair)
        return pair

    def random_feature_row() -> np.ndarray:
        # Resample a bag-of-words-like row at the scale of the existing
        # features so similarity patterns shift without leaving the
        # generator's regime.
        template = features[int(rng.integers(features.shape[0]))]
        noise = rng.random(d) * (float(np.abs(template).mean()) + 1.0) * 0.5
        return np.abs(template) * rng.random(d) + noise

    log = DeltaLog()
    n_new_nodes = 0
    emitted = 0
    while emitted < n_deltas:
        op = ops[int(rng.choice(len(ops), p=probs))]
        if op == "remove_link" and not removable:
            op = "add_link"
        if op == "add_node" and emitted + 2 > n_deltas:
            op = "set_label"

        if op == "add_link":
            a, b = rng.choice(len(node_names), size=2, replace=False)
            a, b = int(min(a, b)), int(max(a, b))
            k = int(rng.integers(len(relation_names)))
            log.append(
                GraphDelta.add_link(node_names[a], node_names[b], relation_names[k])
            )
            if (a, b, k) not in pair_set:
                pair_set.add((a, b, k))
                removable.append((a, b, k))
            emitted += 1
        elif op == "remove_link":
            a, b, k = pop_pair(int(rng.integers(len(removable))))
            log.append(
                GraphDelta.remove_link(node_names[a], node_names[b], relation_names[k])
            )
            emitted += 1
        elif op == "set_label":
            idx = int(rng.integers(len(node_names)))
            if hin.multilabel:
                count = int(rng.integers(1, min(3, len(label_names)) + 1))
                chosen = rng.choice(len(label_names), size=count, replace=False)
                labels = [label_names[int(c)] for c in chosen]
            else:
                labels = [label_names[int(rng.integers(len(label_names)))]]
            log.append(GraphDelta.set_label(node_names[idx], labels))
            emitted += 1
        elif op == "update_features":
            idx = int(rng.integers(len(node_names)))
            log.append(GraphDelta.update_features(node_names[idx], random_feature_row()))
            emitted += 1
        else:  # add_node, immediately wired in with one undirected link
            name = f"stream_node_{n_new_nodes}"
            n_new_nodes += 1
            while name in hin.node_names:
                name = f"stream_node_{n_new_nodes}"
                n_new_nodes += 1
            labels = (
                [label_names[int(rng.integers(len(label_names)))]]
                if rng.random() < 0.5
                else []
            )
            log.append(
                GraphDelta.add_node(name, features=random_feature_row(), labels=labels)
            )
            neighbour = int(rng.integers(len(node_names)))
            k = int(rng.integers(len(relation_names)))
            log.append(
                GraphDelta.add_link(name, node_names[neighbour], relation_names[k])
            )
            new_idx = len(node_names)
            node_names.append(name)
            pair = (neighbour, new_idx, k)
            pair_set.add(pair)
            removable.append(pair)
            emitted += 2

        if emitted % batch_size == 0:
            log.commit()
    log.commit()
    return log
