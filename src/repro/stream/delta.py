"""Graph deltas: the unit of change for an evolving HIN.

A :class:`GraphDelta` is one edit — add a node, add or remove a link,
set a node's labels, or replace its feature vector — expressed by
*name* (like :class:`~repro.hin.builder.HINBuilder`) so deltas stay
meaningful across index growth.  A :class:`DeltaBatch` is an ordered,
composable sequence of deltas applied atomically.

Two consumers share one resolution pass (:func:`resolve_batch`):

* :func:`apply_batch` materialises a fresh immutable
  :class:`~repro.hin.graph.HIN` — the reference semantics;
* :class:`repro.stream.operators.IncrementalOperators` patches its
  cached transition operators from the same resolved edit list, which
  is what makes the patched-equals-rebuilt exactness contract testable
  against a single source of truth.

Link semantics follow the builder: an undirected link is two converse
tensor entries (one entry when it is a self-loop), the entry written for
``source -> target`` is ``A[target, source, k]``, and repeated adds of
the same entry accumulate weight.  ``remove_link`` deletes the entry
*entirely* (whatever weight it accumulated); removing an absent link is
a validation error.  New relation types cannot be introduced by a delta
— the relation space is part of the schema, fixed by the seed HIN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError, ValidationError
from repro.hin.graph import HIN
from repro.tensor.sptensor import SparseTensor3

#: The edit operations a delta can carry.
DELTA_OPS = ("add_node", "add_link", "remove_link", "set_label", "update_features")


@dataclass(frozen=True)
class GraphDelta:
    """One named edit to an evolving HIN.

    Use the classmethod constructors (:meth:`add_node`, :meth:`add_link`,
    :meth:`remove_link`, :meth:`set_label`, :meth:`update_features`)
    rather than the raw dataclass: they populate exactly the fields the
    operation needs and validate the rest.  Name-level validation (does
    the node exist, is the relation known) happens against a concrete
    HIN in :func:`resolve_batch`.
    """

    op: str
    name: str | None = None
    source: str | None = None
    target: str | None = None
    relation: str | None = None
    weight: float = 1.0
    directed: bool = False
    labels: tuple[str, ...] = ()
    features: tuple[float, ...] | None = None

    def __post_init__(self):
        if self.op not in DELTA_OPS:
            raise ValidationError(
                f"delta op must be one of {DELTA_OPS}, got {self.op!r}"
            )
        if self.op in ("add_link", "remove_link"):
            if self.source is None or self.target is None or self.relation is None:
                raise ValidationError(
                    f"{self.op} deltas need source, target and relation"
                )
        elif self.name is None:
            raise ValidationError(f"{self.op} deltas need a node name")
        if self.op == "add_link":
            if not np.isfinite(self.weight) or self.weight <= 0:
                raise ValidationError(
                    f"link weight must be positive and finite, got {self.weight}"
                )
        if self.op in ("add_node", "update_features") and self.features is None:
            raise ValidationError(f"{self.op} deltas need a feature vector")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def add_node(cls, name, *, features, labels: Sequence[str] = ()) -> "GraphDelta":
        """A new node with its feature vector and zero or more labels."""
        return cls(
            op="add_node",
            name=str(name),
            features=_as_feature_tuple(features, str(name)),
            labels=tuple(str(c) for c in labels),
        )

    @classmethod
    def add_link(
        cls, source, target, relation, *, weight: float = 1.0, directed: bool = False
    ) -> "GraphDelta":
        """A new link ``source -> target`` (both directions unless directed)."""
        return cls(
            op="add_link",
            source=str(source),
            target=str(target),
            relation=str(relation),
            weight=float(weight),
            directed=bool(directed),
        )

    @classmethod
    def remove_link(
        cls, source, target, relation, *, directed: bool = False
    ) -> "GraphDelta":
        """Delete the link ``source -> target`` (and its converse unless directed)."""
        return cls(
            op="remove_link",
            source=str(source),
            target=str(target),
            relation=str(relation),
            directed=bool(directed),
        )

    @classmethod
    def set_label(cls, name, labels: Sequence[str]) -> "GraphDelta":
        """Replace a node's label set (empty sequence clears it)."""
        return cls(op="set_label", name=str(name), labels=tuple(str(c) for c in labels))

    @classmethod
    def update_features(cls, name, features) -> "GraphDelta":
        """Replace a node's feature vector."""
        return cls(
            op="update_features",
            name=str(name),
            features=_as_feature_tuple(features, str(name)),
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serialisable dict with only the fields the op uses."""
        payload: dict = {"op": self.op}
        if self.name is not None:
            payload["name"] = self.name
        if self.op in ("add_link", "remove_link"):
            payload["source"] = self.source
            payload["target"] = self.target
            payload["relation"] = self.relation
            if self.directed:
                payload["directed"] = True
            if self.op == "add_link" and self.weight != 1.0:
                payload["weight"] = self.weight
        if self.op in ("add_node", "set_label") and (self.labels or self.op == "set_label"):
            payload["labels"] = list(self.labels)
        if self.features is not None:
            payload["features"] = list(self.features)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "GraphDelta":
        """Rebuild a delta from :meth:`to_dict` output."""
        if not isinstance(payload, dict):
            raise ValidationError(f"delta payload must be a dict, got {type(payload).__name__}")
        op = payload.get("op")
        if op not in DELTA_OPS:
            raise ValidationError(f"delta op must be one of {DELTA_OPS}, got {op!r}")
        kwargs: dict = {"op": op}
        for key in ("name", "source", "target", "relation"):
            if payload.get(key) is not None:
                kwargs[key] = str(payload[key])
        if "weight" in payload:
            kwargs["weight"] = float(payload["weight"])
        if "directed" in payload:
            kwargs["directed"] = bool(payload["directed"])
        if "labels" in payload:
            kwargs["labels"] = tuple(str(c) for c in payload["labels"])
        if payload.get("features") is not None:
            kwargs["features"] = tuple(float(v) for v in payload["features"])
        return cls(**kwargs)


def _as_feature_tuple(features, name: str) -> tuple[float, ...]:
    feats = np.asarray(features, dtype=float)
    if feats.ndim != 1:
        raise ShapeError(
            f"features for node {name!r} must be 1-D, got shape {feats.shape}"
        )
    if feats.size and not np.all(np.isfinite(feats)):
        raise ValidationError(f"features for node {name!r} contain non-finite values")
    return tuple(float(v) for v in feats)


class DeltaBatch:
    """An ordered, immutable sequence of deltas applied atomically.

    Batches compose with ``+`` (concatenation preserves order, which
    matters: weight accumulation and remove-then-re-add sequences are
    order-sensitive).
    """

    __slots__ = ("_deltas",)

    def __init__(self, deltas: Iterable[GraphDelta] = ()):
        deltas = tuple(deltas)
        for delta in deltas:
            if not isinstance(delta, GraphDelta):
                raise ValidationError(
                    f"DeltaBatch entries must be GraphDelta, got {type(delta).__name__}"
                )
        self._deltas = deltas

    def __len__(self) -> int:
        return len(self._deltas)

    def __iter__(self):
        return iter(self._deltas)

    def __getitem__(self, index):
        return self._deltas[index]

    def __add__(self, other) -> "DeltaBatch":
        if isinstance(other, DeltaBatch):
            return DeltaBatch(self._deltas + other._deltas)
        return DeltaBatch(self._deltas + tuple(as_batch(other)))

    def __eq__(self, other) -> bool:
        if not isinstance(other, DeltaBatch):
            return NotImplemented
        return self._deltas == other._deltas

    def __repr__(self) -> str:
        counts = ", ".join(f"{op}={n}" for op, n in self.op_counts().items())
        return f"DeltaBatch({len(self._deltas)} deltas: {counts or 'empty'})"

    def op_counts(self) -> dict[str, int]:
        """Histogram of operations, in :data:`DELTA_OPS` order."""
        counts = {op: 0 for op in DELTA_OPS}
        for delta in self._deltas:
            counts[delta.op] += 1
        return {op: n for op, n in counts.items() if n}


def as_batch(deltas) -> DeltaBatch:
    """Coerce a batch / delta / iterable of deltas into a :class:`DeltaBatch`."""
    if isinstance(deltas, DeltaBatch):
        return deltas
    if isinstance(deltas, GraphDelta):
        return DeltaBatch([deltas])
    return DeltaBatch(deltas)


@dataclass
class ResolvedBatch:
    """A batch resolved against a concrete HIN: index-level edit lists.

    Produced by :func:`resolve_batch`, consumed by both
    :func:`apply_batch` (materialise a new HIN) and
    ``IncrementalOperators.apply`` (patch cached operators).  The tensor
    edits in ``link_ops`` are *entries* — undirected links already
    expanded into their converse pair, self-loops stored once — in
    delta order, which both consumers rely on for weight accumulation.
    """

    n_old: int
    n_new: int
    #: ``(name, features, label_indices)`` per appended node, in order.
    new_nodes: list[tuple[str, np.ndarray, frozenset]] = field(default_factory=list)
    #: ``("add" | "remove", i, j, k, weight)`` tensor-entry edits in delta order.
    link_ops: list[tuple[str, int, int, int, float]] = field(default_factory=list)
    #: ``(node_index, label_indices)`` assignments in delta order.
    label_ops: list[tuple[int, frozenset]] = field(default_factory=list)
    #: ``(node_index, features)`` replacements in delta order.
    feature_ops: list[tuple[int, np.ndarray]] = field(default_factory=list)
    #: Distinct pre-existing entries deleted by the batch.
    removed_existing: list[tuple[int, int, int]] = field(default_factory=list)
    #: Surviving appended entries ``(i, j, k, weight)`` in add order.
    added_entries: list[tuple[int, int, int, float]] = field(default_factory=list)

    @property
    def touches_links(self) -> bool:
        """Whether the batch edits any tensor entry (O/R must be patched)."""
        return bool(self.link_ops)

    @property
    def touches_features(self) -> bool:
        """Whether the batch changes feature rows (W must be patched)."""
        return bool(self.feature_ops) or bool(self.new_nodes)

    @property
    def touches_labels(self) -> bool:
        """Whether the batch changes any node's label assignment."""
        return bool(self.label_ops) or any(
            labels for _, _, labels in self.new_nodes
        )


def resolve_batch(hin: HIN, deltas) -> ResolvedBatch:
    """Validate a batch against ``hin`` and lower it to index-level edits.

    Raises :class:`ValidationError` / :class:`ShapeError` on unknown
    node, relation or label names, duplicate node additions, feature
    length mismatches, removal of absent links, and multi-label
    assignments on a single-label HIN.  Validation sees the batch
    *sequentially*: a link may reference a node added earlier in the
    same batch, and removing a link twice is an error unless it was
    re-added in between.
    """
    if not isinstance(hin, HIN):
        raise ValidationError(f"expected a HIN, got {type(hin).__name__}")
    batch = as_batch(deltas)
    n_old = hin.n_nodes
    d = hin.n_features
    node_index = {name: idx for idx, name in enumerate(hin.node_names)}
    label_index = {name: idx for idx, name in enumerate(hin.label_names)}
    relation_index = {name: idx for idx, name in enumerate(hin.relation_names)}

    i0, j0, k0 = hin.tensor.coords
    existing_flat = (k0 * n_old + j0) * n_old + i0  # already sorted ascending

    def entry_exists(i: int, j: int, k: int) -> bool:
        if i >= n_old or j >= n_old:
            return False
        flat = (k * n_old + j) * n_old + i
        pos = np.searchsorted(existing_flat, flat)
        return bool(pos < existing_flat.size and existing_flat[pos] == flat)

    resolved = ResolvedBatch(n_old=n_old, n_new=n_old)
    removed: set[tuple[int, int, int]] = set()
    pending: list[tuple[int, int, int, float] | None] = []
    pending_at: dict[tuple[int, int, int], list[int]] = {}

    def resolve_node(name: str, op: str) -> int:
        try:
            return node_index[name]
        except KeyError:
            raise ValidationError(f"unknown node {name!r} in {op} delta") from None

    def resolve_labels(labels, name: str):
        indices = set()
        for label in labels:
            if label not in label_index:
                raise ValidationError(
                    f"unknown label {label!r} for node {name!r}; "
                    f"known labels: {list(hin.label_names)}"
                )
            indices.add(label_index[label])
        if not hin.multilabel and len(indices) > 1:
            raise ValidationError(
                f"node {name!r} assigned {len(indices)} labels in a single-label HIN"
            )
        return frozenset(indices)

    def check_features(features, name: str) -> np.ndarray:
        feats = np.asarray(features, dtype=float)
        if feats.shape != (d,):
            raise ShapeError(
                f"node {name!r} has {feats.size} features, the HIN has {d}"
            )
        return feats

    for delta in batch:
        if delta.op == "add_node":
            if delta.name in node_index:
                raise ValidationError(f"duplicate node name: {delta.name!r}")
            feats = check_features(delta.features, delta.name)
            labels = resolve_labels(delta.labels, delta.name)
            node_index[delta.name] = len(node_index)
            resolved.new_nodes.append((delta.name, feats, labels))
        elif delta.op in ("add_link", "remove_link"):
            src = resolve_node(delta.source, delta.op)
            dst = resolve_node(delta.target, delta.op)
            if delta.relation not in relation_index:
                raise ValidationError(
                    f"unknown relation {delta.relation!r} in {delta.op} delta; "
                    "deltas cannot introduce new relation types "
                    f"(known: {list(hin.relation_names)})"
                )
            k = relation_index[delta.relation]
            entries = [(dst, src, k)]
            if not delta.directed and src != dst:
                entries.append((src, dst, k))
            if delta.op == "add_link":
                for key in entries:
                    position = len(pending)
                    pending.append((*key, float(delta.weight)))
                    pending_at.setdefault(key, []).append(position)
                    resolved.link_ops.append(("add", *key, float(delta.weight)))
            else:
                for key in entries:
                    had_entry = False
                    positions = pending_at.pop(key, [])
                    for position in positions:
                        pending[position] = None
                        had_entry = True
                    if key not in removed and entry_exists(*key):
                        removed.add(key)
                        resolved.removed_existing.append(key)
                        had_entry = True
                    if not had_entry:
                        raise ValidationError(
                            f"cannot remove absent link "
                            f"{delta.source!r} -> {delta.target!r} "
                            f"({delta.relation!r})"
                        )
                    resolved.link_ops.append(("remove", *key, 0.0))
        elif delta.op == "set_label":
            idx = resolve_node(delta.name, delta.op)
            if idx < n_old:
                resolved.label_ops.append(
                    (idx, resolve_labels(delta.labels, delta.name))
                )
            else:
                # Labeling a node added earlier in this batch: fold the
                # assignment into the node record.
                name, feats, _ = resolved.new_nodes[idx - n_old]
                resolved.new_nodes[idx - n_old] = (
                    name,
                    feats,
                    resolve_labels(delta.labels, delta.name),
                )
        elif delta.op == "update_features":
            idx = resolve_node(delta.name, delta.op)
            feats = check_features(delta.features, delta.name)
            if idx < n_old:
                resolved.feature_ops.append((idx, feats))
            else:
                name, _, labels = resolved.new_nodes[idx - n_old]
                resolved.new_nodes[idx - n_old] = (name, feats, labels)

    resolved.n_new = n_old + len(resolved.new_nodes)
    resolved.added_entries = [entry for entry in pending if entry is not None]
    return resolved


def apply_batch(hin: HIN, deltas) -> HIN:
    """Apply a batch to ``hin`` and return the mutated graph as a new HIN.

    The reference semantics of the streaming layer: the incremental
    operator patcher is pinned (bit-or-near-equal) against
    ``build_operators(apply_batch(hin, batch))``.
    """
    return materialize_batch(hin, resolve_batch(hin, deltas))


def materialize_batch(hin: HIN, resolved: ResolvedBatch) -> HIN:
    """Build the post-batch HIN from a :class:`ResolvedBatch`."""
    n_old, n_new = resolved.n_old, resolved.n_new
    m = hin.n_relations
    d = hin.n_features

    i0, j0, k0 = hin.tensor.coords
    values0 = hin.tensor.values
    if resolved.removed_existing:
        removal_flat = np.array(
            [(k * n_old + j) * n_old + i for i, j, k in resolved.removed_existing],
            dtype=np.int64,
        )
        keep = ~np.isin((k0 * n_old + j0) * n_old + i0, removal_flat)
    else:
        keep = slice(None)
    if resolved.added_entries:
        add_i, add_j, add_k, add_w = (
            np.asarray(col) for col in zip(*resolved.added_entries)
        )
    else:
        add_i = add_j = add_k = np.empty(0, dtype=np.int64)
        add_w = np.empty(0, dtype=float)
    tensor = SparseTensor3(
        np.concatenate([i0[keep], add_i]),
        np.concatenate([j0[keep], add_j]),
        np.concatenate([k0[keep], add_k]),
        np.concatenate([values0[keep], add_w]),
        shape=(n_new, n_new, m),
    )

    if sp.issparse(hin.features):
        features = sp.lil_matrix((n_new, d), dtype=float)
        features[:n_old] = hin.features
        for offset, (_, feats, _) in enumerate(resolved.new_nodes):
            features[n_old + offset] = feats
        for idx, feats in resolved.feature_ops:
            features[idx] = feats
        features = features.tocsr()
    elif resolved.touches_features:
        base = np.asarray(hin.features, dtype=float)
        new_rows = [feats[None, :] for _, feats, _ in resolved.new_nodes]
        features = np.vstack([base] + new_rows) if new_rows else base.copy()
        for idx, feats in resolved.feature_ops:
            features[idx] = feats
    else:
        features = hin.features

    label_matrix = np.zeros((n_new, hin.n_labels), dtype=bool)
    label_matrix[:n_old] = hin.label_matrix
    for offset, (_, _, labels) in enumerate(resolved.new_nodes):
        for c in labels:
            label_matrix[n_old + offset, c] = True
    for idx, labels in resolved.label_ops:
        label_matrix[idx] = False
        for c in labels:
            label_matrix[idx, c] = True

    node_names = list(hin.node_names) + [name for name, _, _ in resolved.new_nodes]
    return HIN(
        tensor,
        hin.relation_names,
        features,
        label_matrix,
        hin.label_names,
        node_names=node_names,
        multilabel=hin.multilabel,
        metadata=hin.metadata,
    )
