"""Delta-maintained T-Mark operators: patch ``(O, R, W)`` instead of rebuilding.

:class:`IncrementalOperators` caches the operator triple for a HIN and,
given a :class:`~repro.stream.delta.DeltaBatch`, brings it to the
post-batch state by renormalising only what the batch touched:

* ``O`` — the ``(j, k)`` columns hit by a link edit are recomputed from
  their raw weights (sequential sum, then multiply by the reciprocal —
  the exact float sequence of the full build); only relations with a
  touched column get a fresh CSR slice, every other slice object is
  reused as-is;
* ``R`` — the ``(i, j)`` fibres hit by a link edit are renormalised the
  same way (direct division, matching the full build); only relations
  participating in a touched fibre get fresh slices;
* ``W`` — link and label edits never touch it; feature edits update the
  maintained cosine-similarity rows/columns (dense cosine with
  ``top_k=None``, the paper's configuration) or fall back to a full
  :func:`~repro.core.features.feature_transition_matrix` recompute for
  the other metrics / ``top_k`` / sparse-feature configurations.

**Exactness contract** (pinned by ``tests/stream/test_operators.py``):
after ``apply(batch)`` the operators equal ``build_operators`` on
``apply_batch(hin, batch)`` — bitwise for link-only batches (including
columns gaining their first out-link or losing their last, in both
directions), and to tight ``allclose`` tolerance when feature edits
route through the incremental similarity update.  This holds because
raw weights are accumulated in delta order (matching the COO coalescing
order of a rebuild) and the touched-column/fibre sums replicate
``np.bincount``'s left-to-right accumulation.

Dangling transitions need no special-casing in the numerics — a column
or fibre whose raw weights vanish is simply dropped from the store and
from the non-dangling indicator, and the propagation kernels already
apply the uniform correction analytically — but both directions are
exercised explicitly by the equivalence tests.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp

from repro.core.features import (
    feature_transition_matrix,
    normalise_similarity_columns,
)
from repro.core.tmark import TMarkOperators
from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.obs.recorder import get_recorder
from repro.stream.delta import ResolvedBatch, materialize_batch, resolve_batch
from repro.tensor.transition import (
    NodeTransitionTensor,
    RelationTransitionTensor,
    build_transition_tensors,
)


def _pad_csr(matrix: sp.csr_matrix, n: int) -> sp.csr_matrix:
    """Reshape an ``(n0, n0)`` CSR to ``(n, n)`` by appending empty rows."""
    n0 = matrix.shape[0]
    if n == n0:
        return matrix
    indptr = np.concatenate(
        [matrix.indptr, np.full(n - n0, matrix.indptr[-1], dtype=matrix.indptr.dtype)]
    )
    return sp.csr_matrix((matrix.data, matrix.indices, indptr), shape=(n, n))


class IncrementalOperators:
    """The T-Mark operator triple, kept in sync with an evolving HIN.

    Parameters
    ----------
    hin:
        The seed graph; its operators are built cold on construction.
    similarity_top_k, similarity_metric:
        As in :func:`repro.core.tmark.build_operators`.  The incremental
        ``W`` path covers dense-feature cosine with ``top_k=None`` (the
        paper's configuration); other settings stay correct via a full
        ``W`` recompute on feature-touching batches.
    """

    def __init__(
        self,
        hin: HIN,
        *,
        similarity_top_k: int | None = None,
        similarity_metric: str = "cosine",
    ):
        if not isinstance(hin, HIN):
            raise ValidationError(f"expected a HIN, got {type(hin).__name__}")
        self._hin = hin
        self._top_k = similarity_top_k
        self._metric = similarity_metric
        self._n = hin.n_nodes
        self._m = hin.n_relations
        self._build_link_stores()
        self._build_w()
        # Seed the facades from the reference build so the starting
        # state is the full-build state by construction.
        self._o, self._r = build_transition_tensors(hin.tensor)
        self._o_slices = list(self._o._slices)
        self._r_slices = list(self._r._rel_slices)
        self._pair_i = self._r._pair_i
        self._pair_j = self._r._pair_j

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def hin(self) -> HIN:
        """The graph the cached operators currently describe."""
        return self._hin

    @property
    def operators(self) -> TMarkOperators:
        """The current operator triple, ready for ``TMark.fit(operators=...)``."""
        return TMarkOperators(
            o_tensor=self._o,
            r_tensor=self._r,
            w_matrix=self._w,
            shape=(self._n, self._m),
            similarity_top_k=self._top_k,
            similarity_metric=self._metric,
        )

    def apply(self, deltas, *, recorder=None) -> HIN:
        """Apply a delta batch: patch the operators, return the new HIN.

        Emits one ``operator_patch`` event (touched column/fibre counts,
        wall-clock) on the given or ambient recorder.
        """
        rec = get_recorder() if recorder is None else recorder
        started = time.perf_counter() if rec.enabled else 0.0
        resolved = resolve_batch(self._hin, deltas)
        new_hin = materialize_batch(self._hin, resolved)

        grown = resolved.n_new > resolved.n_old
        self._n = resolved.n_new
        n_cols, n_fibres, o_deltas, r_deltas = self._patch_links(resolved)
        o_clear, o_set = o_deltas
        r_clear, r_set, pairs_added, pairs_removed = r_deltas
        touched_o = set(o_clear) | set(o_set)
        touched_r = set(r_clear) | set(r_set)
        if touched_o or grown:
            self._refresh_o(o_clear, o_set, grown)
        if touched_r or pairs_added or pairs_removed or grown:
            self._refresh_r(r_clear, r_set, pairs_added, pairs_removed, grown)
        self._patch_w(resolved, new_hin)
        self._hin = new_hin

        if rec.enabled:
            rec.emit(
                "operator_patch",
                n_link_ops=len(resolved.link_ops),
                n_new_nodes=len(resolved.new_nodes),
                n_nodes=self._n,
                touched_columns=n_cols,
                touched_fibres=n_fibres,
                touched_o_slices=len(touched_o),
                touched_r_slices=len(touched_r),
                full_w_recompute=bool(
                    resolved.touches_features and self._sims is None
                ),
                seconds=time.perf_counter() - started,
            )
            rec.count("operator_patches")
        return new_hin

    # ------------------------------------------------------------------
    # Cold build of the raw-weight stores
    # ------------------------------------------------------------------
    def _build_link_stores(self) -> None:
        """Group the tensor's raw entries by O-column and R-fibre.

        ``_o_cols[k][j] = (i_sorted, raw, norm)`` and
        ``_r_fibres[(i, j)] = (k_sorted, raw, norm)``; the normalised
        values are exactly the ones the full build produces (same order,
        same float operations).
        """
        tensor = self._hin.tensor
        n, m = self._n, self._m
        i, j, k = tensor.coords
        values = tensor.values

        # O: coords are sorted by (k, j, i), so mode-1 columns are
        # contiguous runs with i ascending inside each.
        col_sums = tensor.mode1_column_sums()
        cols = k * n + j
        scale = np.ones_like(col_sums)
        nondangling = col_sums > 0
        scale[nondangling] = 1.0 / col_sums[nondangling]
        o_norm = values * scale[cols]
        self._o_cols: list[dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]]] = [
            {} for _ in range(m)
        ]
        if cols.size:
            unique_cols, starts = np.unique(cols, return_index=True)
            bounds = np.append(starts, cols.size)
            for pos, col in enumerate(unique_cols.tolist()):
                sel = slice(bounds[pos], bounds[pos + 1])
                rel, node = divmod(col, n)
                self._o_cols[rel][node] = (
                    i[sel].copy(),
                    values[sel].copy(),
                    o_norm[sel].copy(),
                )

        # R: fibre (i, j) entries appear at ascending k in the k-major
        # coord order; a stable sort by fibre id preserves that.
        fibre_sums = tensor.mode3_fibre_sums()
        fibres = j * n + i
        r_norm = values / fibre_sums[fibres]
        self._r_fibres: dict[
            tuple[int, int], tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        if fibres.size:
            order = np.argsort(fibres, kind="stable")
            sorted_fibres = fibres[order]
            unique_fibres, starts = np.unique(sorted_fibres, return_index=True)
            bounds = np.append(starts, sorted_fibres.size)
            for pos, fibre in enumerate(unique_fibres.tolist()):
                sel = order[bounds[pos] : bounds[pos + 1]]
                node_j, node_i = divmod(fibre, n)
                self._r_fibres[(node_i, node_j)] = (
                    k[sel].copy(),
                    values[sel].copy(),
                    r_norm[sel].copy(),
                )

    def _build_w(self) -> None:
        features = self._hin.features
        incremental = (
            self._metric == "cosine"
            and self._top_k is None
            and not sp.issparse(features)
        )
        if incremental:
            feats = np.asarray(features, dtype=float)
            norms = np.linalg.norm(feats, axis=1)
            safe = np.where(norms > 0, norms, 1.0)
            unit = feats / safe[:, None]
            unit[norms == 0] = 0.0
            # einsum, matching cosine_similarity_matrix's fixed
            # per-element summation order — a BLAS GEMM here would break
            # the bitwise contract against cold rebuilds.
            sims = np.einsum("nd,cd->nc", unit, unit)
            np.clip(sims, 0.0, None, out=sims)
            # The buffers are capacity-managed: rows past the logical
            # count ``_w_n`` are always zero, growth reallocates with
            # headroom, and every read slices ``[:n]`` — so a delta
            # batch never pays an O(n * d) copy just to add a node.
            self._norms = norms
            self._unit = unit
            self._sims = sims
            self._w_n = feats.shape[0]
            self._w = normalise_similarity_columns(sims.copy())
        else:
            self._norms = None
            self._unit = None
            self._sims = None
            self._w_n = 0
            self._w = feature_transition_matrix(
                features, top_k=self._top_k, metric=self._metric
            )

    # ------------------------------------------------------------------
    # Link patching
    # ------------------------------------------------------------------
    def _patch_links(self, resolved: ResolvedBatch):
        """Replay the batch's tensor edits onto the raw-weight stores.

        For every touched column/fibre the old normalised entries are
        collected into per-relation *clear* triplets and the recomputed
        entries into *set* triplets; :meth:`_refresh_o` /
        :meth:`_refresh_r` turn those into two sparse additions per
        touched slice (``old - C + N``), so slice maintenance costs
        O(touched entries + nnz_slice) in C instead of a Python walk
        over the whole relation.
        """
        col_ops: dict[tuple[int, int], list[tuple[str, int, float]]] = {}
        fibre_ops: dict[tuple[int, int], list[tuple[str, int, float]]] = {}
        for kind, i, j, k, w in resolved.link_ops:
            col_ops.setdefault((k, j), []).append((kind, i, w))
            fibre_ops.setdefault((i, j), []).append((kind, k, w))

        o_clear: dict[int, list] = {}
        o_set: dict[int, list] = {}
        for (k, j), ops in col_ops.items():
            store = self._o_cols[k]
            entry = store.get(j)
            raw = dict(zip(entry[0].tolist(), entry[1].tolist())) if entry else {}
            if entry is not None:
                rows, cols, values = o_clear.setdefault(k, ([], [], []))
                rows.extend(entry[0].tolist())
                cols.extend([j] * entry[0].size)
                values.extend(entry[2].tolist())
            for kind, i, w in ops:
                if kind == "add":
                    raw[i] = raw.get(i, 0.0) + w
                else:
                    raw.pop(i, None)
            if not raw:
                store.pop(j, None)  # column lost its last out-link: dangling
                continue
            i_sorted = sorted(raw)
            raw_arr = np.array([raw[i] for i in i_sorted], dtype=float)
            total = 0.0  # sequential, matching bincount's accumulation order
            for value in raw_arr:
                total += value
            norm = raw_arr * (1.0 / total)
            store[j] = (np.array(i_sorted, dtype=np.int64), raw_arr, norm)
            rows, cols, values = o_set.setdefault(k, ([], [], []))
            rows.extend(i_sorted)
            cols.extend([j] * len(i_sorted))
            values.extend(norm.tolist())

        r_clear: dict[int, list] = {}
        r_set: dict[int, list] = {}
        pairs_added: list[tuple[int, int]] = []
        pairs_removed: list[tuple[int, int]] = []
        for (i, j), ops in fibre_ops.items():
            entry = self._r_fibres.get((i, j))
            raw = dict(zip(entry[0].tolist(), entry[1].tolist())) if entry else {}
            if entry is not None:
                for k_old, v_old in zip(entry[0].tolist(), entry[2].tolist()):
                    rows, cols, values = r_clear.setdefault(k_old, ([], [], []))
                    rows.append(i)
                    cols.append(j)
                    values.append(v_old)
            for kind, k, w in ops:
                if kind == "add":
                    raw[k] = raw.get(k, 0.0) + w
                else:
                    raw.pop(k, None)
            if not raw:
                if self._r_fibres.pop((i, j), None) is not None:
                    pairs_removed.append((i, j))  # pair fully unlinked
                continue
            if entry is None:
                pairs_added.append((i, j))  # pair gained its first relation
            k_sorted = sorted(raw)
            raw_arr = np.array([raw[k] for k in k_sorted], dtype=float)
            total = 0.0
            for value in raw_arr:
                total += value
            norm = raw_arr / total
            self._r_fibres[(i, j)] = (
                np.array(k_sorted, dtype=np.int64),
                raw_arr,
                norm,
            )
            for k_new, v_new in zip(k_sorted, norm.tolist()):
                rows, cols, values = r_set.setdefault(k_new, ([], [], []))
                rows.append(i)
                cols.append(j)
                values.append(v_new)
        return (
            len(col_ops),
            len(fibre_ops),
            (o_clear, o_set),
            (r_clear, r_set, pairs_added, pairs_removed),
        )

    @staticmethod
    def _apply_slice_deltas(slice_k, clear, set_, n: int):
        """Clear-then-set of entries on one slice, as a sorted-key merge.

        The slice's entries are flattened to sorted ``row * n + col``
        keys (CSR canonical order is exactly that), cleared keys are
        dropped with a searchsorted mask and new keys spliced in with
        ``np.insert``.  No float arithmetic touches any value — old
        entries pass through verbatim and new entries are stored as
        given — so untouched entries stay bit-identical to a rebuild by
        construction.
        """
        if slice_k.shape[0] != n:
            slice_k = _pad_csr(slice_k, n)
        if clear is None and set_ is None:
            return slice_k
        counts = np.diff(slice_k.indptr)
        keys = np.repeat(np.arange(n, dtype=np.int64), counts) * n + slice_k.indices
        vals = slice_k.data
        if clear is not None:
            cleared = np.asarray(clear[0], dtype=np.int64) * n + np.asarray(
                clear[1], dtype=np.int64
            )
            cleared.sort()
            keep = np.ones(keys.size, dtype=bool)
            keep[np.searchsorted(keys, cleared)] = False
            keys = keys[keep]
            vals = vals[keep]
        if set_ is not None:
            fresh = np.asarray(set_[0], dtype=np.int64) * n + np.asarray(
                set_[1], dtype=np.int64
            )
            order = np.argsort(fresh)
            fresh = fresh[order]
            slots = np.searchsorted(keys, fresh)
            keys = np.insert(keys, slots, fresh)
            vals = np.insert(vals, slots, np.asarray(set_[2], dtype=float)[order])
        rows, cols = np.divmod(keys, n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
        return sp.csr_matrix((vals, cols, indptr), shape=(n, n))

    def _refresh_o(self, o_clear, o_set, grown: bool) -> None:
        """Patch the touched O slices; pad the rest if grown."""
        n = self._n
        touched = set(o_clear) | set(o_set)
        for k in range(self._m):
            if k in touched or grown:
                self._o_slices[k] = self._apply_slice_deltas(
                    self._o_slices[k], o_clear.get(k), o_set.get(k), n
                )
        nondangling = [
            k * n + np.fromiter(sorted(store), dtype=np.int64, count=len(store))
            for k, store in enumerate(self._o_cols)
            if store
        ]
        flat = (
            np.concatenate(nondangling)
            if nondangling
            else np.empty(0, dtype=np.int64)
        )
        self._o = NodeTransitionTensor.from_parts(
            list(self._o_slices), flat, n=n, m=self._m
        )

    def _refresh_r(
        self, r_clear, r_set, pairs_added, pairs_removed, grown: bool
    ) -> None:
        """Patch the touched R slices; maintain the linked-pair arrays."""
        n = self._n
        touched = set(r_clear) | set(r_set)
        for k in range(self._m):
            if k in touched or grown:
                self._r_slices[k] = self._apply_slice_deltas(
                    self._r_slices[k], r_clear.get(k), r_set.get(k), n
                )
        if pairs_added or pairs_removed or grown:
            # _pair_i/_pair_j are sorted by flat id j*n + i; lexicographic
            # (j, i) order is preserved under a changed n, so re-encoding
            # after growth keeps the array sorted.  Removed/added ids are
            # merged in with searchsorted (all arrays sorted + unique)
            # instead of set routines, which re-sort the whole array.
            pair_flat = self._pair_j * n + self._pair_i
            if pairs_removed:
                removed = np.array(
                    sorted(j * n + i for i, j in pairs_removed), dtype=np.int64
                )
                hits = np.searchsorted(pair_flat, removed)
                keep = np.ones(pair_flat.size, dtype=bool)
                keep[hits] = False
                pair_flat = pair_flat[keep]
            if pairs_added:
                added = np.array(
                    sorted(j * n + i for i, j in pairs_added), dtype=np.int64
                )
                slots = np.searchsorted(pair_flat, added)
                pair_flat = np.insert(pair_flat, slots, added)
            self._pair_j, self._pair_i = np.divmod(pair_flat, n)
        self._r = RelationTransitionTensor.from_parts(
            list(self._r_slices), self._pair_i, self._pair_j, n=n, m=self._m
        )

    # ------------------------------------------------------------------
    # W patching
    # ------------------------------------------------------------------
    def _patch_w(self, resolved: ResolvedBatch, new_hin: HIN) -> None:
        if not resolved.touches_features:
            return
        if self._sims is None:
            self._w = feature_transition_matrix(
                new_hin.features, top_k=self._top_k, metric=self._metric
            )
            return
        n_old = self._w_n
        n = self._n
        if n > self._unit.shape[0]:
            # Out of capacity: reallocate with headroom so a long run of
            # growth batches amortises to O(1) copies per node.
            cap = max(n, self._unit.shape[0] + max(64, self._unit.shape[0] // 8))
            unit = np.zeros((cap, self._unit.shape[1]))
            unit[:n_old] = self._unit[:n_old]
            self._unit = unit
            norms = np.zeros(cap)
            norms[:n_old] = self._norms[:n_old]
            self._norms = norms
            sims = np.zeros((cap, cap))
            sims[:n_old, :n_old] = self._sims[:n_old, :n_old]
            self._sims = sims
        changed = [n_old + offset for offset in range(len(resolved.new_nodes))]
        changed += [idx for idx, _ in resolved.feature_ops]
        new_features = np.asarray(new_hin.features, dtype=float)
        unit = self._unit[:n]
        for idx in changed:
            row = new_features[idx]
            norm = np.linalg.norm(row)
            self._norms[idx] = norm
            unit[idx] = row / norm if norm > 0 else 0.0
        # One matvec per changed node refreshes its similarity row/column;
        # zero-norm rows come out zero automatically (their unit row is 0).
        # einsum's matvec reduces in the same per-element order as the
        # full panel above, so refreshed rows carry identical bits.
        for idx in changed:
            sims_row = np.einsum("nd,d->n", unit, unit[idx])
            np.clip(sims_row, 0.0, None, out=sims_row)
            self._sims[idx, :n] = sims_row
            self._sims[:n, idx] = sims_row
        self._w_n = n
        # Same floats as normalise_similarity_columns, without copying
        # the n x n similarity buffer on the common (no zero column) path.
        sims_view = self._sims[:n, :n]
        col_sums = sims_view.sum(axis=0)
        if np.any(col_sums == 0):
            self._w = normalise_similarity_columns(sims_view.copy())
        else:
            self._w = sims_view / col_sums[None, :]
