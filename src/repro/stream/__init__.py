"""The streaming / incremental-update layer.

An evolving HIN is modelled as a seed graph plus an ordered journal of
:class:`GraphDelta` edits.  :class:`IncrementalOperators` keeps the
T-Mark operator triple ``(O, R, W)`` in sync with the graph by
renormalising only the touched columns/fibres (exact against a full
rebuild), and :class:`StreamingSession` warm-starts the per-class
chains from the previous stationary distributions so each update
reconverges in a fraction of the cold-start iterations.
"""

from repro.stream.delta import (
    DELTA_OPS,
    DeltaBatch,
    GraphDelta,
    apply_batch,
    as_batch,
    resolve_batch,
)
from repro.stream.journal import DeltaLog
from repro.stream.operators import IncrementalOperators
from repro.stream.session import StreamUpdate, StreamingSession
from repro.stream.workload import synthetic_delta_log

__all__ = [
    "DELTA_OPS",
    "DeltaBatch",
    "DeltaLog",
    "GraphDelta",
    "IncrementalOperators",
    "StreamUpdate",
    "StreamingSession",
    "apply_batch",
    "as_batch",
    "resolve_batch",
    "synthetic_delta_log",
]
