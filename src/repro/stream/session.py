"""Streaming T-Mark: apply deltas, patch operators, reconverge warm.

:class:`StreamingSession` owns the triple *(evolving HIN, incremental
operators, last fitted result)*.  Each :meth:`apply` call patches the
cached ``(O, R, W)`` through :class:`IncrementalOperators` and re-runs
the per-class chains warm-started from the previous stationary ``x`` /
``z`` (padded with uniform mass for nodes the batch added), so the walk
reconverges in a fraction of the cold-start iterations — the streaming
analogue of the warm-start ablation bench.

A session can also :meth:`resume` from a persisted
:class:`~repro.core.tmark.TMarkResult`: format-2 archives carry the
chain-start metadata (``node_names``) needed to check that the saved
stationary state still lines up with the graph's node indexing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.tmark import TMark, TMarkResult
from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.obs.health import health_from_result, worst_status
from repro.obs.recorder import get_recorder
from repro.obs.spans import span
from repro.stream.delta import as_batch
from repro.stream.journal import DeltaLog
from repro.stream.operators import IncrementalOperators


@dataclass(frozen=True)
class StreamUpdate:
    """Telemetry for one applied delta batch.

    Attributes
    ----------
    batch_index:
        0-based position of the batch in this session's stream.
    n_deltas, op_counts:
        Batch size and its per-op breakdown.
    n_nodes, n_new_nodes:
        Node count after the batch and how many the batch added.
    iterations, converged:
        Chain iterations the refit needed (max over classes) and whether
        every class chain converged — *iterations-to-reconverge* is the
        headline number of the streaming bench.
    warm:
        Whether the refit was warm-started from the previous stationary
        state (``False`` only for the first fit of a fresh session).
    apply_seconds, fit_seconds:
        Wall-clock split between the operator patch and the refit.
    health:
        Per-class convergence verdicts from :mod:`repro.obs.health`,
        mapping label name to status (``healthy`` / ``not_converged`` /
        ``stalled`` / ``oscillating`` / ``diverging``).  Empty when
        ``refit=False``.
    """

    batch_index: int
    n_deltas: int
    op_counts: dict = field(default_factory=dict)
    n_nodes: int = 0
    n_new_nodes: int = 0
    iterations: int = 0
    converged: bool = False
    warm: bool = False
    apply_seconds: float = 0.0
    fit_seconds: float = 0.0
    health: dict = field(default_factory=dict)

    @property
    def worst_health(self) -> str:
        """The most severe per-class status (``healthy`` when empty)."""
        return worst_status(self.health.values())


class StreamingSession:
    """Incremental T-Mark over an evolving HIN.

    Parameters
    ----------
    hin:
        The seed graph.
    model:
        A configured (not necessarily fitted) :class:`TMark`; defaults to
        ``TMark()``.  The session builds its incremental operators with
        the model's similarity settings so every refit can consume them
        directly.

    Examples
    --------
    >>> from repro.datasets import make_worked_example
    >>> from repro.stream import GraphDelta, StreamingSession
    >>> session = StreamingSession(make_worked_example())
    >>> _ = session.fit()
    >>> update = session.apply([GraphDelta.set_label("p2", ["DB"])])
    >>> update.warm
    True
    """

    def __init__(self, hin: HIN, model: TMark | None = None):
        self._model = TMark() if model is None else model
        if not isinstance(self._model, TMark):
            raise ValidationError(
                f"model must be a TMark, got {type(self._model).__name__}"
            )
        self._ops = IncrementalOperators(
            hin,
            similarity_top_k=self._model.similarity_top_k,
            similarity_metric=self._model.similarity_metric,
        )
        self._result: TMarkResult | None = None
        self._n_batches = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def hin(self) -> HIN:
        """The current graph (seed plus every applied batch)."""
        return self._ops.hin

    @property
    def model(self) -> TMark:
        """The session\'s TMark model (fit in place on each update)."""
        return self._model

    @property
    def operators(self) -> IncrementalOperators:
        """The live incremental operator set backing the session."""
        return self._ops

    @property
    def result(self) -> TMarkResult | None:
        """The most recent fitted result, or ``None`` before any fit."""
        return self._result

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        *,
        recorder=None,
        solver: str | None = None,
        shards: int | None = None,
        workers: int | None = None,
    ) -> TMarkResult:
        """Cold-fit the model on the current graph and cache the result.

        ``solver`` optionally overrides the model's fixed-point solver
        for this fit (see :mod:`repro.solvers`); ``shards`` / ``workers``
        run the chains sharded across fork workers (see
        :mod:`repro.shard` — bit-identical to the serial fit).
        """
        self._model.fit(
            self.hin,
            operators=self._ops.operators,
            recorder=recorder,
            solver=solver,
            shards=shards,
            workers=workers,
        )
        self._result = self._model.result_
        return self._result

    def apply(
        self,
        deltas,
        *,
        refit: bool = True,
        recorder=None,
        solver: str | None = None,
        shards: int | None = None,
        workers: int | None = None,
    ) -> StreamUpdate:
        """Apply one delta batch: patch operators, warm-refit, report.

        ``refit=False`` only advances the graph and operators (useful
        when coalescing several batches before one reconvergence).
        Emits a ``delta_apply`` event for the graph/operator update and a
        ``reconverge`` event for the refit on the given or ambient
        recorder.  ``solver`` optionally overrides the model's
        fixed-point solver for the refit; ``shards`` / ``workers`` run
        the warm refit sharded (see :mod:`repro.shard`).
        """
        rec = get_recorder() if recorder is None else recorder
        batch = as_batch(deltas)
        n_old = self.hin.n_nodes
        apply_started = time.perf_counter()
        with span("apply_deltas", recorder=rec, n_deltas=len(batch)):
            self._ops.apply(batch, recorder=rec)
        apply_seconds = time.perf_counter() - apply_started
        n_new = self.hin.n_nodes
        if rec.enabled:
            rec.emit(
                "delta_apply",
                batch_index=self._n_batches,
                n_deltas=len(batch),
                op_counts=batch.op_counts(),
                n_nodes=n_new,
                n_new_nodes=n_new - n_old,
                seconds=apply_seconds,
            )
            rec.count("delta_batches")

        iterations = 0
        converged = False
        warm = False
        fit_seconds = 0.0
        health: dict[str, str] = {}
        if refit:
            iterations, converged, warm, fit_seconds, health = self._refit(
                rec, solver=solver, shards=shards, workers=workers
            )
        update = StreamUpdate(
            batch_index=self._n_batches,
            n_deltas=len(batch),
            op_counts=batch.op_counts(),
            n_nodes=n_new,
            n_new_nodes=n_new - n_old,
            iterations=iterations,
            converged=converged,
            warm=warm,
            apply_seconds=apply_seconds,
            fit_seconds=fit_seconds,
            health=health,
        )
        self._n_batches += 1
        return update

    def reconverge(
        self,
        *,
        recorder=None,
        solver: str | None = None,
        shards: int | None = None,
        workers: int | None = None,
    ) -> StreamUpdate:
        """Warm-refit the chains on the current graph, applying nothing.

        The refit half of :meth:`apply`, callable on its own — the
        natural follow-up to a run of ``apply(..., refit=False)``
        batches, or a way to re-run the chains under a different
        ``solver``.  Warm-starts from the previous stationary pair when
        one exists, emits the same ``reconverge`` event, and returns a
        :class:`StreamUpdate` with an empty delta half
        (``n_deltas=0``).  The batch counter does not advance: no batch
        was applied.  ``shards`` / ``workers`` run the warm refit
        sharded across fork workers, bit-identical to the serial path.
        """
        rec = get_recorder() if recorder is None else recorder
        iterations, converged, warm, fit_seconds, health = self._refit(
            rec, solver=solver, shards=shards, workers=workers
        )
        return StreamUpdate(
            batch_index=self._n_batches,
            n_deltas=0,
            op_counts={},
            n_nodes=self.hin.n_nodes,
            n_new_nodes=0,
            iterations=iterations,
            converged=converged,
            warm=warm,
            apply_seconds=0.0,
            fit_seconds=fit_seconds,
            health=health,
        )

    def _refit(
        self,
        rec,
        *,
        solver: str | None = None,
        shards: int | None = None,
        workers: int | None = None,
    ):
        """Warm-refit on the current graph; shared by apply/reconverge."""
        n_now = self.hin.n_nodes
        starts = self._warm_starts(n_now)
        warm = starts is not None
        fit_started = time.perf_counter()
        with span("reconverge", recorder=rec, warm=warm, n_nodes=n_now):
            self._model.fit(
                self.hin,
                starts=starts,
                operators=self._ops.operators,
                recorder=rec,
                solver=solver,
                shards=shards,
                workers=workers,
            )
        fit_seconds = time.perf_counter() - fit_started
        self._result = self._model.result_
        iterations = max(h.n_iterations for h in self._result.histories)
        converged = all(h.converged for h in self._result.histories)
        health = {
            verdict.label: verdict.status
            for verdict in health_from_result(self._result)
        }
        if rec.enabled:
            rec.emit(
                "reconverge",
                batch_index=self._n_batches,
                warm=warm,
                iterations=iterations,
                converged=converged,
                n_nodes=n_now,
                seconds=fit_seconds,
                health=health,
                worst_health=worst_status(health.values()),
            )
            rec.count("reconverges")
        return iterations, converged, warm, fit_seconds, health

    def replay(
        self,
        log: DeltaLog,
        *,
        recorder=None,
        solver: str | None = None,
        shards: int | None = None,
        workers: int | None = None,
    ) -> list[StreamUpdate]:
        """Apply every batch of a :class:`DeltaLog` in order."""
        if not isinstance(log, DeltaLog):
            raise ValidationError(
                f"expected a DeltaLog, got {type(log).__name__}"
            )
        return [
            self.apply(
                batch,
                recorder=recorder,
                solver=solver,
                shards=shards,
                workers=workers,
            )
            for batch in log.batches()
        ]

    def _warm_starts(self, n_new: int):
        """The previous stationary pair, padded for newly added nodes.

        New nodes get uniform mass ``1/n_new`` in every class column —
        the agnostic prior; the per-column simplex projection inside the
        chain runner absorbs the resulting slight denormalisation.
        """
        previous = self._result
        if previous is None:
            return None
        x0 = previous.node_scores
        grow = n_new - x0.shape[0]
        if grow > 0:
            pad = np.full((grow, x0.shape[1]), 1.0 / n_new)
            x0 = np.vstack([x0, pad])
        return (x0, previous.relation_scores)

    # ------------------------------------------------------------------
    # Resuming from a persisted result
    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls, hin: HIN, result: TMarkResult, model: TMark | None = None
    ) -> "StreamingSession":
        """Rebuild a session around ``hin`` seeded with a saved result.

        The result must carry ``node_names`` (persistence format 2) and
        they must be a prefix of ``hin.node_names`` — streamed graphs
        only ever append nodes, so a saved stationary ``x`` stays
        row-aligned with any later snapshot of the same stream.  Label
        and relation names must match exactly.
        """
        if result.node_names is None:
            raise ValidationError(
                "result has no node_names (saved with persistence format 1?); "
                "cannot verify chain-start alignment"
            )
        if tuple(result.label_names) != tuple(hin.label_names):
            raise ValidationError(
                f"result label names {result.label_names} do not match the "
                f"HIN's {hin.label_names}"
            )
        if tuple(result.relation_names) != tuple(hin.relation_names):
            raise ValidationError(
                f"result relation names {result.relation_names} do not match "
                f"the HIN's {hin.relation_names}"
            )
        saved = tuple(result.node_names)
        if hin.node_names[: len(saved)] != saved:
            raise ValidationError(
                "result node_names are not a prefix of the HIN's node_names; "
                "the saved chains are not row-aligned with this graph"
            )
        session = cls(hin, model)
        session._result = result
        return session
