"""The append-only delta journal: an evolving HIN as seed graph + log.

A :class:`DeltaLog` records deltas in order with explicit *commit*
markers separating batches.  Serialised as JSONL — one JSON object per
line, a header line first, ``{"op": "commit"}`` lines at batch
boundaries — the format is human-diffable and append-only: extending a
journal never rewrites earlier lines.

Together with :func:`repro.hin.io.save_hin` this makes a streaming run
reproducible: ``replay(seed_hin)`` applies the journal batch by batch
and returns the final graph (or, via :meth:`DeltaLog.batches`, feeds a
:class:`~repro.stream.session.StreamingSession` the same batch sequence
the live run saw).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.stream.delta import DeltaBatch, GraphDelta, apply_batch, as_batch

_FORMAT_NAME = "repro.stream.delta-log"
_FORMAT_VERSION = 1


class DeltaLog:
    """An ordered journal of deltas with batch-boundary commit markers.

    ``append`` adds one delta to the open (uncommitted) batch;
    ``extend`` adds several; ``commit`` closes the open batch.  A
    trailing uncommitted batch is treated as committed by the readers
    (:meth:`batches`, :meth:`replay`), so a crash between the last
    append and its commit loses no deltas.
    """

    def __init__(self, deltas: Iterable[GraphDelta] = (), *, commits: Iterable[int] = ()):
        self._deltas: list[GraphDelta] = []
        self._commits: list[int] = []
        for delta in deltas:
            self.append(delta)
        previous = 0
        for commit in commits:
            commit = int(commit)
            if not previous <= commit <= len(self._deltas):
                raise ValidationError(
                    f"commit marker {commit} out of order for a "
                    f"{len(self._deltas)}-delta journal"
                )
            previous = commit
            self._commits.append(commit)

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def append(self, delta: GraphDelta) -> None:
        """Add one delta to the open batch."""
        if not isinstance(delta, GraphDelta):
            raise ValidationError(
                f"DeltaLog entries must be GraphDelta, got {type(delta).__name__}"
            )
        self._deltas.append(delta)

    def extend(self, deltas) -> None:
        """Add several deltas (a batch, iterable, or single delta)."""
        for delta in as_batch(deltas):
            self.append(delta)

    def commit(self) -> None:
        """Close the open batch (no-op when it is empty)."""
        if not self._commits or self._commits[-1] < len(self._deltas):
            self._commits.append(len(self._deltas))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._deltas)

    def __iter__(self):
        return iter(self._deltas)

    def __eq__(self, other) -> bool:
        if not isinstance(other, DeltaLog):
            return NotImplemented
        return (
            self._deltas == other._deltas
            and self._effective_commits() == other._effective_commits()
        )

    def __repr__(self) -> str:
        return f"DeltaLog({len(self._deltas)} deltas, {self.n_batches} batches)"

    def _effective_commits(self) -> list[int]:
        commits = list(self._commits)
        if not commits or commits[-1] < len(self._deltas):
            commits.append(len(self._deltas))
        return commits

    @property
    def n_batches(self) -> int:
        """Number of batches :meth:`batches` will produce."""
        return len(self.batches())

    def batches(self) -> list[DeltaBatch]:
        """The journal split at commit markers (empty batches dropped)."""
        batches = []
        start = 0
        for stop in self._effective_commits():
            if stop > start:
                batches.append(DeltaBatch(self._deltas[start:stop]))
            start = stop
        return batches

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> Path:
        """Write the journal as JSONL (header, deltas, commit markers).

        Only *explicit* commits produce marker lines; a trailing
        uncommitted batch is written as bare delta lines (``load`` and
        ``batches`` treat it as committed anyway).  This keeps saved
        journals genuinely append-only: extending a journal and saving
        again reproduces the earlier file as a byte prefix.
        """
        path = Path(path)
        lines = [
            json.dumps(
                {"format": _FORMAT_NAME, "version": _FORMAT_VERSION},
                sort_keys=True,
            )
        ]
        start = 0
        for stop in self._commits:
            for delta in self._deltas[start:stop]:
                lines.append(json.dumps(delta.to_dict(), sort_keys=True))
            lines.append(json.dumps({"op": "commit"}))
            start = stop
        for delta in self._deltas[start:]:
            lines.append(json.dumps(delta.to_dict(), sort_keys=True))
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path) -> "DeltaLog":
        """Read a journal written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise ValidationError(f"no such delta journal: {path}")
        log = cls()
        with path.open(encoding="utf-8") as handle:
            header_seen = False
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValidationError(
                        f"{path}:{line_no}: invalid JSON in delta journal: {exc}"
                    ) from None
                if not header_seen:
                    if (
                        not isinstance(payload, dict)
                        or payload.get("format") != _FORMAT_NAME
                    ):
                        raise ValidationError(
                            f"{path} is not a {_FORMAT_NAME} journal "
                            "(missing header line)"
                        )
                    if payload.get("version") != _FORMAT_VERSION:
                        raise ValidationError(
                            f"unsupported delta journal version: "
                            f"{payload.get('version')}"
                        )
                    header_seen = True
                    continue
                if payload.get("op") == "commit":
                    log.commit()
                else:
                    try:
                        log.append(GraphDelta.from_dict(payload))
                    except (ValidationError, TypeError) as exc:
                        raise ValidationError(
                            f"{path}:{line_no}: bad delta entry: {exc}"
                        ) from None
            if not header_seen:
                raise ValidationError(f"{path} is empty — not a delta journal")
        return log

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self, seed_hin: HIN) -> HIN:
        """Apply the journal to ``seed_hin`` batch by batch; return the result.

        Batch-wise application matters: it reproduces exactly the graph
        states a live :class:`~repro.stream.session.StreamingSession`
        moved through, including intermediate validation (a delta may
        only reference nodes existing at its own batch's start or added
        earlier in the same batch).
        """
        hin = seed_hin
        for batch in self.batches():
            hin = apply_batch(hin, batch)
        return hin
