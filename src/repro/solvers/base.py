"""Solver protocol, registry and the simplex safeguard.

A *solver* accelerates one per-class chain.  The chain runner evaluates
the plain Algorithm 1 step first — that evaluation is both the fallback
iterate and the map sample the accelerators extrapolate from — then
offers the ``(x_prev, g_x)`` pair to the solver via :meth:`propose`.
A ``None`` return keeps the plain step; a returned proposal replaces it
*only after* :func:`safeguard_proposal` confirms the extrapolated
iterate still lives on the probability simplex (up to the documented
drift tolerances).  Rejected proposals fall back to the plain step and
reset the solver's history (a ``solver_restart`` trace event), so a
misbehaving extrapolation can never push a chain off Theorem 1's
invariant set — the worst case is plain-iteration progress.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

#: Registered solver names (``TMark(solver=...)`` accepts exactly these).
SOLVER_NAMES = ("plain", "anderson", "aitken", "auto")

#: The no-acceleration default: the chain runner special-cases this name
#: and never instantiates a solver object for it, keeping plain fits
#: bit-identical to the pre-solver code path.
PLAIN_SOLVER = "plain"

#: Proposals with entries below this are rejected outright — the same
#: negativity budget :func:`repro.utils.simplex.project_to_simplex`
#: treats as numerical drift rather than a bug.
SAFEGUARD_NEGATIVE_TOL = 1e-6

#: Accepted proposals must carry total mass within these bounds before
#: renormalisation; an extrapolation that halves or doubles the simplex
#: mass has left the contraction's basin and is rejected instead of
#: being silently rescaled.
SAFEGUARD_MASS_BOUNDS = (0.5, 2.0)


def safeguard_proposal(proposal: np.ndarray) -> np.ndarray | None:
    """Project an extrapolated iterate back onto the simplex, or reject it.

    Returns the clipped-and-renormalised proposal when it is finite,
    no entry is below ``-``:data:`SAFEGUARD_NEGATIVE_TOL`, and the total
    mass lies within :data:`SAFEGUARD_MASS_BOUNDS`; ``None`` otherwise.
    ``None`` tells the chain runner to keep the plain power step — the
    safeguarded-fallback half of the solver contract.
    """
    arr = np.asarray(proposal, dtype=float)
    if not np.all(np.isfinite(arr)):
        return None
    if float(arr.min()) < -SAFEGUARD_NEGATIVE_TOL:
        return None
    clipped = np.clip(arr, 0.0, None)
    total = float(clipped.sum())
    low, high = SAFEGUARD_MASS_BOUNDS
    if not low <= total <= high:
        return None
    return clipped / total


def propose_safeguarded(accelerator, x_prev, x_plain, *, t, residuals):
    """One solver step: offer the pair, safeguard the proposal.

    The shared per-class acceleration step of the serial and sharded
    chain runners — both must apply the identical logic (and identical
    floating-point operations) or accelerated sharded fits would drift
    from serial ones.  Returns ``(outcome, column)`` where ``outcome``
    is one of:

    * ``"none"`` — the accelerator proposed nothing; keep the plain step;
    * ``"rejected"`` — the safeguard refused the proposal; the
      accelerator's history was restarted (``rejected()``) and the plain
      step stands (the caller emits a ``solver_restart`` event);
    * ``"accepted"`` — ``column`` is the safeguarded iterate to install
      (the caller emits a ``solver_step`` event).
    """
    proposal = accelerator.propose(x_prev, x_plain, t=t, residuals=residuals)
    if proposal is None:
        return "none", None
    safe = safeguard_proposal(proposal)
    if safe is None:
        accelerator.rejected()
        return "rejected", None
    return "accepted", safe


class FixedPointAccelerator:
    """Base class for per-class chain accelerators.

    One instance serves one class chain for one fit; the chain runner
    creates a fresh solver per class so histories never mix.

    Attributes
    ----------
    tol:
        The chain's stopping tolerance.  Every accelerator implements
        the *exact-limit* guarantee through it: when the plain step
        already moved less than ``tol`` the solver proposes nothing, so
        acceleration can never push a converged chain off its fixed
        point.
    n_proposals, n_rejected, n_restarts:
        Monotonic counters (proposals offered, proposals the safeguard
        rejected, history restarts); the per-step trace counterpart is
        the ``solver_step`` / ``solver_restart`` event stream.
    """

    name = "base"

    def __init__(self, *, tol: float):
        if tol <= 0:
            raise ValidationError(f"tol must be positive, got {tol}")
        self.tol = float(tol)
        self.n_proposals = 0
        self.n_rejected = 0
        self.n_restarts = 0

    @property
    def active_name(self) -> str:
        """The solver actually driving proposals (adaptive overrides)."""
        return self.name

    def propose(self, x_prev, g_x, *, t: int, residuals) -> np.ndarray | None:
        """Offer an accelerated iterate for this step, or ``None``.

        Parameters
        ----------
        x_prev:
            The previous accepted iterate ``x_{t-1}`` (a private copy —
            solvers may keep it without copying again).
        g_x:
            The plain Algorithm 1 step evaluated at ``x_prev`` (also a
            private copy), already projected onto the simplex.
        t:
            1-based iteration number.
        residuals:
            The chain's residual history so far (read-only) — the
            adaptive solver reads its decay rate off this.
        """
        raise NotImplementedError

    def map_changed(self) -> None:
        """The Eq. 12 update altered the restart vector: drop history.

        The accelerators model a *fixed* map; when the label update
        accepts new nodes the map itself moves, so extrapolating across
        the change would chase a stale fixed point.
        """
        self._restart()

    def rejected(self) -> None:
        """The safeguard rejected the last proposal: drop history."""
        self.n_rejected += 1
        self._restart()

    def _restart(self) -> None:
        self.n_restarts += 1
        self.reset()

    def reset(self) -> None:
        """Clear accumulated iterate history (overridden by subclasses)."""


def check_solver(solver: str) -> str:
    """Validate a solver name against :data:`SOLVER_NAMES`."""
    if solver not in SOLVER_NAMES:
        raise ValidationError(
            f"solver must be one of {SOLVER_NAMES}, got {solver!r}"
        )
    return solver


def make_solver(solver: str, *, tol: float) -> FixedPointAccelerator | None:
    """Instantiate one per-class solver; ``None`` for the plain step."""
    from repro.solvers.adaptive import AdaptiveAccelerator
    from repro.solvers.aitken import AitkenAccelerator
    from repro.solvers.anderson import AndersonAccelerator

    check_solver(solver)
    if solver == PLAIN_SOLVER:
        return None
    if solver == "anderson":
        return AndersonAccelerator(tol=tol)
    if solver == "aitken":
        return AitkenAccelerator(tol=tol)
    return AdaptiveAccelerator(tol=tol)
