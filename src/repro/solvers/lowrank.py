"""Randomized low-rank factorization for the dense feature operator.

The ``O`` and ``R`` tensor slices are sparse by construction (top-k
similarity truncation happens at build time), but the feature-walk
matrix ``W`` is dense: its ``W @ X`` product is the ``O(n^2 q)`` term of
every iteration.  When ``W``'s spectrum decays — which cosine-similarity
kernels over low-dimensional feature spaces guarantee, since
``rank(W) ≤ rank(F F^T) ≤ d`` — a rank-``r`` factorization
``W ≈ U V^T`` cuts that to ``O(n r q)`` with a *certified* error:

* :func:`compress_matrix` returns the factorization together with a
  power-iteration estimate of the residual spectral norm
  ``‖W - U V^T‖₂``;
* :func:`prediction_error_bound` converts that residual into an a-priori
  bound on how far the accelerated chain's stationary vector can drift,
  via the standard fixed-point perturbation argument: if the plain map
  contracts at rate ``ρ`` and each application of the compressed map is
  within ``δ = β √n ‖E‖₂`` of the exact one (1-norm, over simplex
  vectors), the fixed points differ by at most ``δ / (1 - ρ)``.

The factorization itself is the usual randomized range finder
(Halko-Martinsson-Tropp): a Gaussian sketch, a couple of power
iterations to sharpen the spectrum, QR, then an exact SVD of the small
projected matrix.  Pure numpy, deterministic under ``seed``.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

#: Extra sketch columns beyond the target rank (oversampling).
DEFAULT_OVERSAMPLES = 8

#: Subspace (power) iterations applied to the sketch.
DEFAULT_POWER_ITERATIONS = 2

#: Power-method steps used to estimate the residual spectral norm.
RESIDUAL_NORM_ITERATIONS = 12


@dataclass(frozen=True)
class LowRankMatrix:
    """A factored matrix ``U @ Vt`` that quacks like its dense product.

    Supports the one operation the chain runner needs — ``self @ X`` —
    at ``O(n r q)`` instead of ``O(n^2 q)``.
    """

    u: np.ndarray
    vt: np.ndarray

    def __post_init__(self):
        if self.u.ndim != 2 or self.vt.ndim != 2:
            raise ValidationError("LowRankMatrix factors must be 2-D")
        if self.u.shape[1] != self.vt.shape[0]:
            raise ValidationError(
                f"factor shapes {self.u.shape} and {self.vt.shape} "
                "do not chain"
            )

    @property
    def shape(self) -> tuple[int, int]:
        """The shape of the implied dense product ``U @ Vt``."""
        return (self.u.shape[0], self.vt.shape[1])

    @property
    def rank(self) -> int:
        """The factorization rank (inner dimension of ``U @ Vt``)."""
        return self.u.shape[1]

    def __matmul__(self, other: np.ndarray) -> np.ndarray:
        return self.u @ (self.vt @ other)

    def dense(self) -> np.ndarray:
        """Materialise the dense product (tests and small matrices only)."""
        return self.u @ self.vt


def randomized_svd(
    matrix: np.ndarray,
    rank: int,
    *,
    n_oversamples: int = DEFAULT_OVERSAMPLES,
    n_power_iterations: int = DEFAULT_POWER_ITERATIONS,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Truncated SVD via a Gaussian range finder with power iterations."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValidationError("randomized_svd expects a 2-D matrix")
    if rank < 1:
        raise ValidationError(f"rank must be >= 1, got {rank}")
    n_rows, n_cols = matrix.shape
    rank = min(rank, n_rows, n_cols)
    n_sketch = min(rank + n_oversamples, n_cols)
    rng = np.random.default_rng(seed)
    sketch = matrix @ rng.standard_normal((n_cols, n_sketch))
    q, _ = np.linalg.qr(sketch)
    for _ in range(n_power_iterations):
        q, _ = np.linalg.qr(matrix.T @ q)
        q, _ = np.linalg.qr(matrix @ q)
    small = q.T @ matrix
    u_small, s, vt = np.linalg.svd(small, full_matrices=False)
    u = q @ u_small
    return u[:, :rank], s[:rank], vt[:rank]


def _residual_norm(matrix: np.ndarray, low: LowRankMatrix, seed: int) -> float:
    """Power-method estimate of ``‖matrix - low‖₂`` without forming it."""
    rng = np.random.default_rng(seed + 1)
    v = rng.standard_normal(matrix.shape[1])
    v /= np.linalg.norm(v)
    norm = 0.0
    for _ in range(RESIDUAL_NORM_ITERATIONS):
        w = matrix @ v - low @ v
        w = matrix.T @ w - low.vt.T @ (low.u.T @ w)
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            return 0.0
        v = w / norm
    return math.sqrt(norm)


def compress_matrix(
    matrix: np.ndarray,
    rank: int,
    *,
    n_oversamples: int = DEFAULT_OVERSAMPLES,
    n_power_iterations: int = DEFAULT_POWER_ITERATIONS,
    seed: int = 0,
) -> tuple[LowRankMatrix, float]:
    """Factor ``matrix`` to rank ``rank`` and certify the residual.

    Returns ``(low, residual_norm)`` where ``residual_norm`` estimates
    ``‖matrix - low.dense()‖₂`` by the power method on the residual
    operator (never materialised).
    """
    u, s, vt = randomized_svd(
        matrix,
        rank,
        n_oversamples=n_oversamples,
        n_power_iterations=n_power_iterations,
        seed=seed,
    )
    low = LowRankMatrix(u * s, vt)
    return low, _residual_norm(np.asarray(matrix, dtype=float), low, seed)


def compress_operators(operators, rank: int, *, seed: int = 0):
    """Swap a :class:`TMarkOperators` bundle's ``W`` for a low-rank one.

    The ``O``/``R`` tensor slices stay untouched (they are already
    sparse); only the dense feature-walk matrix is factored.  Returns
    ``(operators_with_low_rank_w, residual_norm)``; feed the bundle to
    ``TMark.fit(..., operators=...)`` for the factorized path.
    """
    low, residual = compress_matrix(operators.w_matrix, rank, seed=seed)
    return dataclasses.replace(operators, w_matrix=low), residual


def prediction_error_bound(
    residual_norm: float,
    *,
    beta: float,
    decay_rate: float,
    n_nodes: int,
) -> float:
    """Bound the stationary-vector drift induced by the compression.

    Each iteration of the compressed map differs from the exact one by
    at most ``δ = β √n ‖E‖₂`` in the 1-norm (``‖E x‖₁ ≤ √n ‖E‖₂ ‖x‖₂``
    and simplex vectors have ``‖x‖₂ ≤ 1``), so the fixed points of a
    rate-``ρ`` contraction differ by at most ``δ / (1 - ρ)``.  Returns
    ``inf`` when the chain is not a contraction (``ρ ≥ 1``) — the bound
    is vacuous there, matching the health layer's "never converges"
    sentinel semantics.
    """
    if residual_norm < 0:
        raise ValidationError("residual_norm must be non-negative")
    if not 0 <= beta <= 1:
        raise ValidationError(f"beta must lie in [0, 1], got {beta}")
    if n_nodes < 1:
        raise ValidationError(f"n_nodes must be >= 1, got {n_nodes}")
    delta = beta * math.sqrt(n_nodes) * residual_norm
    if decay_rate >= 1.0 or math.isnan(decay_rate):
        return math.inf if delta > 0 else 0.0
    return delta / (1.0 - decay_rate)
