"""Pluggable fixed-point accelerators for the per-class stationary iteration.

The dominant cost of every T-Mark experiment is the per-class ``(x, z)``
fixed-point iteration of Algorithm 1.  Viewed through the composite map

.. math::

    h(x) = \\Pi\\big[(1-\\alpha-\\beta)\\, O \\bar\\times_1 x \\bar\\times_3
           R(x, x) + \\beta W x + \\alpha l\\big]

(``\\Pi`` the simplex projection; ``z`` is the induced ``R(x, x)``), the
plain iteration is a damped power method whose convergence rate is the
chain's subdominant eigenvalue — near 1 for weakly-restarted or
heavily-mixed chains (see :mod:`repro.obs.health`).  The related work is
essentially a menu of accelerators for exactly this problem class:
low-rank tensor Markov models (arXiv 2411.02098) and multigrid with
low-rank corrections for tensor-structured chains (arXiv 1412.0937).

This package provides those accelerators as *solvers* the chain runner
(:meth:`repro.core.tmark.TMark._run_chains_batched`) consults once per
iteration per class:

* :class:`~repro.solvers.anderson.AndersonAccelerator` — windowed
  least-squares mixing of the recent iterates (Anderson acceleration /
  DIIS), pure numpy;
* :class:`~repro.solvers.aitken.AitkenAccelerator` — vector Aitken
  :math:`\\Delta^2` (Lusternik) extrapolation over plain-step triples;
* :class:`~repro.solvers.adaptive.AdaptiveAccelerator` — reads the
  chain's empirical decay rate through the
  :mod:`repro.obs.health` estimators and switches a slow chain (rate
  near 1) onto Anderson while leaving healthy chains on the cheap plain
  step;
* :mod:`~repro.solvers.lowrank` — a randomized-SVD factorized path for
  the dense-ish ``W`` feature operator with an a-priori bound on the
  induced prediction error.

Every accelerator carries the same two guarantees:

* **exact limit** — at (or within ``tol`` of) a fixed point the solver
  proposes nothing, so an accelerated chain stops at the same
  stationary pair the plain iteration would reach;
* **safeguarded fallback** — a proposal is accepted only if it passes
  :func:`~repro.solvers.base.safeguard_proposal` (finite, inside the
  simplex up to the documented drift/mass tolerances); otherwise the
  plain power step is used and the solver's history restarts.

``solver="plain"`` bypasses the package entirely: the chain runner takes
the exact pre-solver code path, so plain fits are bit-identical to
releases predating this layer.
"""

from repro.solvers.adaptive import AdaptiveAccelerator
from repro.solvers.aitken import AitkenAccelerator
from repro.solvers.anderson import AndersonAccelerator
from repro.solvers.base import (
    PLAIN_SOLVER,
    SOLVER_NAMES,
    FixedPointAccelerator,
    check_solver,
    make_solver,
    safeguard_proposal,
)
from repro.solvers.lowrank import (
    LowRankMatrix,
    compress_matrix,
    compress_operators,
    prediction_error_bound,
    randomized_svd,
)

__all__ = [
    "SOLVER_NAMES",
    "PLAIN_SOLVER",
    "FixedPointAccelerator",
    "check_solver",
    "make_solver",
    "safeguard_proposal",
    "AndersonAccelerator",
    "AitkenAccelerator",
    "AdaptiveAccelerator",
    "LowRankMatrix",
    "randomized_svd",
    "compress_matrix",
    "compress_operators",
    "prediction_error_bound",
]
