"""Health-driven solver selection (``solver="auto"``).

The adaptive solver is the policy layer the ISSUE's selection rule asks
for: watch the chain's residual series through the same estimator the
:mod:`repro.obs.health` diagnostics use, and only pay for acceleration
when the empirical decay rate says the plain power step is slow.

Policy
------
* For the first :data:`PROBE_ITERATIONS` plain steps the solver stays
  dormant and just observes — :func:`estimate_decay_rate` needs a tail
  past its burn-in to mean anything.
* Once the rate estimate is available, a chain decaying at
  rate ≥ :data:`SLOW_RATE` (or whose residuals have stopped decaying
  entirely, rate ≥ 1) switches onto an inner
  :class:`~repro.solvers.anderson.AndersonAccelerator`; healthy chains
  keep the cheap plain step and the solver never interferes.
* The decision is sticky in one direction only: a chain on Anderson
  stays on Anderson (its residual series no longer reflects the plain
  map's rate), while a dormant chain keeps re-checking as the series
  grows, so a chain that starts fast and stalls later still gets help.

``active_name`` reports ``"plain"`` while dormant and ``"anderson"``
after the switch, which is what the ``solver_step`` trace events carry.
"""

from __future__ import annotations

import math

from repro.obs.health import estimate_decay_rate
from repro.solvers.anderson import AndersonAccelerator
from repro.solvers.base import PLAIN_SOLVER, FixedPointAccelerator

#: Plain iterations observed before the first switch decision.
PROBE_ITERATIONS = 8

#: Empirical decay rates at or above this mark a chain as slow-mixing.
#: At 0.9 the plain step needs ~20 iterations per residual decade —
#: the regime where Anderson's mixing pays for its lstsq.
SLOW_RATE = 0.9


class AdaptiveAccelerator(FixedPointAccelerator):
    """Switch slow chains onto Anderson, leave healthy chains plain."""

    name = "auto"

    def __init__(self, *, tol: float):
        super().__init__(tol=tol)
        self._inner: AndersonAccelerator | None = None

    @property
    def active_name(self) -> str:
        """``"plain"`` while dormant, the inner solver's name after."""
        return self._inner.name if self._inner is not None else PLAIN_SOLVER

    def propose(self, x_prev, g_x, *, t: int, residuals):
        if self._inner is None:
            if t < PROBE_ITERATIONS or not self._is_slow(residuals):
                return None
            self._inner = AndersonAccelerator(tol=self.tol)
        proposal = self._inner.propose(x_prev, g_x, t=t, residuals=residuals)
        self.n_proposals = self._inner.n_proposals
        return proposal

    def _is_slow(self, residuals) -> bool:
        rate = estimate_decay_rate(residuals)
        return not math.isnan(rate) and rate >= SLOW_RATE

    def map_changed(self) -> None:
        if self._inner is not None:
            self._inner.map_changed()
            self.n_restarts = self._inner.n_restarts

    def rejected(self) -> None:
        self.n_rejected += 1
        if self._inner is not None:
            self._inner.rejected()
            self.n_restarts = self._inner.n_restarts

    def reset(self) -> None:
        if self._inner is not None:
            self._inner.reset()
