"""Anderson acceleration (windowed least-squares mixing), pure numpy.

Classic Anderson/DIIS mixing for the fixed-point map ``h``: keep the
last ``window + 1`` pairs ``(x_k, h(x_k))``, form the residuals
``f_k = h(x_k) - x_k``, solve the small least-squares problem

.. math::

    \\gamma^* = \\arg\\min_\\gamma \\| f_k - \\Delta F\\, \\gamma \\|_2

over the residual differences ``\\Delta F = [f_{j} - f_{j-1}]`` and
extrapolate ``x_{k+1} = h(x_k) - \\Delta G\\, \\gamma^*`` with the
matching map-value differences ``\\Delta G = [h(x_j) - h(x_{j-1})]``.
For a linear contraction this is GMRES-like: the accelerated iterate
mixes the Krylov history and the slow subdominant modes cancel, cutting
a rate-``\\rho`` chain's iteration count by roughly the window size.

The solver does not assume its proposals were accepted: the pairs it
stores are whatever iterates the chain actually took, which is the
general (safeguarded) Anderson form.  The exact-limit guarantee is the
``tol`` gate in :meth:`propose` — at a reached fixed point ``f_k`` is
below tolerance and the solver stays silent.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.base import FixedPointAccelerator

#: Default mixing-window size (pairs kept beyond the current one).
DEFAULT_WINDOW = 5


class AndersonAccelerator(FixedPointAccelerator):
    """Windowed Anderson mixing for one per-class chain."""

    name = "anderson"

    def __init__(self, *, tol: float, window: int = DEFAULT_WINDOW):
        super().__init__(tol=tol)
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._xs: list[np.ndarray] = []
        self._gs: list[np.ndarray] = []

    def reset(self) -> None:
        self._xs.clear()
        self._gs.clear()

    def propose(self, x_prev, g_x, *, t: int, residuals) -> np.ndarray | None:
        self._xs.append(x_prev)
        self._gs.append(g_x)
        if len(self._xs) > self.window + 1:
            del self._xs[0], self._gs[0]
        if len(self._xs) < 2:
            return None
        fs = [g - x for x, g in zip(self._xs, self._gs)]
        f_last = fs[-1]
        if float(np.abs(f_last).sum()) < self.tol:
            # Exact limit: the plain step already sits on the fixed
            # point; extrapolating would only perturb it.
            return None
        delta_f = np.column_stack([b - a for a, b in zip(fs, fs[1:])])
        delta_g = np.column_stack(
            [b - a for a, b in zip(self._gs, self._gs[1:])]
        )
        gamma, *_ = np.linalg.lstsq(delta_f, f_last, rcond=None)
        if not np.all(np.isfinite(gamma)):
            self._restart()
            return None
        self.n_proposals += 1
        return self._gs[-1] - delta_g @ gamma
