"""Vector Aitken :math:`\\Delta^2` (Lusternik) extrapolation.

For a scalar sequence converging linearly at rate ``\\rho`` — error
``e_t \\approx C \\rho^t`` — Aitken's classic update

.. math::

    \\tilde u = u_2 - \\frac{(u_2 - u_1)^2}{u_2 - 2 u_1 + u_0}

cancels the geometric mode exactly.  For the vector iterates of the
stationary chain the same cancellation is applied along the *dominant
error direction*: with differences ``d_1 = u_1 - u_0`` and
``d_2 = u_2 - u_1`` the Rayleigh quotient

.. math::

    \\hat\\rho = \\frac{\\langle d_2, d_1 \\rangle}
                      {\\langle d_1, d_1 \\rangle}

estimates the contraction rate of the slowest mode, and summing the
remaining geometric tail in closed form gives the Lusternik jump

.. math::

    \\tilde u = u_2 + \\frac{\\hat\\rho}{1 - \\hat\\rho}\\, d_2,

which reduces to the scalar Δ² formula in one dimension.  This is the
robust form for coupled simplex-projected maps: a naive component-wise
Δ² divides by near-zero curvature in fast-converged components and
amplifies their noise (empirically it *slows* these chains down), while
the single-rate jump only ever acts on the direction that is actually
slow.

Proposals fire only when the estimated rate is a genuine contraction
(``0 < \\hat\\rho < 1``); after each extrapolation the trail resets —
the proposed iterate is not a plain-map image of its predecessor, so a
Δ² over a mixed triple would extrapolate garbage.  In steady state the
solver therefore fires on every second plain step (Steffensen-style).
The exact-limit guarantee is the ``tol`` gate: at a reached fixed point
``d_2`` is below tolerance and the solver stays silent.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.base import FixedPointAccelerator


class AitkenAccelerator(FixedPointAccelerator):
    """Δ² extrapolation along the dominant error mode of plain triples."""

    name = "aitken"

    def __init__(self, *, tol: float):
        super().__init__(tol=tol)
        self._trail: list[np.ndarray] = []

    def reset(self) -> None:
        self._trail.clear()

    def propose(self, x_prev, g_x, *, t: int, residuals) -> np.ndarray | None:
        if not self._trail:
            self._trail.append(x_prev)
        self._trail.append(g_x)
        if len(self._trail) < 3:
            return None
        u0, u1, u2 = self._trail[-3:]
        if float(np.abs(u2 - u1).sum()) < self.tol:
            # Exact limit: already at the fixed point, stay silent.
            return None
        d1 = u1 - u0
        d2 = u2 - u1
        denom = float(d1 @ d1)
        # A mixed triple would break the u_{k+1} = h(u_k) assumption the
        # rate estimate rests on, so the trail restarts either way.
        self._trail.clear()
        if denom <= 0.0:
            return None
        rate = float(d2 @ d1) / denom
        if not 0.0 < rate < 1.0:
            # Not a contraction along the dominant mode — no jump.
            return None
        self.n_proposals += 1
        return u2 + (rate / (1.0 - rate)) * d2
