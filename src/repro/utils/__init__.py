"""Shared utilities: RNG handling, simplex helpers, validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.simplex import (
    is_distribution,
    normalize_distribution,
    project_to_simplex,
    uniform_distribution,
)
from repro.utils.validation import (
    check_array_1d,
    check_array_2d,
    check_fraction,
    check_positive_int,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "is_distribution",
    "normalize_distribution",
    "project_to_simplex",
    "uniform_distribution",
    "check_array_1d",
    "check_array_2d",
    "check_fraction",
    "check_positive_int",
    "check_probability",
]
