"""Input-validation helpers shared across the library.

Each helper raises a :class:`~repro.errors.ValidationError` (or
:class:`~repro.errors.ShapeError`) with a message naming the offending
argument, so user-facing APIs give actionable feedback instead of cryptic
numpy errors deep inside an algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError


def check_positive_int(value, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as int."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def check_fraction(value, name: str, *, inclusive_low=False, inclusive_high=False) -> float:
    """Validate that ``value`` lies in the (0, 1) interval.

    ``inclusive_low`` / ``inclusive_high`` widen the interval to include the
    corresponding endpoint.
    """
    try:
        val = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a float, got {value!r}") from exc
    low_ok = val >= 0.0 if inclusive_low else val > 0.0
    high_ok = val <= 1.0 if inclusive_high else val < 1.0
    if not (low_ok and high_ok and np.isfinite(val)):
        low = "[0" if inclusive_low else "(0"
        high = "1]" if inclusive_high else "1)"
        raise ValidationError(f"{name} must lie in {low}, {high}, got {value!r}")
    return val


def check_probability(value, name: str) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    return check_fraction(value, name, inclusive_low=True, inclusive_high=True)


def check_array_1d(array, name: str, *, size: int | None = None) -> np.ndarray:
    """Coerce ``array`` to a 1-D float ndarray, optionally checking length."""
    arr = np.asarray(array, dtype=float)
    if arr.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got shape {arr.shape}")
    if size is not None and arr.size != size:
        raise ShapeError(f"{name} must have length {size}, got {arr.size}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite values")
    return arr


def check_array_2d(array, name: str, *, shape: tuple[int | None, int | None] | None = None):
    """Coerce ``array`` to a 2-D float ndarray, optionally checking shape.

    ``shape`` entries may be ``None`` to leave that axis unconstrained.
    """
    arr = np.asarray(array, dtype=float)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got shape {arr.shape}")
    if shape is not None:
        for axis, expected in enumerate(shape):
            if expected is not None and arr.shape[axis] != expected:
                raise ShapeError(
                    f"{name} must have shape {shape} (None = any), got {arr.shape}"
                )
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite values")
    return arr
