"""Random number generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  :func:`ensure_rng` funnels all three cases
into a ``Generator`` so downstream code never touches the legacy
``numpy.random`` global state.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, or an existing
        ``Generator`` (returned unchanged, shared state).

    Raises
    ------
    ValidationError
        If ``seed`` is of an unsupported type.  Booleans are rejected
        explicitly: ``bool`` is a subclass of ``int``, so ``True`` would
        otherwise be treated silently as seed 1.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (bool, np.bool_)):
        raise ValidationError(
            f"seed must not be a bool ({seed!r} would silently seed as "
            f"{int(seed)}); pass an explicit integer seed"
        )
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise ValidationError(
        f"seed must be None, an int, or a numpy Generator; got {type(seed).__name__}"
    )


def spawn_rngs(seed, count: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``count`` statistically independent generators.

    Useful for running repeated trials whose randomness must not interact
    (e.g. the 10 test runs per label fraction in the paper's tables).
    """
    if count < 0:
        raise ValidationError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
