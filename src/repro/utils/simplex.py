"""Probability-simplex helpers.

T-Mark's stationary vectors live on probability simplices (Theorem 1 of the
paper).  These helpers centralise construction, validation and repair of
such vectors so numerical drift is handled in exactly one place.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError

#: Default tolerance when checking that a vector sums to one.
SUM_TOL = 1e-8


def uniform_distribution(size: int) -> np.ndarray:
    """Return the uniform distribution over ``size`` outcomes."""
    if size <= 0:
        raise ValidationError(f"size must be positive, got {size}")
    return np.full(size, 1.0 / size)


def is_distribution(vector: np.ndarray, tol: float = SUM_TOL) -> bool:
    """Return ``True`` when ``vector`` is a probability distribution.

    A distribution is a 1-D array of non-negative entries summing to one
    within ``tol``.
    """
    arr = np.asarray(vector, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        return False
    if np.any(arr < -tol):
        return False
    return bool(abs(arr.sum() - 1.0) <= tol)


def normalize_distribution(vector: np.ndarray) -> np.ndarray:
    """Scale a non-negative vector to sum to one.

    A vector of all zeros becomes the uniform distribution, matching the
    paper's dangling-node convention (an equal chance of every outcome).

    Raises
    ------
    ValidationError
        If any entry is negative.
    ShapeError
        If the input is not 1-D.
    """
    arr = np.asarray(vector, dtype=float)
    if arr.ndim != 1:
        raise ShapeError(f"expected a 1-D vector, got shape {arr.shape}")
    if arr.size == 0:
        raise ShapeError("cannot normalise an empty vector")
    if np.any(arr < 0):
        raise ValidationError("cannot normalise a vector with negative entries")
    total = arr.sum()
    if total == 0.0:
        return uniform_distribution(arr.size)
    return arr / total


def project_to_simplex(vector: np.ndarray) -> np.ndarray:
    """Clip tiny negative drift and renormalise onto the simplex.

    Intended for iterates that are mathematically on the simplex but have
    accumulated floating-point error; large violations are a bug and raise.
    """
    arr = np.asarray(vector, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ShapeError(f"expected a non-empty 1-D vector, got shape {arr.shape}")
    if np.any(arr < -1e-6):
        raise ValidationError(
            "vector is far outside the simplex (negative entries below -1e-6); "
            "this indicates a bug upstream, not numerical drift"
        )
    clipped = np.clip(arr, 0.0, None)
    return normalize_distribution(clipped)
