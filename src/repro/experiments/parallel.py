"""Process-pool execution for the evaluation harness.

The grid of :func:`~repro.experiments.harness.run_grid` is embarrassingly
parallel by construction: every cell's RNG stream is derived from
``(seed, method_name, fraction)`` alone (never from grid position), so
cells can run in any order — or in different processes — and produce
byte-identical results.  This module exploits that structure with a
process pool:

* The parent pickles only tiny :class:`CellSpec` / :class:`TrialSpec`
  records into the pool's task queue.  The heavyweight shared context —
  the ground-truth :class:`~repro.hin.graph.HIN` and the (frequently
  unpicklable lambda) method factories — reaches the workers through the
  ``fork`` start method's copy-on-write inheritance, installed by a
  per-process initializer.
* Each worker process builds the cached ``(O, R, W)`` operator triple at
  most once per similarity setting, memoised in a per-process pool keyed
  on the parent graph's :func:`graph_fingerprint` — the parallel
  analogue of :func:`~repro.experiments.harness.shared_tmark_operators`.
* Workers run with their own
  :class:`~repro.obs.recorder.ListRecorder` /
  :class:`~repro.obs.metrics.MetricsRegistry` and ship the recorded
  events and instruments back with the scores.  The parent re-emits the
  events into its own recorder tagged with ``worker`` (the worker PID)
  and ``cell`` so ``trace-summary``, ``health`` and ``trace-diff`` keep
  working on parallel traces, and folds the registries together with
  the exact :meth:`~repro.obs.metrics.MetricsRegistry.merge`.
* A worker that raises fails the whole grid immediately — the original
  exception (with its remote traceback chained underneath) propagates
  as the cause of a :class:`WorkerError` naming the failed cell.

``workers=1`` never touches this module: the serial paths in
``harness`` stay byte-for-byte what they were.  On platforms without
the ``fork`` start method (or when called from inside a worker) the
parallel entry points fall back to the serial implementation with a
:class:`RuntimeWarning` instead of failing.
"""

from __future__ import annotations

import hashlib
import os
import time
import warnings
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import ReproError, ValidationError
from repro.hin.graph import HIN
from repro.obs.metrics import MetricsRecorder, MetricsRegistry
from repro.obs.recorder import NULL_RECORDER, ListRecorder, get_recorder
from repro.obs.spans import SpanContext, activate_span, span
from repro.utils.validation import check_positive_int


class WorkerError(ReproError, RuntimeError):
    """A pool worker raised; the original exception is chained as cause."""


def available_workers() -> int:
    """CPUs usable by this process (affinity-aware, always >= 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def fork_available() -> bool:
    """Whether the ``fork`` start method (the pool's transport) exists."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def in_worker() -> bool:
    """Whether this process is a pool worker (nested pools are refused).

    Shared with :mod:`repro.shard`: a sharded fit dispatched from inside
    a grid/trial worker falls back to the serial chain runner, exactly
    as a nested grid would.
    """
    return _STATE is not None


def graph_fingerprint(hin: HIN) -> str:
    """A stable content hash of a HIN's structure, features and labels.

    Keys the per-process operator caches: two grids over the same graph
    share one ``(O, R, W)`` build per worker, while grids over different
    graphs (even of identical shape) never mix operators.  Hashes the
    exact bytes of the adjacency coordinates/values, the features and
    the label matrix, so any difference that could change the operators
    changes the fingerprint.
    """
    digest = hashlib.sha256()
    i, j, k = hin.tensor.coords
    for array in (i, j, k, hin.tensor.values):
        digest.update(np.ascontiguousarray(array).tobytes())
    features = hin.features
    if sp.issparse(features):
        features = features.tocsr()
        digest.update(features.indptr.tobytes())
        digest.update(features.indices.tobytes())
        digest.update(features.data.tobytes())
    else:
        digest.update(np.ascontiguousarray(features).tobytes())
    digest.update(np.ascontiguousarray(hin.label_matrix).tobytes())
    digest.update("\x1f".join(hin.relation_names).encode("utf-8"))
    digest.update(repr((hin.tensor.shape, hin.n_features)).encode("ascii"))
    return digest.hexdigest()


@dataclass(frozen=True)
class CellSpec:
    """One picklable grid-cell work order (method x fraction)."""

    index: int
    method: str
    fraction: float
    n_trials: int
    metric: str
    base_entropy: int

    @property
    def cell(self) -> str:
        """The ``cell`` tag carried on this cell's pool events."""
        return f"{self.method}@{self.fraction:g}"


@dataclass(frozen=True)
class TrialSpec:
    """One picklable single-trial work order of ``evaluate_method``."""

    index: int
    method: str
    fraction: float
    metric: str
    split_rng: np.random.Generator
    method_rng: np.random.Generator

    @property
    def cell(self) -> str:
        """The ``cell`` tag carried on this trial's pool events."""
        return f"{self.method}@{self.fraction:g}#t{self.index}"


@dataclass
class _WorkerState:
    """The fork-inherited context shared by every worker of one pool."""

    hin: HIN
    factories: dict[str, Callable[[], object]]
    fingerprint: str
    share_operators: bool
    collect_events: bool
    collect_metrics: bool
    probes: bool
    #: ``(trace_id, span_id)`` of the parent's pool span, shipped across
    #: the fork so worker spans link back into the coordinator's trace
    #: (``None`` when the parent is not tracing).
    span_context: tuple[str, str] | None = None


@dataclass
class _Outcome:
    """Everything one worker ships back for one cell/trial."""

    index: int
    payload: object
    seconds: float
    worker: int
    events: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    registry_json: str | None = None


#: Per-process worker context, installed by :func:`_initialize_worker`.
_STATE: _WorkerState | None = None

#: Per-process operator pools: graph fingerprint -> operator pool dict
#: (the same ``(similarity_top_k, similarity_metric)``-keyed mapping
#: that :func:`~repro.experiments.harness.shared_tmark_operators` uses).
_OPERATOR_POOLS: dict[str, dict] = {}


def _initialize_worker(state: _WorkerState) -> None:
    """Pool initializer: install the fork-inherited shared context."""
    global _STATE
    _STATE = state


def _worker_recorder(state: _WorkerState):
    """Build the per-cell recorder stack a worker runs under.

    Returns ``(recorder, events_sink, registry)`` where ``events_sink``
    / ``registry`` are ``None`` when the parent asked for no events /
    no metrics.
    """
    events_sink = (
        ListRecorder(probes=state.probes) if state.collect_events else None
    )
    registry = MetricsRegistry() if state.collect_metrics else None
    if registry is not None:
        recorder = MetricsRecorder(registry, forward=events_sink)
        recorder.probes = state.probes
    elif events_sink is not None:
        recorder = events_sink
    else:
        recorder = NULL_RECORDER
    return recorder, events_sink, registry


def _parent_span(state: _WorkerState) -> SpanContext | None:
    """Rebuild the parent pool span's context from the shipped ids."""
    if state.span_context is None:
        return None
    trace_id, span_id = state.span_context
    return SpanContext(span_id=span_id, trace_id=trace_id)


def _operator_pool(state: _WorkerState) -> dict | None:
    """This process's operator pool for the context graph (or ``None``)."""
    if not state.share_operators:
        return None
    return _OPERATOR_POOLS.setdefault(state.fingerprint, {})


def _run_cell(spec: CellSpec) -> _Outcome:
    """Worker body: one full grid cell under a private recorder stack."""
    from repro.experiments.harness import cell_seed_sequence, evaluate_method

    state = _STATE
    if state is None:  # pragma: no cover - initializer contract violation
        raise RuntimeError("worker context not initialized")
    recorder, events_sink, registry = _worker_recorder(state)
    cell_rng = np.random.default_rng(
        cell_seed_sequence(spec.base_entropy, spec.method, spec.fraction)
    )
    started = time.perf_counter()
    with activate_span(_parent_span(state)):
        with span(
            "cell", recorder=recorder,
            method=spec.method, fraction=spec.fraction,
        ):
            result = evaluate_method(
                state.hin,
                state.factories[spec.method],
                spec.fraction,
                n_trials=spec.n_trials,
                seed=cell_rng,
                metric=spec.metric,
                operator_pool=_operator_pool(state),
                recorder=recorder,
                method_name=spec.method,
            )
    return _Outcome(
        index=spec.index,
        payload=result,
        seconds=time.perf_counter() - started,
        worker=os.getpid(),
        events=events_sink.events if events_sink is not None else [],
        counters=dict(recorder.counters),
        registry_json=registry.to_json() if registry is not None else None,
    )


def _run_trial(spec: TrialSpec) -> _Outcome:
    """Worker body: one harness trial under a private recorder stack."""
    from repro.experiments.harness import run_single_trial

    state = _STATE
    if state is None:  # pragma: no cover - initializer contract violation
        raise RuntimeError("worker context not initialized")
    recorder, events_sink, registry = _worker_recorder(state)
    started = time.perf_counter()
    with activate_span(_parent_span(state)):
        with span(
            "trial", recorder=recorder,
            method=spec.method, fraction=spec.fraction, trial=spec.index,
        ):
            value = run_single_trial(
                state.hin,
                state.factories[spec.method],
                spec.fraction,
                trial=spec.index,
                split_rng=spec.split_rng,
                method_rng=spec.method_rng,
                metric=spec.metric,
                operator_pool=_operator_pool(state),
                recorder=recorder,
                method_name=spec.method,
            )
    return _Outcome(
        index=spec.index,
        payload=value,
        seconds=time.perf_counter() - started,
        worker=os.getpid(),
        events=events_sink.events if events_sink is not None else [],
        counters=dict(recorder.counters),
        registry_json=registry.to_json() if registry is not None else None,
    )


def _serial_fallback_reason() -> str | None:
    """Why a pool cannot be used here (``None`` when it can)."""
    if _STATE is not None:
        return "already inside a worker process (no nested pools)"
    if not fork_available():
        return "the 'fork' start method is unavailable on this platform"
    return None


def _emit(recorder, fold, event: str, **fields) -> None:
    """Emit a parent-originated pool event to the recorder and registry.

    ``fold`` is the parent-side :class:`MetricsRecorder` wrapping the
    caller's registry (or ``None``).  Worker-originated events never go
    through it — they were already folded inside the worker — so every
    event lands in the registry exactly once.
    """
    if recorder.enabled:
        recorder.emit(event, **fields)
    if fold is not None:
        fold.emit(event, **fields)


def _replay_outcome(outcome: _Outcome, cell: str, recorder, metrics) -> None:
    """Fold one worker's telemetry back into the parent's sinks.

    Events are re-emitted through the parent recorder tagged with
    ``worker``/``cell``; counters are re-counted; the worker registry is
    folded in with the exact merge.  Called in deterministic spec order
    so gauge last-wins merges are reproducible.
    """
    if recorder.enabled:
        for event in outcome.events:
            fields = {k: v for k, v in event.items() if k != "event"}
            recorder.emit(event["event"], worker=outcome.worker, cell=cell, **fields)
        for name, count in outcome.counters.items():
            recorder.count(name, count)
    if metrics is not None and outcome.registry_json is not None:
        metrics.merge(MetricsRegistry.from_json(outcome.registry_json))


def _run_pool(specs, worker_fn, state: _WorkerState, workers: int):
    """Run ``worker_fn`` over ``specs``; return outcomes in spec order.

    Raises :class:`WorkerError` (original exception chained) as soon as
    any worker fails; remaining queued work is cancelled so the grid
    fails fast instead of hanging.
    """
    import multiprocessing

    outcomes: list[_Outcome | None] = [None] * len(specs)
    executor = ProcessPoolExecutor(
        max_workers=min(workers, len(specs)),
        mp_context=multiprocessing.get_context("fork"),
        initializer=_initialize_worker,
        initargs=(state,),
    )
    try:
        futures = {executor.submit(worker_fn, spec): spec for spec in specs}
        done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        for future in done:
            error = future.exception()
            if error is not None:
                for pending in not_done:
                    pending.cancel()
                spec = futures[future]
                raise WorkerError(
                    f"parallel {worker_fn.__name__.lstrip('_')} for cell "
                    f"{spec.cell!r} failed in a worker process: "
                    f"{type(error).__name__}: {error}"
                ) from error
        for future, spec in futures.items():
            outcomes[spec.index] = future.result()
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
    return outcomes


def run_grid_parallel(
    hin: HIN,
    methods: Sequence[tuple[str, Callable[[], object]]],
    fractions=None,
    *,
    n_trials: int = 3,
    seed=None,
    metric: str = "accuracy",
    share_operators: bool = True,
    recorder=None,
    metrics=None,
    workers: int = 2,
):
    """The process-pool twin of :func:`~repro.experiments.harness.run_grid`.

    Same signature plus ``workers``; dispatches one :class:`CellSpec`
    per (method, fraction) cell to a fork-based pool and merges results,
    events and metrics back in deterministic grid order.  Cell scores
    are bit-identical to the serial path because each cell's RNG stream
    is derived from ``(seed, method_name, fraction)`` alone and operator
    sharing never changes scores.  Falls back to the serial
    implementation (with a :class:`RuntimeWarning`) where no pool can
    be built.
    """
    from repro.experiments import harness

    workers = check_positive_int(workers, "workers")
    fractions = harness.PAPER_FRACTIONS if fractions is None else fractions
    reason = _serial_fallback_reason()
    if reason is not None:
        warnings.warn(
            f"run_grid(workers={workers}) falling back to serial: {reason}",
            RuntimeWarning,
            stacklevel=2,
        )
        return harness.run_grid(
            hin, methods, fractions, n_trials=n_trials, seed=seed,
            metric=metric, share_operators=share_operators,
            recorder=recorder, metrics=metrics,
        )
    methods = list(methods)
    names = [name for name, _ in methods]
    if len(set(names)) != len(names):
        raise ValidationError(
            f"method names must be distinct for parallel grids, got {names}"
        )
    if metric not in harness.METRICS:
        raise ValidationError(
            f"metric must be one of {harness.METRICS}, got {metric!r}"
        )
    check_positive_int(n_trials, "n_trials")
    rec = get_recorder() if recorder is None else recorder
    fold = MetricsRecorder(metrics) if metrics is not None else None
    base_entropy = harness._grid_base_entropy(seed)
    grid = harness.GridResult(
        fractions=tuple(float(f) for f in fractions), metric=metric
    )
    specs = [
        CellSpec(
            index=index,
            method=name,
            fraction=float(fraction),
            n_trials=n_trials,
            metric=metric,
            base_entropy=base_entropy,
        )
        for index, (name, fraction) in enumerate(
            (name, fraction) for name in names for fraction in grid.fractions
        )
    ]
    with span(
        "pool", recorder=rec, level="grid", n_cells=len(specs),
        workers=min(workers, len(specs)),
    ) as pool_ctx:
        state = _WorkerState(
            hin=hin,
            factories=dict(methods),
            fingerprint=graph_fingerprint(hin),
            share_operators=share_operators,
            collect_events=rec.enabled,
            collect_metrics=metrics is not None,
            # Mirror the serial path: a metrics-only run (no enabled event
            # recorder) keeps MetricsRecorder's probes-on default; otherwise
            # probes follow the event recorder's preference.
            probes=(
                bool(getattr(rec, "probes", False))
                if rec.enabled
                else metrics is not None
            ),
            span_context=(
                (pool_ctx.trace_id, pool_ctx.span_id)
                if pool_ctx is not None
                else None
            ),
        )
        _emit(
            rec, fold, "pool_start",
            workers=min(workers, len(specs)), n_cells=len(specs),
            level="grid", start_method="fork",
        )
        for spec in specs:
            _emit(rec, fold, "cell_dispatch", cell=spec.cell, index=spec.index)
        outcomes = _run_pool(specs, _run_cell, state, workers)
        for name in names:
            grid.cells[name] = []
        for spec, outcome in zip(specs, outcomes):
            _replay_outcome(outcome, spec.cell, rec, metrics)
            cell_result = outcome.payload
            grid.cells[spec.method].append(cell_result)
            _emit(
                rec, fold, "grid_cell",
                method=spec.method, fraction=spec.fraction, metric=metric,
                mean=cell_result.mean, std=cell_result.std,
                n_trials=cell_result.n_trials, seconds=outcome.seconds,
            )
            if rec.enabled:
                rec.count("grid_cells")
            if fold is not None:
                fold.count("grid_cells")
            _emit(
                rec, fold, "cell_done",
                cell=spec.cell, index=spec.index, worker=outcome.worker,
                mean=cell_result.mean, seconds=outcome.seconds,
            )
    return grid


def run_trials_parallel(
    hin: HIN,
    method_factory: Callable[[], object],
    fraction: float,
    *,
    rngs,
    metric: str = "accuracy",
    share_operators: bool = True,
    recorder=None,
    method_name: str | None = None,
    workers: int = 2,
) -> list[float] | None:
    """Run ``evaluate_method``'s trial loop on a process pool.

    ``rngs`` is the flat ``spawn_rngs(seed, 2 * n_trials)`` list the
    serial loop would consume — trial ``t`` uses ``rngs[2t]`` for the
    split and ``rngs[2t + 1]`` for the method, exactly as in the serial
    path, so per-trial values are bit-identical.  Returns the metric
    values in trial order, or ``None`` when no pool can be built here
    (the caller then runs its serial loop).
    """
    workers = check_positive_int(workers, "workers")
    if _serial_fallback_reason() is not None:
        warnings.warn(
            f"evaluate_method(workers={workers}) falling back to serial: "
            f"{_serial_fallback_reason()}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    rec = get_recorder() if recorder is None else recorder
    name = method_name if method_name is not None else "method"
    n_trials = len(rngs) // 2
    specs = [
        TrialSpec(
            index=trial,
            method=name,
            fraction=float(fraction),
            metric=metric,
            split_rng=rngs[2 * trial],
            method_rng=rngs[2 * trial + 1],
        )
        for trial in range(n_trials)
    ]
    with span(
        "pool", recorder=rec, level="trials", n_cells=len(specs),
        workers=min(workers, len(specs)),
    ) as pool_ctx:
        state = _WorkerState(
            hin=hin,
            factories={name: method_factory},
            fingerprint=graph_fingerprint(hin),
            share_operators=share_operators,
            collect_events=rec.enabled,
            collect_metrics=False,
            probes=bool(getattr(rec, "probes", False)) and rec.enabled,
            span_context=(
                (pool_ctx.trace_id, pool_ctx.span_id)
                if pool_ctx is not None
                else None
            ),
        )
        _emit(
            rec, None, "pool_start",
            workers=min(workers, len(specs)), n_cells=len(specs),
            level="trials", start_method="fork",
        )
        for spec in specs:
            _emit(rec, None, "cell_dispatch", cell=spec.cell, index=spec.index)
        outcomes = _run_pool(specs, _run_trial, state, workers)
        values = []
        for spec, outcome in zip(specs, outcomes):
            _replay_outcome(outcome, spec.cell, rec, None)
            values.append(float(outcome.payload))
            _emit(
                rec, None, "cell_done",
                cell=spec.cell, index=spec.index, worker=outcome.worker,
                value=float(outcome.payload), seconds=outcome.seconds,
            )
    return values
