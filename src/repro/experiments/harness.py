"""The evaluation protocol of section 6.

Every classification table in the paper follows one recipe: "randomly
pick up {10, ..., 90}% of the examples as the training data ... for each
given split, 10 test runs were conducted" and report mean accuracy (or
Macro-F1 for ACM).  :func:`run_grid` implements exactly that —
method x fraction with repeated stratified trials — on top of the common
``fit_predict(hin, rng) -> scores`` interface shared by T-Mark and all
baselines.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.tmark import TMark, build_operators
from repro.errors import ValidationError
from repro.solvers.base import check_solver
from repro.hin.graph import HIN
from repro.ml.metrics import accuracy, macro_f1, multilabel_macro_f1
from repro.ml.splits import multilabel_fraction_split, stratified_fraction_split
from repro.obs.recorder import get_recorder, use_recorder
from repro.utils.rng import spawn_rngs
from repro.utils.validation import check_positive_int

#: Supported evaluation metrics.
METRICS = ("accuracy", "macro_f1", "multilabel_macro_f1")

#: The label fractions of the paper's tables.
PAPER_FRACTIONS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def scores_to_predictions(scores: np.ndarray) -> np.ndarray:
    """Single-label decision: argmax class index per node."""
    return np.argmax(np.asarray(scores, dtype=float), axis=1)


def scores_to_multilabel(scores: np.ndarray, train_label_matrix: np.ndarray) -> np.ndarray:
    """Multi-label decision by prior matching (see ``TMark.predict_multilabel``).

    Each class accepts its top-scoring nodes at the positive rate
    observed among the training nodes; every node keeps at least its
    argmax class.
    """
    scores = np.asarray(scores, dtype=float)
    train_label_matrix = np.asarray(train_label_matrix, dtype=bool)
    n, q = scores.shape
    labeled = train_label_matrix.any(axis=1)
    n_labeled = max(int(labeled.sum()), 1)
    rates = train_label_matrix[labeled].sum(axis=0) / n_labeled
    rates = np.clip(rates, 1.0 / n, 1.0)
    predictions = np.zeros((n, q), dtype=bool)
    for c in range(q):
        count = max(int(round(rates[c] * n)), 1)
        top = np.argsort(-scores[:, c], kind="stable")[:count]
        predictions[top, c] = True
    predictions[np.arange(n), np.argmax(scores, axis=1)] = True
    return predictions


@dataclass(frozen=True)
class CellResult:
    """Mean/std of one method at one label fraction.

    ``std`` is the *sample* standard deviation (``ddof=1``) across the
    cell's trials — the paper's mean±std over 10 runs is a sample
    statistic — and 0.0 for a single trial, where the sample std is
    undefined.
    """

    mean: float
    std: float
    n_trials: int


@dataclass
class GridResult:
    """A method x fraction result grid (one paper table)."""

    fractions: tuple[float, ...]
    metric: str
    cells: dict[str, list[CellResult]] = field(default_factory=dict)

    @property
    def method_names(self) -> list[str]:
        """Methods in insertion order."""
        return list(self.cells)

    def means(self, method: str) -> list[float]:
        """Mean metric per fraction for one method."""
        return [cell.mean for cell in self.cells[method]]

    def winner(self, fraction_index: int) -> str:
        """Best method at the given fraction index."""
        return max(self.cells, key=lambda m: self.cells[m][fraction_index].mean)


def with_solver(
    method_factory: Callable[[], object], solver: str
) -> Callable[[], object]:
    """Wrap a method factory so T-Mark instances use ``solver``.

    The harness threads its ``solver=`` knob through factories rather
    than constructor signatures: the roster factories stay zero-argument
    (and hence fork-picklable for the process pool), and non-T-Mark
    baselines pass through untouched.  The solver name is validated
    eagerly so a typo fails at grid setup, not inside a worker.
    """
    check_solver(solver)

    def build():
        model = method_factory()
        if isinstance(model, TMark):
            model.solver = solver
        return model

    return build


def shared_tmark_operators(hin: HIN, model: TMark, pool: dict):
    """Fetch (or build and memoise) the operator triple for ``model``.

    ``pool`` maps ``(similarity_top_k, similarity_metric)`` to the
    :class:`~repro.core.tmark.TMarkOperators` built on the ground-truth
    ``hin``.  Masked views (``hin.masked(...)``) share the structure and
    features the operators depend on, so one build serves every split
    and trial of a sweep — the dominant fixed cost of the paper grids.
    """
    key = (model.similarity_top_k, model.similarity_metric)
    operators = pool.get(key)
    if operators is None:
        operators = build_operators(
            hin, similarity_top_k=key[0], similarity_metric=key[1]
        )
        pool[key] = operators
    return operators


def run_single_trial(
    hin: HIN,
    method_factory: Callable[[], object],
    fraction: float,
    *,
    trial: int,
    split_rng: np.random.Generator,
    method_rng: np.random.Generator,
    metric: str = "accuracy",
    operator_pool: dict | None = None,
    recorder=None,
    method_name: str | None = None,
) -> float:
    """One split -> fit -> score trial of :func:`evaluate_method`.

    The exact body of the serial trial loop, factored out so the
    process-pool path (:mod:`repro.experiments.parallel`) runs the
    byte-identical code per trial.  ``split_rng`` / ``method_rng`` are
    the two generators ``evaluate_method`` spawns per trial; ``trial``
    is only carried onto the emitted ``trial`` event.
    """
    rec = get_recorder() if recorder is None else recorder
    trial_started = time.perf_counter() if rec.enabled else 0.0
    if metric == "multilabel_macro_f1":
        mask = multilabel_fraction_split(hin.label_matrix, fraction, rng=split_rng)
    else:
        mask = stratified_fraction_split(hin.y, fraction, rng=split_rng)
    train_hin = hin.masked(mask)
    model = method_factory()
    with use_recorder(rec):
        if operator_pool is not None and isinstance(model, TMark):
            operators = shared_tmark_operators(hin, model, operator_pool)
            scores = model.fit_predict(
                train_hin, rng=method_rng, operators=operators
            )
        else:
            scores = model.fit_predict(train_hin, rng=method_rng)
    test = ~mask
    if metric == "multilabel_macro_f1":
        predicted = scores_to_multilabel(scores, train_hin.label_matrix)
        value = multilabel_macro_f1(hin.label_matrix[test], predicted[test])
    elif metric == "macro_f1":
        predicted = scores_to_predictions(scores)
        value = macro_f1(hin.y[test], predicted[test], n_classes=hin.n_labels)
    else:
        predicted = scores_to_predictions(scores)
        value = accuracy(hin.y[test], predicted[test])
    if rec.enabled:
        rec.emit(
            "trial",
            method=method_name,
            fraction=float(fraction),
            trial=trial,
            metric=metric,
            value=float(value),
            seconds=time.perf_counter() - trial_started,
        )
        rec.count("trials")
    return float(value)


def evaluate_method(
    hin: HIN,
    method_factory: Callable[[], object],
    fraction: float,
    *,
    n_trials: int = 3,
    seed=None,
    metric: str = "accuracy",
    operator_pool: dict | None = None,
    recorder=None,
    method_name: str | None = None,
    workers: int = 1,
    solver: str | None = None,
) -> CellResult:
    """Mean/std metric of one method at one label fraction.

    Parameters
    ----------
    hin:
        Fully labeled ground-truth HIN (the harness masks test labels).
    method_factory:
        Zero-argument callable returning a fresh classifier exposing
        ``fit_predict(hin, rng) -> (n, q) scores``.
    fraction:
        Training label fraction.
    n_trials:
        Independent random splits (the paper uses 10).
    metric:
        ``"accuracy"`` (single-label argmax) or
        ``"multilabel_macro_f1"`` (prior-matched decisions).
    operator_pool:
        Optional mutable dict shared across calls on the same
        ground-truth ``hin``.  T-Mark family methods then reuse one
        ``(O, R, W)`` build per similarity setting (see
        :func:`shared_tmark_operators`); other methods are unaffected.
    recorder:
        Optional :class:`repro.obs.Recorder` (default: the ambient one)
        receiving one ``trial`` event per split with the trial's metric
        value and wall clock; it is also installed as the ambient
        recorder around each fit so chain-level events land in the same
        trace.
    method_name:
        Optional display name carried on the emitted ``trial`` events
        (``run_grid`` passes the roster name).
    workers:
        Process-pool width for the trial loop; the default 1 is the
        serial path.  With ``workers > 1`` the trials are dispatched to
        :func:`repro.experiments.parallel.run_trials_parallel` — every
        trial keeps its own pre-spawned RNG pair, so the values (and
        hence mean/std) are bit-identical to the serial loop.
    solver:
        Optional fixed-point solver name applied to every T-Mark model
        the factory produces (see :func:`with_solver`); ``None`` keeps
        each factory's own choice.

    The returned std is the sample statistic (``ddof=1``); a single
    trial reports 0.0.
    """
    if metric not in METRICS:
        raise ValidationError(f"metric must be one of {METRICS}, got {metric!r}")
    check_positive_int(n_trials, "n_trials")
    check_positive_int(workers, "workers")
    if solver is not None:
        method_factory = with_solver(method_factory, solver)
    rec = get_recorder() if recorder is None else recorder
    rngs = spawn_rngs(seed, 2 * n_trials)
    values = None
    if workers != 1:
        from repro.experiments.parallel import run_trials_parallel

        values = run_trials_parallel(
            hin,
            method_factory,
            fraction,
            rngs=rngs,
            metric=metric,
            share_operators=operator_pool is not None,
            recorder=rec,
            method_name=method_name,
            workers=workers,
        )
    if values is None:
        values = [
            run_single_trial(
                hin,
                method_factory,
                fraction,
                trial=trial,
                split_rng=rngs[2 * trial],
                method_rng=rngs[2 * trial + 1],
                metric=metric,
                operator_pool=operator_pool,
                recorder=rec,
                method_name=method_name,
            )
            for trial in range(n_trials)
        ]
    values = np.asarray(values)
    std = float(values.std(ddof=1)) if n_trials > 1 else 0.0
    return CellResult(mean=float(values.mean()), std=std, n_trials=n_trials)


def cell_seed_sequence(
    base_entropy: int, method_name: str, fraction: float
) -> np.random.SeedSequence:
    """The deterministic per-cell seed of :func:`run_grid`.

    Derived from ``(base_entropy, method_name, fraction)`` alone — not
    from the cell's position in the grid — so adding, removing or
    reordering roster methods (or fractions) leaves every other cell's
    RNG stream, and therefore its splits and scores, byte-identical.
    The method name enters via a stable SHA-256 digest and the fraction
    via its exact float64 bit pattern.
    """
    digest = hashlib.sha256(method_name.encode("utf-8")).digest()
    name_key = int.from_bytes(digest[:8], "little")
    fraction_key = int(np.float64(fraction).view(np.uint64))
    return np.random.SeedSequence(entropy=[int(base_entropy), name_key, fraction_key])


def _grid_base_entropy(seed) -> int:
    """Resolve ``run_grid``'s ``seed`` argument to a base entropy int."""
    if seed is None:
        return int(np.random.SeedSequence().entropy)
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    if isinstance(seed, (bool, np.bool_)):
        raise ValidationError(
            "seed must not be a bool; pass an explicit integer seed"
        )
    if isinstance(seed, (int, np.integer)):
        if int(seed) < 0:
            raise ValidationError(f"seed must be non-negative, got {seed}")
        return int(seed)
    raise ValidationError(
        f"seed must be None, an int, or a numpy Generator; got {type(seed).__name__}"
    )


def run_grid(
    hin: HIN,
    methods: Sequence[tuple[str, Callable[[], object]]],
    fractions: Sequence[float] = PAPER_FRACTIONS,
    *,
    n_trials: int = 3,
    seed=None,
    metric: str = "accuracy",
    share_operators: bool = True,
    recorder=None,
    metrics=None,
    workers: int = 1,
    solver: str | None = None,
) -> GridResult:
    """Run the full method x fraction grid of one paper table.

    ``methods`` is a sequence of ``(name, factory)`` pairs.  Each cell's
    RNG stream is derived deterministically from
    ``(seed, method_name, fraction)`` via
    :func:`cell_seed_sequence` — never from the cell's position — so the
    grid is reproducible, cells are genuinely independent, and a cell's
    result is byte-identical no matter which other methods or fractions
    share the roster.

    With ``share_operators`` (the default) the T-Mark family methods in
    the roster share one precomputed ``(O, R, W)`` operator triple per
    similarity setting across every fraction and trial — the masked
    training views all inherit ``hin``'s structure and features, so the
    scores are unchanged and only the redundant rebuilds disappear.

    ``recorder`` (default: the ambient one) receives one ``grid_cell``
    event per cell with its mean/std and wall clock, on top of the
    per-trial and chain-level events emitted underneath.

    ``metrics`` optionally passes a
    :class:`~repro.obs.metrics.MetricsRegistry`: the whole grid's
    telemetry — every cell, trial, fit and chain event — is folded into
    its instruments via a :class:`~repro.obs.metrics.MetricsRecorder`
    that forwards to ``recorder``, so one registry aggregates across
    cells (and, via ``MetricsRegistry.merge``, across grids).

    ``workers`` selects the execution layer: the default 1 runs the
    serial loop below; ``workers > 1`` dispatches the cells to the
    process pool of :func:`repro.experiments.parallel.run_grid_parallel`
    with bit-identical cell results — the per-cell seeding above is
    position-independent precisely so cells may run anywhere.

    ``solver`` optionally selects a fixed-point solver for every T-Mark
    model in the roster (see :func:`with_solver`).  Factories are
    wrapped *before* dispatch, so serial and parallel grids accelerate
    identically — the pool workers inherit the wrapped factories.
    """
    check_positive_int(workers, "workers")
    if solver is not None:
        methods = [
            (name, with_solver(factory, solver)) for name, factory in methods
        ]
    if workers != 1:
        from repro.experiments.parallel import run_grid_parallel

        return run_grid_parallel(
            hin,
            methods,
            fractions,
            n_trials=n_trials,
            seed=seed,
            metric=metric,
            share_operators=share_operators,
            recorder=recorder,
            metrics=metrics,
            workers=workers,
        )
    rec = get_recorder() if recorder is None else recorder
    if metrics is not None:
        from repro.obs.metrics import MetricsRecorder

        rec = MetricsRecorder(metrics, forward=rec if rec.enabled else None)
    base_entropy = _grid_base_entropy(seed)
    grid = GridResult(fractions=tuple(float(f) for f in fractions), metric=metric)
    operator_pool: dict | None = {} if share_operators else None
    for name, factory in methods:
        cells = []
        for fraction in grid.fractions:
            cell_rng = np.random.default_rng(
                cell_seed_sequence(base_entropy, name, fraction)
            )
            cell_started = time.perf_counter() if rec.enabled else 0.0
            cell = evaluate_method(
                hin,
                factory,
                fraction,
                n_trials=n_trials,
                seed=cell_rng,
                metric=metric,
                operator_pool=operator_pool,
                recorder=rec,
                method_name=name,
            )
            cells.append(cell)
            if rec.enabled:
                rec.emit(
                    "grid_cell",
                    method=name,
                    fraction=float(fraction),
                    metric=metric,
                    mean=cell.mean,
                    std=cell.std,
                    n_trials=cell.n_trials,
                    seconds=time.perf_counter() - cell_started,
                )
                rec.count("grid_cells")
        grid.cells[name] = cells
    return grid
