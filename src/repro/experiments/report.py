"""The :class:`ExperimentReport` container returned by every runner."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentReport:
    """Output of one table/figure reproduction.

    Attributes
    ----------
    experiment_id:
        Registry id (``"table3"``, ``"fig10"``, ...).
    title:
        Human-readable description referencing the paper artefact.
    text:
        The rendered table / series, ready to print.
    data:
        Structured results (grids, rankings, series) for programmatic
        checks — the benchmark suite asserts the paper's qualitative
        shapes against this.
    """

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"
