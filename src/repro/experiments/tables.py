"""ASCII rendering of experiment outputs.

Renders the three output shapes the paper uses: method x fraction grids
(Tables 3, 4, 8, 11), ranked name lists (Tables 2, 5, 6/7, 9/10) and
numeric series (the parameter / convergence figures).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.experiments.harness import GridResult


def format_grid(grid: GridResult, *, title: str = "", with_std: bool = False) -> str:
    """Render a :class:`GridResult` as a fixed-width table.

    The winning method per fraction is marked with ``*`` — the paper
    bold-faces its winners; an ASCII table stars them.
    """
    width = max((len(name) for name in grid.method_names), default=6) + 2
    lines = []
    if title:
        lines.append(title)
    header = "fraction".ljust(10) + "".join(
        name.rjust(width) for name in grid.method_names
    )
    lines.append(header)
    lines.append("-" * len(header))
    for f_idx, fraction in enumerate(grid.fractions):
        winner = grid.winner(f_idx)
        row = [f"{fraction:<10.1f}"]
        for name in grid.method_names:
            cell = grid.cells[name][f_idx]
            if with_std:
                text = f"{cell.mean:.3f}±{cell.std:.3f}"
            else:
                text = f"{cell.mean:.3f}"
            if name == winner:
                text += "*"
            row.append(text.rjust(width))
        lines.append("".join(row))
    return "\n".join(lines)


def format_ranking_table(
    rankings: Mapping[str, Sequence[str]], *, title: str = "", top: int | None = None
) -> str:
    """Render per-class ranked name lists side by side (Tables 2 and 5)."""
    columns = list(rankings)
    depth = max((len(rankings[c]) for c in columns), default=0)
    if top is not None:
        depth = min(depth, top)
    width = max(
        [len(c) for c in columns]
        + [len(name) for c in columns for name in rankings[c][:depth]],
        default=8,
    ) + 2
    lines = []
    if title:
        lines.append(title)
    lines.append("rank".ljust(6) + "".join(c.rjust(width) for c in columns))
    lines.append("-" * (6 + width * len(columns)))
    for rank in range(depth):
        row = [f"{rank + 1:<6d}"]
        for c in columns:
            entries = rankings[c]
            row.append((entries[rank] if rank < len(entries) else "").rjust(width))
        lines.append("".join(row))
    return "\n".join(lines)


#: Unicode block characters for sparklines, lowest to highest.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def format_sparkline(values, *, minimum: float | None = None, maximum: float | None = None) -> str:
    """A one-line unicode sparkline of a numeric series.

    NaNs render as spaces; a constant series renders at mid height.
    Used by the CLI to give the figure reports a visual silhouette.
    """
    import math

    vals = [float(v) for v in values]
    finite = [v for v in vals if not math.isnan(v)]
    if not finite:
        return " " * len(vals)
    low = min(finite) if minimum is None else float(minimum)
    high = max(finite) if maximum is None else float(maximum)
    span = high - low
    chars = []
    for v in vals:
        if math.isnan(v):
            chars.append(" ")
        elif span <= 0:
            chars.append(_SPARK_BLOCKS[len(_SPARK_BLOCKS) // 2])
        else:
            idx = int((v - low) / span * (len(_SPARK_BLOCKS) - 1))
            chars.append(_SPARK_BLOCKS[max(0, min(idx, len(_SPARK_BLOCKS) - 1))])
    return "".join(chars)


def format_series(
    series: Mapping[str, Sequence[float]],
    xs: Sequence[float],
    *,
    title: str = "",
    x_name: str = "x",
) -> str:
    """Render named numeric series over a shared x-axis (the figures)."""
    names = list(series)
    width = max((len(n) for n in names), default=6) + 4
    lines = []
    if title:
        lines.append(title)
    lines.append(x_name.ljust(10) + "".join(n.rjust(width) for n in names))
    lines.append("-" * (10 + width * len(names)))
    for idx, x in enumerate(xs):
        row = [f"{x:<10.3g}"]
        for name in names:
            values = series[name]
            text = f"{values[idx]:.4f}" if idx < len(values) else ""
            row.append(text.rjust(width))
        lines.append("".join(row))
    # A one-line silhouette per series, shared value scale.
    for name in names:
        lines.append(f"{name:<10.10s}{format_sparkline(series[name]).rjust(width)}")
    return "\n".join(lines)
