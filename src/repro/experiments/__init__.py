"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`~repro.experiments.harness` — method x label-fraction grids with
  repeated stratified trials (the evaluation protocol of section 6).
* :mod:`~repro.experiments.methods` — the paper's method roster with the
  per-dataset hyper-parameters of section 6.5.
* :mod:`~repro.experiments.tables` — ASCII rendering of grids, rankings
  and series.
* :mod:`~repro.experiments.runners` — one runner per table/figure.
* :mod:`~repro.experiments.registry` — id -> runner mapping and the
  public :func:`~repro.experiments.registry.run_experiment`.

Run ``python -m repro.experiments list`` to enumerate experiments and
``python -m repro.experiments run table3`` to regenerate one.
"""

from repro.experiments.harness import (
    GridResult,
    cell_seed_sequence,
    evaluate_method,
    run_grid,
    scores_to_multilabel,
    scores_to_predictions,
    shared_tmark_operators,
)
from repro.experiments.methods import method_roster, tmark_params
from repro.experiments.paper import PAPER_GRIDS, compare_with_paper
from repro.experiments.parallel import (
    WorkerError,
    available_workers,
    graph_fingerprint,
    run_grid_parallel,
)
from repro.experiments.registry import (
    ExperimentReport,
    experiment_ids,
    get_experiment,
    run_experiment,
)
from repro.experiments.tuning import tune_tmark

__all__ = [
    "GridResult",
    "cell_seed_sequence",
    "evaluate_method",
    "run_grid",
    "scores_to_predictions",
    "scores_to_multilabel",
    "shared_tmark_operators",
    "WorkerError",
    "available_workers",
    "graph_fingerprint",
    "run_grid_parallel",
    "method_roster",
    "tmark_params",
    "PAPER_GRIDS",
    "compare_with_paper",
    "tune_tmark",
    "ExperimentReport",
    "experiment_ids",
    "get_experiment",
    "run_experiment",
]
