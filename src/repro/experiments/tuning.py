"""Hyper-parameter search for T-Mark.

Section 6.5 of the paper tunes ``alpha`` and ``gamma`` by sweeping them
per dataset.  :func:`tune_tmark` automates that: grid search over any
``TMark`` constructor parameters, scored by repeated stratified
hold-out evaluation *within the labeled set* (the unlabeled test nodes
are never touched, so tuning cannot leak test information).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core.tmark import TMark, build_operators
from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.ml.metrics import accuracy
from repro.utils.rng import spawn_rngs
from repro.utils.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class TuningCandidate:
    """One evaluated parameter setting."""

    params: dict
    mean_score: float
    std_score: float


@dataclass
class TuningResult:
    """All candidates plus the winner."""

    candidates: list[TuningCandidate] = field(default_factory=list)

    @property
    def best(self) -> TuningCandidate:
        """The highest-scoring candidate."""
        return max(self.candidates, key=lambda c: c.mean_score)

    @property
    def best_params(self) -> dict:
        """Constructor kwargs of the winner."""
        return dict(self.best.params)

    def __str__(self) -> str:
        lines = ["T-Mark tuning result:"]
        for cand in sorted(self.candidates, key=lambda c: -c.mean_score):
            marker = " <- best" if cand is self.best else ""
            lines.append(
                f"  {cand.params}: {cand.mean_score:.3f} "
                f"± {cand.std_score:.3f}{marker}"
            )
        return "\n".join(lines)


def tune_tmark(
    hin: HIN,
    param_grid: dict,
    *,
    validation_fraction: float = 0.3,
    n_trials: int = 3,
    seed=None,
) -> TuningResult:
    """Grid-search ``TMark`` parameters on a partially labeled HIN.

    For every parameter combination, ``n_trials`` times: hide a
    stratified ``validation_fraction`` of the *labeled* nodes, fit on
    the rest, and score accuracy on the hidden ones.  Unlabeled nodes
    never contribute to the score.

    Parameters
    ----------
    hin:
        The (partially labeled) network — typically the training view
        the final model will be fitted on.
    param_grid:
        Maps ``TMark`` constructor argument names to candidate values,
        e.g. ``{"alpha": [0.5, 0.8, 0.9], "gamma": [0.2, 0.6]}``.
    validation_fraction:
        Share of labeled nodes held out per trial.
    n_trials:
        Hold-out repetitions per combination.
    seed:
        Root seed; every combination sees the same split sequence so
        comparisons are paired.
    """
    if hin.multilabel:
        raise ValidationError("tune_tmark supports single-label HINs only")
    if not param_grid:
        raise ValidationError("param_grid must not be empty")
    validation_fraction = check_fraction(validation_fraction, "validation_fraction")
    check_positive_int(n_trials, "n_trials")

    y = hin.y
    labeled_idx = np.flatnonzero(y >= 0)
    if labeled_idx.size < 4:
        raise ValidationError(
            f"need at least 4 labeled nodes to tune, got {labeled_idx.size}"
        )

    # Pre-draw paired validation splits (same for every combination).
    splits = []
    for rng in spawn_rngs(seed, n_trials):
        order = rng.permutation(labeled_idx)
        n_val = max(1, int(round(validation_fraction * labeled_idx.size)))
        n_val = min(n_val, labeled_idx.size - 1)
        splits.append(set(order[:n_val].tolist()))

    names = list(param_grid)
    result = TuningResult()
    # Every combination refits the same network with different masks, so
    # the (O, R, W) triple is shared per similarity setting across the
    # whole grid rather than rebuilt n_combinations * n_trials times.
    operator_pool: dict = {}
    for values in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, values))
        scores = []
        for validation in splits:
            train_mask = np.zeros(hin.n_nodes, dtype=bool)
            train_mask[labeled_idx] = True
            validation_idx = np.fromiter(validation, dtype=np.int64)
            train_mask[validation_idx] = False
            if not train_mask.any():
                raise ValidationError("validation split left no training labels")
            model = TMark(**params)
            key = (model.similarity_top_k, model.similarity_metric)
            if key not in operator_pool:
                operator_pool[key] = build_operators(
                    hin, similarity_top_k=key[0], similarity_metric=key[1]
                )
            model.fit(hin.masked(train_mask), operators=operator_pool[key])
            predictions = model.predict()
            scores.append(accuracy(y[validation_idx], predictions[validation_idx]))
        result.candidates.append(
            TuningCandidate(
                params=params,
                mean_score=float(np.mean(scores)),
                std_score=float(np.std(scores)),
            )
        )
    return result
