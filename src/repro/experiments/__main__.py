"""Command-line entry point: ``python -m repro.experiments``.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run table3 [--scale 1.0] [--seed 0]
                                           [--trials 3] [--full] [--std]
                                           [--save-dir DIR] [--trace PATH]
                                           [--solver anderson]
    python -m repro.experiments run all
    python -m repro.experiments compare table3 [--trials 10]
    python -m repro.experiments tune dblp [--fraction 0.3]
    python -m repro.experiments trace-summary PATH [--json]
    python -m repro.experiments health PATH [--tol 1e-8]
    python -m repro.experiments trace-diff OLD NEW [--threshold 0.2]
    python -m repro.experiments obs export PATH [--chrome] [-o OUT]
    python -m repro.experiments obs flight URL [--last N] [-o OUT]
    python -m repro.experiments stream [--deltas 50] [--batch-size 10]
                                       [--journal PATH] [--hin PATH]
                                       [--save-journal PATH] [--save-hin PATH]
                                       [--solver anderson]
    python -m repro.experiments serve [--port 8731] [--hin PATH]
                                      [--result PATH] [--journal PATH]
                                      [--solver anderson] [--max-seconds S]
    python -m repro.experiments store build DIR (--hin PATH | --dataset NAME)
    python -m repro.experiments store synth DIR [--nodes N] [--links L]
    python -m repro.experiments store inspect DIR [--verify]
    python -m repro.experiments run example --store DIR

``--full`` switches the neural/ensemble baselines to their full training
budgets; ``--trials 10`` matches the paper's 10-runs-per-split protocol;
``--std`` prints mean±std cells (the paper's format); ``compare`` scores
a measured grid against the paper's published numbers; ``tune``
grid-searches T-Mark's hyper-parameters inside a dataset's labeled set;
``--trace`` records chain/harness telemetry as JSONL (see
:mod:`repro.obs`) and ``trace-summary`` aggregates such a file into a
phase-time breakdown table.  ``health`` folds a trace's residual series
into per-class convergence verdicts (exit 4 when any chain is
unhealthy); ``trace-diff`` compares two traces phase-by-phase with a
relative-change threshold (exit 3 on regressions) — the CI gate that a
run has not slowed down or lost convergence.  ``stream`` exits 2 when
the warm/cold exactness check fails, 4 when a reconvergence surfaced an
unhealthy chain, 5 for unreadable input files; ``serve`` runs the
:mod:`repro.serve` prediction daemon over a fitted streaming session
(exit 4 when the background updater dies, 5 for unreadable inputs).
``obs export`` converts a JSONL trace (gzipped or not) into Chrome
trace-event JSON for ``ui.perfetto.dev``; ``obs flight`` pulls the ring
buffer of a live daemon's flight recorder (``GET /debug/trace``) and
summarizes or saves it — exit 1 for unreadable inputs/unreachable
daemons.  ``store`` manages the out-of-core tier (:mod:`repro.ooc`): ``build``
converts a HIN into a memory-mapped :class:`~repro.ooc.store.GraphStore`
directory, ``synth`` generates a synthetic store directly on disk, and
``inspect`` prints (and with ``--verify`` re-hashes) a store's manifest
— exit 5 for unreadable inputs.  ``run ... --store DIR`` routes a
supporting experiment through the store-backed fit path.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import experiment_ids, get_experiment, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the T-Mark paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the registered experiments")
    compare = sub.add_parser(
        "compare",
        help="run a grid experiment and compare it against the paper's numbers",
    )
    compare.add_argument("experiment", help="a grid experiment id, e.g. table3")
    compare.add_argument("--scale", type=float, default=1.0)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--trials", type=int, default=3)
    compare.add_argument(
        "--workers",
        type=int,
        default=1,
        help="grid-cell worker processes (1 = serial; results are identical)",
    )
    tune = sub.add_parser(
        "tune", help="grid-search T-Mark's alpha/gamma/lambda on a dataset"
    )
    tune.add_argument(
        "dataset", help="dataset name: dblp, movies, nus (single-label only)"
    )
    tune.add_argument("--scale", type=float, default=0.5)
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--fraction", type=float, default=0.3,
                      help="labeled fraction to tune within")
    tune.add_argument("--trials", type=int, default=3)
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. table3, or 'all'")
    run.add_argument("--scale", type=float, default=1.0, help="dataset size multiplier")
    run.add_argument("--seed", type=int, default=0, help="root RNG seed")
    run.add_argument(
        "--trials", type=int, default=3, help="random splits per grid cell (paper: 10)"
    )
    run.add_argument(
        "--full",
        action="store_true",
        help="full training budgets for the neural/ensemble baselines",
    )
    run.add_argument(
        "--std",
        action="store_true",
        help="print mean±std cells in grid tables (the paper's format)",
    )
    run.add_argument(
        "--save-dir",
        default=None,
        help="also write <id>.txt/.json (and .csv for grids) to this directory",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record chain/harness telemetry to this JSONL file (repro.obs)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="grid-cell worker processes (1 = serial; results are identical)",
    )
    run.add_argument(
        "--solver",
        default=None,
        choices=("plain", "anderson", "aitken", "auto"),
        help="fixed-point solver for the T-Mark chains (repro.solvers)",
    )
    run.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="fit through the out-of-core GraphStore at DIR instead of in "
             "RAM (experiments that support it, e.g. 'example'; the store "
             "is created there on first use)",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="partition the fit into K node shards run by fork workers "
             "(repro.shard; experiments that support it, e.g. 'example'; "
             "scores are bit-identical to the serial fit)",
    )
    store = sub.add_parser(
        "store",
        help="build, synthesise or inspect an out-of-core graph store "
             "(repro.ooc)",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_build = store_sub.add_parser(
        "build", help="save a HIN into a mmap-able GraphStore directory"
    )
    store_build.add_argument("directory", help="target store directory")
    source = store_build.add_mutually_exclusive_group(required=True)
    source.add_argument("--hin", default=None, metavar="PATH",
                        help="a save_hin .npz archive to convert")
    source.add_argument("--dataset", default=None, metavar="NAME",
                        help="a calibrated dataset name (dblp, movies, ...)")
    store_build.add_argument("--scale", type=float, default=1.0,
                             help="dataset size multiplier (with --dataset)")
    store_build.add_argument("--seed", type=int, default=0)
    store_synth = store_sub.add_parser(
        "synth",
        help="generate a synthetic out-of-core store directly on disk",
    )
    store_synth.add_argument("directory", help="target store directory")
    store_synth.add_argument("--nodes", type=int, default=100_000)
    store_synth.add_argument("--links", type=int, default=110_000,
                             help="requested links per relation (pre-dedup)")
    store_synth.add_argument("--relations", type=int, default=2)
    store_synth.add_argument("--labels", type=int, default=2)
    store_synth.add_argument("--features", type=int, default=32)
    store_synth.add_argument("--labeled-fraction", type=float, default=0.05)
    store_synth.add_argument("--homophily", type=float, default=0.8)
    store_synth.add_argument("--seed", type=int, default=0)
    store_inspect = store_sub.add_parser(
        "inspect", help="print a store's manifest summary"
    )
    store_inspect.add_argument("directory", help="store directory to inspect")
    store_inspect.add_argument(
        "--verify",
        action="store_true",
        help="re-hash every data file against the manifest fingerprints",
    )
    trace_summary = sub.add_parser(
        "trace-summary",
        help="aggregate a --trace JSONL file into a phase-time breakdown",
    )
    trace_summary.add_argument("path", help="a JSONL trace written by run --trace")
    trace_summary.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as machine-readable JSON instead of a table",
    )
    obs = sub.add_parser(
        "obs",
        help="operational trace tooling: Perfetto export and live "
             "flight-recorder access",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_export = obs_sub.add_parser(
        "export",
        help="convert a JSONL trace (.jsonl or .jsonl.gz) for ui.perfetto.dev",
    )
    obs_export.add_argument("path", help="a JSONL trace written by run --trace")
    obs_export.add_argument(
        "--chrome",
        action="store_true",
        help="Chrome trace-event JSON (the default and only format)",
    )
    obs_export.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="output file (default: <trace>.chrome.json)",
    )
    obs_flight = obs_sub.add_parser(
        "flight",
        help="fetch a live daemon's flight-recorder ring via GET /debug/trace",
    )
    obs_flight.add_argument(
        "url", help="daemon base URL, e.g. http://127.0.0.1:8731"
    )
    obs_flight.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only the N most recent ring events",
    )
    obs_flight.add_argument(
        "--chrome",
        action="store_true",
        help="write Chrome trace-event JSON instead of JSONL (needs -o)",
    )
    obs_flight.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="save the ring events (default: print a trace summary)",
    )
    health = sub.add_parser(
        "health",
        help="per-class convergence verdicts for a --trace JSONL file",
    )
    health.add_argument("path", help="a JSONL trace written by run --trace")
    health.add_argument(
        "--tol",
        type=float,
        default=None,
        help="fallback tolerance for traces without fit-event tolerances",
    )
    trace_diff = sub.add_parser(
        "trace-diff",
        help="compare two --trace JSONL files for perf/convergence regressions",
    )
    trace_diff.add_argument("old", help="the baseline trace")
    trace_diff.add_argument("new", help="the candidate trace")
    trace_diff.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="relative-change threshold for flagging a regression (default 0.2)",
    )
    stream = sub.add_parser(
        "stream",
        help="replay a delta journal through a warm streaming session",
    )
    stream.add_argument("--scale", type=float, default=1.0,
                        help="synthetic seed-graph size multiplier")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--deltas", type=int, default=50,
                        help="synthetic journal length (ignored with --journal)")
    stream.add_argument("--batch-size", type=int, default=10,
                        help="deltas per synthetic batch (ignored with --journal)")
    stream.add_argument("--journal", default=None, metavar="PATH",
                        help="replay this JSONL delta journal instead")
    stream.add_argument("--hin", default=None, metavar="PATH",
                        help="seed graph archive (save_hin) instead of synthetic")
    stream.add_argument("--save-journal", default=None, metavar="PATH",
                        help="write the replayed journal as JSONL")
    stream.add_argument("--save-hin", default=None, metavar="PATH",
                        help="write the final evolved graph as .npz")
    stream.add_argument("--trace", default=None, metavar="PATH",
                        help="record streaming telemetry to this JSONL file")
    stream.add_argument("--solver", default=None,
                        choices=("plain", "anderson", "aitken", "auto"),
                        help="fixed-point solver for the reconvergence fits")
    serve = sub.add_parser(
        "serve",
        help="serve classify/top-k/relation queries over HTTP from "
             "snapshot-swapped stationary state",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8731,
                       help="bind port (0 picks a free ephemeral port)")
    serve.add_argument("--scale", type=float, default=0.5,
                       help="synthetic seed-graph size multiplier")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--hin", default=None, metavar="PATH",
                       help="seed graph archive (save_hin) instead of synthetic")
    serve.add_argument("--result", default=None, metavar="PATH",
                       help="persisted save_result archive to resume from "
                            "(skips the startup fit)")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="append accepted /update deltas to this JSONL journal")
    serve.add_argument("--solver", default=None,
                       choices=("plain", "anderson", "aitken", "auto"),
                       help="fixed-point solver for background reconvergences")
    serve.add_argument("--max-seconds", type=float, default=None,
                       help="self-terminate after this many seconds (smoke tests)")
    return parser


def _run_one(experiment_id: str, args) -> None:
    experiment = get_experiment(experiment_id)
    kwargs = {"scale": args.scale, "seed": args.seed}
    # Only the grid experiments take trial counts / fast switches.
    import inspect

    signature = inspect.signature(experiment.runner)
    if "n_trials" in signature.parameters:
        kwargs["n_trials"] = args.trials
    if "fast" in signature.parameters:
        kwargs["fast"] = not args.full
    if "with_std" in signature.parameters and getattr(args, "std", False):
        kwargs["with_std"] = True
    if "workers" in signature.parameters:
        kwargs["workers"] = getattr(args, "workers", 1)
    if "solver" in signature.parameters and getattr(args, "solver", None):
        kwargs["solver"] = args.solver
    if "store" in signature.parameters and getattr(args, "store", None):
        kwargs["store"] = args.store
    if "shards" in signature.parameters and getattr(args, "shards", None):
        kwargs["shards"] = args.shards
    from repro.obs import span

    started = time.perf_counter()
    # Root span of a traced run: every fit/pool/store event below shares
    # its trace_id (no-op when --trace is absent).
    with span("experiment", experiment=experiment_id):
        report = run_experiment(experiment_id, **kwargs)
    elapsed = time.perf_counter() - started
    print(report)
    if args.save_dir:
        from repro.experiments.export import save_report

        for path in save_report(report, args.save_dir):
            print(f"[wrote {path}]")
    print(f"[{experiment_id} finished in {elapsed:.1f}s]\n")


def _default_chrome_out(path):
    """``trace.jsonl[.gz]`` -> ``trace.chrome.json`` (sibling file)."""
    from pathlib import Path

    path = Path(path)
    name = path.name
    for suffix in (".jsonl.gz", ".jsonl"):
        if name.endswith(suffix):
            return path.with_name(name[: -len(suffix)] + ".chrome.json")
    return path.with_name(name + ".chrome.json")


def _obs_cli(args) -> int:
    """The ``obs`` subcommand: export / flight (exit 1 on bad input)."""
    import os

    from repro.obs import (
        format_trace_summary,
        read_trace,
        summarize_trace,
        write_chrome_trace,
    )

    if args.obs_command == "export":
        if not os.path.exists(args.path):
            print(f"no such trace file: {args.path}")
            return 1
        events = read_trace(args.path, strict=False)
        out = args.output if args.output else _default_chrome_out(args.path)
        write_chrome_trace(events, out)
        print(f"[chrome trace: {len(events)} events -> {out}]")
        print("[open in ui.perfetto.dev or chrome://tracing]")
        return 0
    if args.obs_command == "flight":
        import json
        import urllib.error
        import urllib.request

        url = args.url.rstrip("/") + "/debug/trace"
        if args.last is not None:
            url += f"?last={args.last}"
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                body = json.loads(response.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as error:
            print(f"could not fetch {url}: {error}")
            return 1
        events = body.get("events", [])
        print(
            f"[flight recorder: {len(events)} of {body.get('total_events', '?')} "
            f"events (ring capacity {body.get('capacity', '?')}), "
            f"snapshot v{body.get('snapshot_version', '?')}]"
        )
        if args.output and args.chrome:
            write_chrome_trace(events, args.output)
            print(f"[chrome trace -> {args.output}]")
        elif args.output:
            import gzip

            opener = gzip.open if str(args.output).endswith(".gz") else open
            with opener(args.output, "wt", encoding="utf-8") as handle:
                for event in events:
                    handle.write(json.dumps(event) + "\n")
            print(f"[jsonl trace -> {args.output}]")
        else:
            print(format_trace_summary(summarize_trace(events)))
        return 0
    raise AssertionError(f"unhandled obs command {args.obs_command!r}")


def _store_cli(args) -> int:
    """The ``store`` subcommand: build / synth / inspect (exit 5 on bad input)."""
    from repro.errors import ValidationError
    from repro.ooc import GraphStore, generate_ooc_store

    if args.store_command == "build":
        try:
            if args.hin is not None:
                from repro.hin.io import load_hin

                hin = load_hin(args.hin)
            else:
                from repro.datasets import get_dataset

                hin = get_dataset(args.dataset, scale=args.scale, seed=args.seed)
        except (OSError, ValueError, KeyError, ValidationError) as exc:
            print(f"cannot load source graph: {exc}")
            return 5
        store = GraphStore.save(hin, args.directory)
        print(
            f"[store: {store.n_nodes} nodes, {store.n_relations} relations, "
            f"{store.nnz} links -> {args.directory}]"
        )
        return 0
    if args.store_command == "synth":
        store = generate_ooc_store(
            args.directory,
            n_nodes=args.nodes,
            n_links=args.links,
            n_relations=args.relations,
            n_labels=args.labels,
            n_features=args.features,
            labeled_fraction=args.labeled_fraction,
            homophily=args.homophily,
            seed=args.seed,
        )
        print(
            f"[store: {store.n_nodes} nodes, {store.n_relations} relations, "
            f"{store.nnz} links -> {args.directory}]"
        )
        return 0
    # inspect
    try:
        store = GraphStore.open(args.directory, verify=args.verify)
    except ValidationError as exc:
        print(f"unreadable store: {exc}")
        return 5
    print(f"store: {args.directory}")
    print(f"  nodes:      {store.n_nodes}")
    print(f"  relations:  {store.n_relations} ({', '.join(store.relation_names)})")
    print(f"  labels:     {store.n_labels} ({', '.join(store.label_names)})")
    print(f"  features:   {store.n_features}")
    print(f"  links:      {store.nnz}  per-relation {list(store.relation_nnz)}")
    print(f"  multilabel: {store.multilabel}")
    print(f"  fingerprint: {store.store_fingerprint()}")
    if args.verify:
        print("  verify:     all file hashes match")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "store":
        return _store_cli(args)
    if args.command == "obs":
        return _obs_cli(args)
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(f"{experiment_id:10s} {get_experiment(experiment_id).title}")
        return 0
    if args.command == "tune":
        import numpy as np

        from repro.datasets import get_dataset
        from repro.experiments.tuning import tune_tmark
        from repro.ml.splits import stratified_fraction_split

        hin = get_dataset(args.dataset, scale=args.scale, seed=args.seed)
        if hin.multilabel:
            print(f"{args.dataset} is multi-label; tune supports single-label only")
            return 1
        mask = stratified_fraction_split(
            hin.y, args.fraction, rng=np.random.default_rng(args.seed)
        )
        grid = {
            "alpha": [0.5, 0.7, 0.8, 0.9],
            "gamma": [0.2, 0.4, 0.6],
            "label_threshold": [0.8, 0.95],
        }
        result = tune_tmark(
            hin.masked(mask), grid, n_trials=args.trials, seed=args.seed
        )
        print(result)
        print(f"\nbest parameters: {result.best_params}")
        return 0
    if args.command == "compare":
        from repro.experiments.paper import PAPER_GRIDS, compare_with_paper

        if args.experiment not in PAPER_GRIDS:
            print(
                f"no paper reference grid for {args.experiment!r}; "
                f"available: {', '.join(sorted(PAPER_GRIDS))}"
            )
            return 1
        import inspect

        compare_kwargs = {}
        runner = get_experiment(args.experiment).runner
        if "workers" in inspect.signature(runner).parameters:
            compare_kwargs["workers"] = args.workers
        report = run_experiment(
            args.experiment,
            scale=args.scale,
            seed=args.seed,
            n_trials=args.trials,
            **compare_kwargs,
        )
        print(report)
        comparison = compare_with_paper(args.experiment, report.data["grid"])
        print()
        print(comparison)
        return 0 if comparison.all_shapes_hold else 2
    if args.command == "serve":
        from repro.serve.daemon import run_serve_cli

        return run_serve_cli(args)
    if args.command == "stream":
        from repro.experiments.streaming import run_stream_cli

        if args.trace:
            from repro.obs import JsonlTraceRecorder, use_recorder

            with JsonlTraceRecorder(args.trace) as recorder, use_recorder(recorder):
                code = run_stream_cli(args)
            print(f"[trace: {recorder.n_events} events -> {args.trace}]")
            return code
        return run_stream_cli(args)
    if args.command == "trace-summary":
        import os

        from repro.obs import format_trace_summary, read_trace, summarize_trace

        if not os.path.exists(args.path):
            print(f"no such trace file: {args.path}")
            return 1
        events = read_trace(args.path, strict=False)
        summary = summarize_trace(events)
        if args.json:
            import json

            print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
        else:
            print(format_trace_summary(summary))
        return 0
    if args.command == "health":
        import os

        from repro.obs import format_health_report, read_trace, trace_chain_health

        if not os.path.exists(args.path):
            print(f"no such trace file: {args.path}")
            return 1
        verdicts = trace_chain_health(
            read_trace(args.path, strict=False), tol=args.tol
        )
        print(format_health_report(verdicts))
        return 0 if all(v.ok for v in verdicts) else 4
    if args.command == "trace-diff":
        import os

        from repro.obs import diff_traces, format_trace_diff, read_trace

        for path in (args.old, args.new):
            if not os.path.exists(path):
                print(f"no such trace file: {path}")
                return 1
        kwargs = {}
        if args.threshold is not None:
            kwargs["threshold"] = args.threshold
        diff = diff_traces(
            read_trace(args.old, strict=False),
            read_trace(args.new, strict=False),
            **kwargs,
        )
        print(format_trace_diff(diff))
        return 0 if diff.passed else 3
    targets = experiment_ids() if args.experiment == "all" else [args.experiment]
    if getattr(args, "trace", None):
        from repro.obs import JsonlTraceRecorder, use_recorder

        with JsonlTraceRecorder(args.trace) as recorder, use_recorder(recorder):
            for experiment_id in targets:
                _run_one(experiment_id, args)
        print(f"[trace: {recorder.n_events} events -> {args.trace}]")
        return 0
    for experiment_id in targets:
        _run_one(experiment_id, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
