"""Export experiment reports to machine-readable formats.

``python -m repro.experiments run table3 --save-dir out/`` writes, per
experiment, the rendered text plus a JSON payload (and a CSV for grid
experiments) so results can be post-processed without re-running.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.experiments.harness import GridResult
from repro.experiments.report import ExperimentReport


def _jsonable(value):
    """Recursively convert report data to JSON-safe structures."""
    if isinstance(value, GridResult):
        return {
            "fractions": list(value.fractions),
            "metric": value.metric,
            "cells": {
                name: [
                    {"mean": cell.mean, "std": cell.std, "n_trials": cell.n_trials}
                    for cell in cells
                ]
                for name, cells in value.cells.items()
            },
        }
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(val) for val in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def report_to_json(report: ExperimentReport) -> str:
    """Serialise a report (title, text, data) to a JSON string."""
    payload = {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "text": report.text,
        "data": _jsonable(report.data),
    }
    return json.dumps(payload, indent=2)


def grid_to_csv(grid: GridResult, path) -> Path:
    """Write a grid as CSV: one row per fraction, one column pair per method."""
    path = Path(path)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        header = ["fraction"]
        for name in grid.method_names:
            header += [f"{name}_mean", f"{name}_std"]
        writer.writerow(header)
        for f_idx, fraction in enumerate(grid.fractions):
            row = [fraction]
            for name in grid.method_names:
                cell = grid.cells[name][f_idx]
                row += [f"{cell.mean:.6f}", f"{cell.std:.6f}"]
            writer.writerow(row)
    return path


def save_report(report: ExperimentReport, directory) -> list[Path]:
    """Write ``<id>.txt``, ``<id>.json`` (and ``<id>.csv`` for grids).

    Returns the list of files written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    text_path = directory / f"{report.experiment_id}.txt"
    text_path.write_text(str(report) + "\n", encoding="utf-8")
    written.append(text_path)
    json_path = directory / f"{report.experiment_id}.json"
    json_path.write_text(report_to_json(report) + "\n", encoding="utf-8")
    written.append(json_path)
    grid = report.data.get("grid")
    if isinstance(grid, GridResult):
        written.append(grid_to_csv(grid, directory / f"{report.experiment_id}.csv"))
    return written
