"""Auxiliary studies: joint parameter sensitivity and link-noise robustness.

Two experiments beyond the paper's figures that probe its central claims
directly:

* :func:`run_sensitivity` — the paper sweeps alpha (Fig. 6/7) and gamma
  (Fig. 8/9) separately; this runner maps the *joint* alpha x gamma
  surface on DBLP, reusing precomputed operators so the full grid costs
  little more than one fit per cell.
* :func:`run_noise_robustness` — the paper motivates T-Mark by HINs
  containing "many useless links".  This runner injects a growing,
  completely random extra link type into DBLP and tracks T-Mark vs
  wvRN+RL.  T-Mark is shielded structurally: random links diffuse each
  class chain's mass *uniformly*, adding a rank-neutral constant to the
  stationary ``x`` (its ``z`` actually rises with the junk volume since
  ``z`` tracks usage), whereas the equal-weight neighbour vote of wvRN
  is corrupted directly.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import WvRNRL
from repro.core import TMark
from repro.core.tmark import build_operators
from repro.experiments.methods import tmark_params
from repro.experiments.report import ExperimentReport
from repro.experiments.tables import format_series
from repro.hin.graph import HIN
from repro.ml.metrics import accuracy
from repro.ml.splits import stratified_fraction_split
from repro.tensor.sptensor import SparseTensor3
from repro.utils.rng import ensure_rng, spawn_rngs

#: The joint sweep grids.
SENSITIVITY_ALPHAS: tuple[float, ...] = (0.3, 0.5, 0.7, 0.8, 0.9)
SENSITIVITY_GAMMAS: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8)

#: Noise volumes as multiples of the clean HIN's link count.
NOISE_LEVELS: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0)


def inject_noise_relation(
    hin: HIN, n_links: int, *, seed=None, name: str = "noise"
) -> HIN:
    """Return a copy of ``hin`` with an extra relation of random links.

    The new relation joins uniformly random node pairs (undirected), so
    its homophily sits at chance — the "useless link" of section 6.3.
    """
    rng = ensure_rng(seed)
    if name in hin.relation_names:
        raise ValueError(f"relation {name!r} already exists")
    i, j, k = hin.tensor.coords
    values = hin.tensor.values
    sources = rng.integers(0, hin.n_nodes, size=n_links)
    offsets = rng.integers(1, max(hin.n_nodes, 2), size=n_links)
    targets = (sources + offsets) % hin.n_nodes
    new_i = np.concatenate([i, targets, sources])
    new_j = np.concatenate([j, sources, targets])
    new_k = np.concatenate([k, np.full(2 * n_links, hin.n_relations, dtype=np.int64)])
    new_values = np.concatenate([values, np.ones(2 * n_links)])
    tensor = SparseTensor3(
        new_i,
        new_j,
        new_k,
        new_values,
        shape=(hin.n_nodes, hin.n_nodes, hin.n_relations + 1),
    )
    return HIN(
        tensor,
        list(hin.relation_names) + [name],
        hin.features,
        hin.label_matrix,
        hin.label_names,
        node_names=hin.node_names,
        multilabel=hin.multilabel,
        metadata=hin.metadata,
    )


def run_sensitivity(
    *, scale: float = 1.0, seed=0, n_trials: int = 3, fraction: float = 0.3
) -> ExperimentReport:
    """Joint alpha x gamma accuracy surface for T-Mark on DBLP."""
    from repro.datasets.registry import scaled_dblp

    hin = scaled_dblp(scale, seed)
    y = hin.y
    operators = build_operators(hin)
    base = tmark_params("dblp")
    surface = np.zeros((len(SENSITIVITY_ALPHAS), len(SENSITIVITY_GAMMAS)))
    for a_idx, alpha in enumerate(SENSITIVITY_ALPHAS):
        for g_idx, gamma in enumerate(SENSITIVITY_GAMMAS):
            accs = []
            for rng in spawn_rngs(seed, n_trials):
                mask = stratified_fraction_split(y, fraction, rng=rng)
                model = TMark(
                    alpha=alpha,
                    gamma=gamma,
                    label_threshold=base["label_threshold"],
                ).fit(hin.masked(mask), operators=operators)
                accs.append(accuracy(y[~mask], model.predict()[~mask]))
            surface[a_idx, g_idx] = float(np.mean(accs))
    series = {
        f"gamma={gamma}": surface[:, g_idx].tolist()
        for g_idx, gamma in enumerate(SENSITIVITY_GAMMAS)
    }
    text = format_series(
        series,
        SENSITIVITY_ALPHAS,
        title="Sensitivity — T-Mark accuracy over (alpha, gamma) on DBLP",
        x_name="alpha",
    )
    best = np.unravel_index(int(np.argmax(surface)), surface.shape)
    text += (
        f"\nbest cell: alpha={SENSITIVITY_ALPHAS[best[0]]}, "
        f"gamma={SENSITIVITY_GAMMAS[best[1]]} "
        f"({surface[best]:.3f})"
    )
    return ExperimentReport(
        "sensitivity",
        "Joint alpha x gamma sensitivity of T-Mark on DBLP",
        text,
        data={
            "alphas": list(SENSITIVITY_ALPHAS),
            "gammas": list(SENSITIVITY_GAMMAS),
            "surface": surface.tolist(),
            "best": {
                "alpha": SENSITIVITY_ALPHAS[best[0]],
                "gamma": SENSITIVITY_GAMMAS[best[1]],
                "accuracy": float(surface[best]),
            },
        },
    )


def run_noise_robustness(
    *, scale: float = 1.0, seed=0, n_trials: int = 3, fraction: float = 0.2
) -> ExperimentReport:
    """T-Mark vs wvRN+RL accuracy as random noise links are injected."""
    from repro.datasets.registry import scaled_dblp

    clean = scaled_dblp(scale, seed)
    y = clean.y
    base_links = clean.tensor.nnz // 2  # undirected pairs
    params = tmark_params("dblp")
    tmark_curve, wvrn_curve = [], []
    for level in NOISE_LEVELS:
        hin = (
            clean
            if level == 0
            else inject_noise_relation(
                clean, int(level * base_links), seed=seed + 1
            )
        )
        tmark_accs, wvrn_accs = [], []
        for rng in spawn_rngs(seed, n_trials):
            mask = stratified_fraction_split(y, fraction, rng=rng)
            train = hin.masked(mask)
            model = TMark(**params).fit(train)
            tmark_accs.append(accuracy(y[~mask], model.predict()[~mask]))
            scores = WvRNRL().fit_predict(train)
            wvrn_accs.append(
                accuracy(y[~mask], np.argmax(scores, axis=1)[~mask])
            )
        tmark_curve.append(float(np.mean(tmark_accs)))
        wvrn_curve.append(float(np.mean(wvrn_accs)))
    text = format_series(
        {"T-Mark": tmark_curve, "wvRN+RL": wvrn_curve},
        NOISE_LEVELS,
        title=(
            "Noise robustness — accuracy vs injected random-link volume "
            "(multiples of the clean link count, DBLP)"
        ),
        x_name="noise x",
    )
    return ExperimentReport(
        "noise",
        "Robustness to a useless link type: T-Mark vs wvRN+RL",
        text,
        data={
            "noise_levels": list(NOISE_LEVELS),
            "tmark": tmark_curve,
            "wvrn": wvrn_curve,
        },
    )


#: Training-label corruption rates for the label-noise study.
LABEL_NOISE_LEVELS: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3)


def flip_labels(hin: HIN, rate: float, *, seed=None) -> HIN:
    """Return a copy of ``hin`` with ``rate`` of labeled nodes mislabeled.

    Each corrupted (single-label) node is reassigned uniformly to one of
    the *other* classes — the standard symmetric label-noise model.
    """
    if not 0 <= rate <= 1:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    if hin.multilabel:
        raise ValueError("flip_labels supports single-label HINs only")
    rng = ensure_rng(seed)
    labels = hin.label_matrix.copy()
    labeled = np.flatnonzero(labels.any(axis=1))
    n_flip = int(round(rate * labeled.size))
    if n_flip == 0:
        return hin.with_labels(labels)
    victims = rng.choice(labeled, size=n_flip, replace=False)
    q = hin.n_labels
    for idx in victims:
        current = int(np.flatnonzero(labels[idx])[0])
        offset = int(rng.integers(1, q))
        labels[idx] = False
        labels[idx, (current + offset) % q] = True
    return hin.with_labels(labels)


def run_label_noise(
    *, scale: float = 1.0, seed=0, n_trials: int = 3, fraction: float = 0.2
) -> ExperimentReport:
    """T-Mark vs TensorRrCc under symmetric training-label noise.

    The Eq. 12 update folds confident predictions back into the restart
    vector — the classic ICA failure mode is that mislabeled anchors get
    *amplified*.  This runner measures whether the update's low-label
    benefit survives corrupted supervision.
    """
    from repro.core import TensorRrCc
    from repro.datasets.registry import scaled_dblp

    hin = scaled_dblp(scale, seed)
    clean_y = hin.y  # evaluation always uses the true labels
    params = tmark_params("dblp")
    tmark_curve, frozen_curve = [], []
    for rate in LABEL_NOISE_LEVELS:
        tmark_accs, frozen_accs = [], []
        for trial, rng in enumerate(spawn_rngs(seed, n_trials)):
            mask = stratified_fraction_split(clean_y, fraction, rng=rng)
            corrupted = flip_labels(hin, rate, seed=seed * 1000 + trial)
            train = corrupted.masked(mask)
            model = TMark(**params).fit(train)
            tmark_accs.append(
                accuracy(clean_y[~mask], model.predict()[~mask])
            )
            frozen = TensorRrCc(
                alpha=params["alpha"], gamma=params["gamma"]
            ).fit(train)
            frozen_accs.append(
                accuracy(clean_y[~mask], frozen.predict()[~mask])
            )
        tmark_curve.append(float(np.mean(tmark_accs)))
        frozen_curve.append(float(np.mean(frozen_accs)))
    text = format_series(
        {"T-Mark": tmark_curve, "TensorRrCc": frozen_curve},
        LABEL_NOISE_LEVELS,
        title=(
            "Label noise — accuracy vs fraction of mislabeled training "
            "nodes (DBLP, 20% labels; evaluation on true labels)"
        ),
        x_name="flip rate",
    )
    return ExperimentReport(
        "label_noise",
        "Training-label noise: does the Eq. 12 update amplify errors?",
        text,
        data={
            "rates": list(LABEL_NOISE_LEVELS),
            "tmark": tmark_curve,
            "tensorrrcc": frozen_curve,
        },
    )
