"""Registry mapping experiment ids to runners (the DESIGN.md index)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ValidationError
from repro.experiments import runners
from repro.experiments.report import ExperimentReport


@dataclass(frozen=True)
class Experiment:
    """One registered paper artefact."""

    experiment_id: str
    title: str
    runner: Callable[..., ExperimentReport]


_EXPERIMENTS: dict[str, Experiment] = {}


def _register(experiment_id: str, title: str, runner) -> None:
    _EXPERIMENTS[experiment_id] = Experiment(experiment_id, title, runner)


_register("table2", "Top 5 conferences per research area (DBLP)", runners.run_table2)
_register("table3", "Node classification accuracy on DBLP", runners.run_table3)
_register("table4", "Node classification accuracy on Movies", runners.run_table4)
_register("table5", "Top 10 directors per movie genre", runners.run_table5)
_register("table6_7", "The tags in Tagset1 / Tagset2 (NUS)", runners.run_table6_7)
_register("table8", "T-Mark accuracy on NUS link sets", runners.run_table8)
_register("table9_10", "Top-12 tags per class in each tag set", runners.run_table9_10)
_register("table11", "Multi-label Macro-F1 on ACM", runners.run_table11)
_register("fig5", "Relative importance of ACM link types", runners.run_fig5)
_register("fig6", "Accuracy vs alpha on DBLP", runners.run_fig6)
_register("fig7", "Accuracy vs alpha on NUS", runners.run_fig7)
_register("fig8", "Accuracy vs gamma on DBLP", runners.run_fig8)
_register("fig9", "Accuracy vs gamma on NUS", runners.run_fig9)
_register("fig10", "Convergence curves on four datasets", runners.run_fig10)
# Auxiliary experiments beyond the paper's artefacts:
_register("example", "The section 3.2 worked example", runners.run_example)
_register("extensions", "Extension baselines vs T-Mark (DBLP)", runners.run_extensions)
_register("summary", "Calibrated dataset statistics", runners.run_dataset_summary)

from repro.experiments import robustness as _robustness  # noqa: E402

_register(
    "sensitivity",
    "Joint alpha x gamma sensitivity (DBLP)",
    _robustness.run_sensitivity,
)
_register(
    "noise",
    "Robustness to injected useless links (DBLP)",
    _robustness.run_noise_robustness,
)
_register(
    "label_noise",
    "Robustness to mislabeled training nodes (DBLP)",
    _robustness.run_label_noise,
)

from repro.experiments import streaming as _streaming  # noqa: E402

_register(
    "stream",
    "Incremental delta replay with warm reconvergence",
    _streaming.run_stream,
)


def experiment_ids() -> list[str]:
    """All registered experiment ids in paper order."""
    return list(_EXPERIMENTS)


def get_experiment(experiment_id: str) -> Experiment:
    """Look up one experiment; raises on unknown ids."""
    try:
        return _EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValidationError(
            f"unknown experiment {experiment_id!r}; known: {experiment_ids()}"
        ) from None


def run_experiment(experiment_id: str, **kwargs) -> ExperimentReport:
    """Run one registered experiment and return its report."""
    return get_experiment(experiment_id).runner(**kwargs)
