"""The paper's method roster with per-dataset hyper-parameters.

Section 6.5 fixes the T-Mark parameters per dataset: ``alpha = 0.8`` on
DBLP and ``0.9`` elsewhere; ``gamma = 0.6`` on DBLP and ``0.4`` on NUS
(we use 0.4 for Movies/ACM too, matching the paper's "same trend as NUS"
remark).  The ICA-update threshold ``lambda`` is our own knob (the paper
does not report a value); it is tuned once per dataset and recorded
here.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines import EMR, GraphInception, Hcc, HccSS, HighwayNetwork, ICA, WvRNRL
from repro.core import TMark, TensorRrCc
from repro.errors import ValidationError

#: Per-dataset T-Mark hyper-parameters (alpha, gamma from section 6.5;
#: label_threshold tuned per dataset, see module docstring).
TMARK_PARAMS: dict[str, dict[str, float]] = {
    "dblp": {"alpha": 0.8, "gamma": 0.6, "label_threshold": 0.8},
    "movies": {"alpha": 0.9, "gamma": 0.4, "label_threshold": 0.95},
    "nus": {"alpha": 0.9, "gamma": 0.4, "label_threshold": 0.95},
    "acm": {"alpha": 0.9, "gamma": 0.2, "label_threshold": 0.95},
}

#: Fast-mode knobs for the expensive neural / ensemble baselines.
_FAST_EPOCHS = 60
_FULL_EPOCHS = 150


def tmark_params(dataset: str) -> dict[str, float]:
    """The section 6.5 T-Mark parameters for ``dataset``."""
    try:
        return dict(TMARK_PARAMS[dataset])
    except KeyError:
        raise ValidationError(
            f"unknown dataset {dataset!r}; known: {sorted(TMARK_PARAMS)}"
        ) from None


def method_roster(
    dataset: str, *, fast: bool = True
) -> list[tuple[str, Callable[[], object]]]:
    """The nine methods of Tables 3/4/11 as ``(name, factory)`` pairs.

    Order matches the paper's column order.  ``fast=True`` trims the
    neural baselines' epochs and EMR's inner iterations so a full
    9 x 9 x trials grid stays laptop-fast; the comparisons are
    insensitive to this (checked by the harness tests).
    """
    params = tmark_params(dataset)
    epochs = _FAST_EPOCHS if fast else _FULL_EPOCHS
    emr_iterations = 2 if fast else 3
    return [
        ("T-Mark", lambda: TMark(**params)),
        (
            "TensorRrCc",
            lambda: TensorRrCc(alpha=params["alpha"], gamma=params["gamma"]),
        ),
        ("GI", lambda: GraphInception(epochs=epochs)),
        ("HN", lambda: HighwayNetwork(epochs=epochs)),
        ("Hcc", lambda: Hcc()),
        ("Hcc-ss", lambda: HccSS()),
        ("wvRN+RL", lambda: WvRNRL()),
        ("EMR", lambda: EMR(n_iterations=emr_iterations)),
        ("ICA", lambda: ICA()),
    ]
