"""The paper's published numbers, as data, plus shape comparison.

``PAPER_TABLES`` transcribes the evaluation tables of the paper (T-Mark
column and key baselines).  :func:`compare_with_paper` lines a measured
:class:`~repro.experiments.harness.GridResult` up against them and
reports per-cell deltas together with the *shape checks* that a faithful
reproduction must pass (who wins, monotone trends) — the programmatic
version of EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.experiments.harness import GridResult

#: Label fractions shared by all paper tables.
PAPER_FRACTIONS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)

#: Table 3 — node classification accuracy on DBLP.
PAPER_TABLE3: dict[str, tuple[float, ...]] = {
    "T-Mark": (0.928, 0.933, 0.935, 0.935, 0.939, 0.939, 0.940, 0.940, 0.940),
    "TensorRrCc": (0.927, 0.933, 0.935, 0.935, 0.938, 0.938, 0.939, 0.940, 0.940),
    "GI": (0.277, 0.243, 0.267, 0.304, 0.436, 0.410, 0.464, 0.489, 0.575),
    "HN": (0.683, 0.725, 0.753, 0.770, 0.787, 0.790, 0.793, 0.806, 0.803),
    "Hcc": (0.914, 0.924, 0.929, 0.930, 0.932, 0.934, 0.935, 0.935, 0.937),
    "Hcc-ss": (0.917, 0.927, 0.929, 0.929, 0.932, 0.933, 0.934, 0.935, 0.938),
    "wvRN+RL": (0.805, 0.876, 0.880, 0.888, 0.898, 0.901, 0.904, 0.904, 0.908),
    "EMR": (0.789, 0.818, 0.835, 0.847, 0.855, 0.858, 0.863, 0.865, 0.860),
    "ICA": (0.860, 0.919, 0.922, 0.927, 0.928, 0.928, 0.929, 0.933, 0.933),
}

#: Table 4 — node classification accuracy on Movies.
PAPER_TABLE4: dict[str, tuple[float, ...]] = {
    "T-Mark": (0.441, 0.483, 0.511, 0.518, 0.529, 0.546, 0.549, 0.553, 0.560),
    "TensorRrCc": (0.441, 0.483, 0.511, 0.518, 0.529, 0.546, 0.549, 0.553, 0.560),
    "GI": (0.309, 0.297, 0.292, 0.302, 0.348, 0.299, 0.391, 0.376, 0.339),
    "HN": (0.453, 0.483, 0.506, 0.531, 0.543, 0.563, 0.572, 0.579, 0.594),
    "Hcc": (0.435, 0.456, 0.460, 0.461, 0.467, 0.473, 0.478, 0.474, 0.491),
    "Hcc-ss": (0.426, 0.453, 0.458, 0.460, 0.468, 0.471, 0.476, 0.473, 0.486),
    "wvRN+RL": (0.318, 0.318, 0.309, 0.308, 0.309, 0.306, 0.314, 0.300, 0.303),
    "EMR": (0.486, 0.537, 0.569, 0.582, 0.600, 0.613, 0.612, 0.613, 0.629),
    "ICA": (0.203, 0.219, 0.239, 0.238, 0.254, 0.258, 0.257, 0.258, 0.268),
}

#: Table 8 — T-Mark on the two NUS link sets.
PAPER_TABLE8: dict[str, tuple[float, ...]] = {
    "Tagset1": (0.955, 0.954, 0.958, 0.956, 0.959, 0.959, 0.960, 0.959, 0.961),
    "Tagset2": (0.664, 0.672, 0.683, 0.684, 0.682, 0.692, 0.688, 0.686, 0.692),
}

#: Table 11 — Macro-F1 on ACM (multi-label).
PAPER_TABLE11: dict[str, tuple[float, ...]] = {
    "T-Mark": (0.940, 0.966, 0.978, 0.989, 0.992, 0.995, 0.995, 0.995, 0.995),
    "TensorRrCc": (0.940, 0.968, 0.988, 0.993, 0.997, 0.997, 0.997, 0.997, 0.997),
    "GI": (0.220, 0.528, 0.655, 0.725, 0.734, 0.816, 0.821, 0.659, 0.658),
    "HN": (0.618, 0.729, 0.722, 0.739, 0.756, 0.756, 0.758, 0.773, 0.785),
    "Hcc": (0.430, 0.478, 0.559, 0.855, 0.972, 0.991, 0.995, 0.995, 0.996),
    "Hcc-ss": (0.569, 0.912, 0.953, 0.988, 0.995, 0.995, 0.996, 0.995, 0.998),
    "wvRN+RL": (0.105, 0.115, 0.157, 0.173, 0.180, 0.180, 0.180, 0.180, 0.179),
    "EMR": (0.265, 0.340, 0.377, 0.408, 0.433, 0.434, 0.469, 0.460, 0.451),
    "ICA": (0.049, 0.048, 0.105, 0.194, 0.570, 0.860, 0.947, 0.989, 0.987),
}

#: Registry: experiment id -> the paper's grid.
PAPER_GRIDS: dict[str, dict[str, tuple[float, ...]]] = {
    "table3": PAPER_TABLE3,
    "table4": PAPER_TABLE4,
    "table8": PAPER_TABLE8,
    "table11": PAPER_TABLE11,
}


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative expectation and whether the measurement meets it."""

    description: str
    passed: bool


@dataclass
class PaperComparison:
    """Outcome of lining a measured grid up against the paper's."""

    experiment_id: str
    #: method -> list of (fraction, paper, measured, delta); only the
    #: fractions present in both grids appear.
    deltas: dict[str, list[tuple[float, float, float, float]]]
    checks: list[ShapeCheck] = field(default_factory=list)

    @property
    def all_shapes_hold(self) -> bool:
        """True when every qualitative check passed."""
        return all(check.passed for check in self.checks)

    def mean_absolute_delta(self, method: str) -> float:
        """Mean |paper - measured| for one method."""
        rows = self.deltas[method]
        return float(np.mean([abs(delta) for *_, delta in rows]))

    def __str__(self) -> str:
        lines = [f"paper comparison — {self.experiment_id}"]
        for method, rows in self.deltas.items():
            mad = self.mean_absolute_delta(method)
            lines.append(f"  {method}: mean |paper - measured| = {mad:.3f}")
        for check in self.checks:
            status = "ok " if check.passed else "FAIL"
            lines.append(f"  [{status}] {check.description}")
        return "\n".join(lines)


def compare_with_paper(experiment_id: str, grid: GridResult) -> PaperComparison:
    """Compare a measured grid against the paper's published numbers.

    Only methods and fractions present on both sides are compared; the
    qualitative shape checks are derived from the paper grid itself
    (winner identity at the lowest and highest shared fraction, and the
    leader's upward trend).
    """
    if experiment_id not in PAPER_GRIDS:
        raise ValidationError(
            f"no paper grid for {experiment_id!r}; known: {sorted(PAPER_GRIDS)}"
        )
    paper = PAPER_GRIDS[experiment_id]
    shared_methods = [m for m in grid.method_names if m in paper]
    if not shared_methods:
        raise ValidationError("the measured grid shares no methods with the paper's")
    shared_fractions = [
        (g_idx, PAPER_FRACTIONS.index(f))
        for g_idx, f in enumerate(grid.fractions)
        if f in PAPER_FRACTIONS
    ]
    if not shared_fractions:
        raise ValidationError("the measured grid shares no fractions with the paper's")

    deltas: dict[str, list[tuple[float, float, float, float]]] = {}
    for method in shared_methods:
        rows = []
        for g_idx, p_idx in shared_fractions:
            measured = grid.cells[method][g_idx].mean
            published = paper[method][p_idx]
            rows.append(
                (PAPER_FRACTIONS[p_idx], published, measured, measured - published)
            )
        deltas[method] = rows

    checks: list[ShapeCheck] = []
    first_g, first_p = shared_fractions[0]
    last_g, last_p = shared_fractions[-1]

    paper_winner_low = max(shared_methods, key=lambda m: paper[m][first_p])
    measured_low = {m: grid.cells[m][first_g].mean for m in shared_methods}
    winner_low = max(measured_low, key=measured_low.get)
    checks.append(
        ShapeCheck(
            f"winner at fraction {PAPER_FRACTIONS[first_p]} is "
            f"{paper_winner_low} (measured winner: {winner_low})",
            winner_low == paper_winner_low
            or measured_low[paper_winner_low] >= measured_low[winner_low] - 0.02,
        )
    )

    leader = paper_winner_low
    leader_rows = deltas[leader]
    checks.append(
        ShapeCheck(
            f"{leader} improves (or holds) from the lowest to the highest fraction",
            leader_rows[-1][2] >= leader_rows[0][2] - 0.02,
        )
    )

    paper_last = {m: paper[m][last_p] for m in shared_methods}
    paper_weakest = min(paper_last, key=paper_last.get)
    measured_last = {m: grid.cells[m][last_g].mean for m in shared_methods}
    checks.append(
        ShapeCheck(
            f"the paper's weakest method at the top fraction ({paper_weakest}) "
            "does not win the measured grid there",
            measured_last[paper_weakest]
            <= max(measured_last.values()),
        )
    )
    return PaperComparison(experiment_id=experiment_id, deltas=deltas, checks=checks)
