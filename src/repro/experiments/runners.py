"""One runner per paper table / figure.

Each ``run_*`` function regenerates the corresponding artefact on the
calibrated synthetic datasets and returns an
:class:`~repro.experiments.report.ExperimentReport` whose ``data`` field
carries the structured results the benchmark suite asserts against.

Common parameters
-----------------
scale:
    Multiplier on dataset sizes (1.0 = the calibrated defaults).
seed:
    Root RNG seed; every runner is deterministic given it.
n_trials:
    Random splits per grid cell (the paper uses 10; default 3 keeps the
    full grids fast — pass 10 to match the paper's protocol exactly).
fractions:
    Label fractions; default is the paper's {0.1, ..., 0.9}.
"""

from __future__ import annotations

import numpy as np

from repro.core import TMark
from repro.datasets.dblp import DBLP_AREAS
from repro.datasets.movies import MOVIE_GENRES
from repro.datasets.nus import NUS_CLASSES, TAGSET1, TAGSET2
from repro.experiments.harness import PAPER_FRACTIONS, run_grid
from repro.experiments.methods import method_roster, tmark_params
from repro.experiments.report import ExperimentReport
from repro.experiments.tables import format_grid, format_ranking_table, format_series
from repro.hin.stats import relation_homophily
from repro.ml.metrics import accuracy
from repro.ml.splits import stratified_fraction_split
from repro.utils.rng import ensure_rng


# ----------------------------------------------------------------------
# Dataset factories (single scale knob, shared with user code)
# ----------------------------------------------------------------------
# isort: split
from repro.datasets.registry import (  # noqa: E402 (grouped with usage)
    scaled_acm as _scaled_acm,
    scaled_dblp as _scaled_dblp,
    scaled_movies as _scaled_movies,
    scaled_nus as _registry_scaled_nus,
)


def _scaled_nus(tagset: str, scale: float, seed):
    return _registry_scaled_nus(scale, seed, tagset=tagset)


def _fit_tmark(
    hin, dataset: str, fraction: float, seed, *, operators=None, **overrides
) -> TMark:
    """Fit T-Mark with the dataset's section-6.5 parameters on a split.

    ``operators`` optionally passes a precomputed triple from
    :func:`~repro.core.tmark.build_operators` straight through to
    :meth:`TMark.fit`, for runners that fit the same network repeatedly.
    """
    params = tmark_params(dataset)
    params.update(overrides)
    rng = ensure_rng(seed)
    if hin.multilabel:
        from repro.ml.splits import multilabel_fraction_split

        mask = multilabel_fraction_split(hin.label_matrix, fraction, rng=rng)
    else:
        mask = stratified_fraction_split(hin.y, fraction, rng=rng)
    return TMark(**params).fit(hin.masked(mask), operators=operators)


# ----------------------------------------------------------------------
# Table 2 — top-5 conferences per research area (DBLP link ranking)
# ----------------------------------------------------------------------
def run_table2(*, scale: float = 1.0, seed=0, fraction: float = 0.3) -> ExperimentReport:
    """Table 2: T-Mark's per-area conference ranking on DBLP."""
    hin = _scaled_dblp(scale, seed)
    model = _fit_tmark(hin, "dblp", fraction, seed)
    conference_areas = hin.metadata["conference_areas"]
    rankings: dict[str, list[str]] = {}
    hits = 0
    for area in DBLP_AREAS:
        top5 = model.result_.top_relations(area, count=5)
        rankings[area] = top5
        hits += sum(1 for conf in top5 if conference_areas[conf] == area)
    precision = hits / (5 * len(DBLP_AREAS))
    text = format_ranking_table(
        rankings,
        title="Table 2 — top-5 conferences per research area (T-Mark ranking)",
    )
    text += f"\n\ntop-5 area precision vs ground truth: {precision:.2f}"
    return ExperimentReport(
        "table2",
        "Top 5 conferences of each research area given by T-Mark",
        text,
        data={
            "rankings": rankings,
            "precision": precision,
            "conference_areas": conference_areas,
        },
    )


# ----------------------------------------------------------------------
# Tables 3 / 4 / 11 — the method x fraction grids
# ----------------------------------------------------------------------
def _grid_report(
    experiment_id: str,
    title: str,
    hin,
    dataset: str,
    *,
    seed,
    n_trials: int,
    fractions,
    fast: bool,
    metric: str = "accuracy",
    with_std: bool = False,
    workers: int = 1,
) -> ExperimentReport:
    fractions = PAPER_FRACTIONS if fractions is None else tuple(fractions)
    methods = method_roster(dataset, fast=fast)
    grid = run_grid(
        hin, methods, fractions, n_trials=n_trials, seed=seed, metric=metric,
        workers=workers,
    )
    text = format_grid(grid, title=title, with_std=with_std)
    return ExperimentReport(experiment_id, title, text, data={"grid": grid})


def run_table3(
    *, scale: float = 1.0, seed=0, n_trials: int = 3, fractions=None,
    fast: bool = True, with_std: bool = False, workers: int = 1,
) -> ExperimentReport:
    """Table 3: node classification accuracy on DBLP, 9 methods."""
    hin = _scaled_dblp(scale, seed)
    return _grid_report(
        "table3",
        "Table 3 — node classification accuracy on DBLP",
        hin,
        "dblp",
        seed=seed,
        n_trials=n_trials,
        fractions=fractions,
        fast=fast,
        with_std=with_std,
        workers=workers,
    )


def run_table4(
    *, scale: float = 1.0, seed=0, n_trials: int = 3, fractions=None,
    fast: bool = True, with_std: bool = False, workers: int = 1,
) -> ExperimentReport:
    """Table 4: node classification accuracy on Movies, 9 methods."""
    hin = _scaled_movies(scale, seed)
    return _grid_report(
        "table4",
        "Table 4 — node classification accuracy on Movies",
        hin,
        "movies",
        seed=seed,
        n_trials=n_trials,
        fractions=fractions,
        fast=fast,
        with_std=with_std,
        workers=workers,
    )


def run_table11(
    *, scale: float = 1.0, seed=0, n_trials: int = 3, fractions=None,
    fast: bool = True, with_std: bool = False, workers: int = 1,
) -> ExperimentReport:
    """Table 11: multi-label Macro-F1 on ACM, 9 methods."""
    hin = _scaled_acm(scale, seed)
    return _grid_report(
        "table11",
        "Table 11 — node classification Macro-F1 on ACM (multi-label)",
        hin,
        "acm",
        seed=seed,
        n_trials=n_trials,
        fractions=fractions,
        fast=fast,
        metric="multilabel_macro_f1",
        with_std=with_std,
        workers=workers,
    )


# ----------------------------------------------------------------------
# Table 5 — top-10 directors per movie genre
# ----------------------------------------------------------------------
def run_table5(*, scale: float = 1.0, seed=0, fraction: float = 0.3) -> ExperimentReport:
    """Table 5: T-Mark's per-genre director ranking on Movies."""
    hin = _scaled_movies(scale, seed)
    model = _fit_tmark(hin, "movies", fraction, seed)
    director_genres = hin.metadata["director_genres"]
    rankings: dict[str, list[str]] = {}
    hits = total = 0
    for genre in MOVIE_GENRES:
        top10 = model.result_.top_relations(genre, count=10)
        rankings[genre] = top10
        hits += sum(1 for d in top10 if director_genres[d] == genre)
        total += len(top10)
    precision = hits / total
    text = format_ranking_table(
        rankings, title="Table 5 — top-10 directors per movie genre (T-Mark ranking)"
    )
    text += f"\n\ntop-10 genre precision vs ground truth: {precision:.2f}"
    return ExperimentReport(
        "table5",
        "Top 10 directors of each movie genre",
        text,
        data={
            "rankings": rankings,
            "precision": precision,
            "director_genres": director_genres,
        },
    )


# ----------------------------------------------------------------------
# Tables 6 / 7 — the two NUS tag sets
# ----------------------------------------------------------------------
def run_table6_7(*, scale: float = 1.0, seed=0) -> ExperimentReport:
    """Tables 6 & 7: the Tagset1/Tagset2 link sets with their statistics."""
    hin1 = _scaled_nus("tagset1", scale, seed)
    hin2 = _scaled_nus("tagset2", scale, seed)
    lines = ["Table 6 — Tagset1 (relevance-selected tags):"]
    stats1 = {
        tag: relation_homophily(hin1, tag) for tag in hin1.relation_names
    }
    lines.append(", ".join(TAGSET1))
    lines.append(
        f"mean link homophily: {np.nanmean(list(stats1.values())):.3f}"
    )
    lines.append("")
    lines.append("Table 7 — Tagset2 (frequency-selected tags):")
    stats2 = {
        tag: relation_homophily(hin2, tag) for tag in hin2.relation_names
    }
    lines.append(", ".join(TAGSET2))
    lines.append(
        f"mean link homophily: {np.nanmean(list(stats2.values())):.3f}"
    )
    return ExperimentReport(
        "table6_7",
        "The tags in Tagset1 and Tagset2",
        "\n".join(lines),
        data={"tagset1_homophily": stats1, "tagset2_homophily": stats2},
    )


# ----------------------------------------------------------------------
# Table 8 — T-Mark accuracy on the two NUS link sets
# ----------------------------------------------------------------------
def run_table8(
    *, scale: float = 1.0, seed=0, n_trials: int = 3, fractions=None,
    workers: int = 1,
) -> ExperimentReport:
    """Table 8: T-Mark accuracy, Tagset1 HIN vs Tagset2 HIN."""
    fractions = PAPER_FRACTIONS if fractions is None else tuple(fractions)
    params = tmark_params("nus")
    methods = [
        ("Tagset1", lambda: TMark(**params)),
        ("Tagset2", lambda: TMark(**params)),
    ]
    grids = {}
    for name, factory in methods:
        hin = _scaled_nus(name.lower(), scale, seed)
        grids[name] = run_grid(
            hin, [(name, factory)], fractions, n_trials=n_trials, seed=seed,
            workers=workers,
        )
    merged = grids["Tagset1"]
    merged.cells["Tagset2"] = grids["Tagset2"].cells["Tagset2"]
    text = format_grid(
        merged, title="Table 8 — T-Mark accuracy on NUS: Tagset1 vs Tagset2"
    )
    return ExperimentReport(
        "table8",
        "The node classification accuracy on NUS link sets",
        text,
        data={"grid": merged},
    )


# ----------------------------------------------------------------------
# Tables 9 / 10 — top-12 tags per class in each tag set
# ----------------------------------------------------------------------
def run_table9_10(*, scale: float = 1.0, seed=0, fraction: float = 0.3) -> ExperimentReport:
    """Tables 9 & 10: per-class top-12 tag rankings in each tag set."""
    sections = []
    data = {}
    for table, tagset in (("Table 9", "tagset1"), ("Table 10", "tagset2")):
        hin = _scaled_nus(tagset, scale, seed)
        model = _fit_tmark(hin, "nus", fraction, seed)
        rankings = {
            cls: model.result_.top_relations(cls, count=12) for cls in NUS_CLASSES
        }
        overlap = len(set(rankings[NUS_CLASSES[0]]) & set(rankings[NUS_CLASSES[1]]))
        sections.append(
            format_ranking_table(
                rankings, title=f"{table} — top-12 tags in {tagset} given by T-Mark"
            )
            + f"\nscene/object top-12 overlap: {overlap}/12"
        )
        data[tagset] = {"rankings": rankings, "overlap": overlap}
        if tagset == "tagset1":
            data[tagset]["tag_classes"] = hin.metadata["tag_classes"]
    return ExperimentReport(
        "table9_10",
        "Top-12 tags per class in Tagset1 and Tagset2",
        "\n\n".join(sections),
        data=data,
    )


# ----------------------------------------------------------------------
# Fig. 5 — relative importance of ACM link types
# ----------------------------------------------------------------------
def run_fig5(*, scale: float = 1.0, seed=0, fraction: float = 0.5) -> ExperimentReport:
    """Fig. 5: per-class relative importance of the six ACM link types."""
    hin = _scaled_acm(scale, seed)
    model = _fit_tmark(hin, "acm", fraction, seed)
    scores = model.result_.relation_scores  # (m, q)
    series = {
        label: scores[:, c].tolist() for c, label in enumerate(hin.label_names)
    }
    xs = list(range(hin.n_relations))
    text = format_series(
        series,
        xs,
        title=(
            "Fig. 5 — relative importance of ACM link types per class\n"
            "x-axis order: " + ", ".join(hin.relation_names)
        ),
        x_name="link idx",
    )
    mean_importance = dict(
        zip(hin.relation_names, scores.mean(axis=1).round(6).tolist())
    )
    text += "\nmean importance: " + ", ".join(
        f"{k}={v:.4f}" for k, v in mean_importance.items()
    )
    return ExperimentReport(
        "fig5",
        "The relative importance of link types on ACM given by T-Mark",
        text,
        data={
            "relation_names": list(hin.relation_names),
            "series": series,
            "mean_importance": mean_importance,
        },
    )


# ----------------------------------------------------------------------
# Figs. 6-9 — parameter sweeps
# ----------------------------------------------------------------------
ALPHA_SWEEP: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99)
GAMMA_SWEEP: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def _parameter_sweep(
    hin,
    dataset: str,
    parameter: str,
    values,
    *,
    fraction: float,
    n_trials: int,
    seed,
) -> list[float]:
    """Mean T-Mark accuracy for each value of one hyper-parameter."""
    from repro.core.tmark import build_operators
    from repro.utils.rng import spawn_rngs

    base = tmark_params(dataset)
    y = hin.y
    # O/R/W depend only on structure+features: build once for the sweep.
    # A probe model resolves the similarity settings the sweep will use
    # (the swept parameter is a chain hyper-parameter, never a W knob).
    probe = TMark(**base)
    operators = build_operators(
        hin,
        similarity_top_k=probe.similarity_top_k,
        similarity_metric=probe.similarity_metric,
    )
    means = []
    for value in values:
        params = dict(base)
        params[parameter] = value
        rngs = spawn_rngs(seed, n_trials)
        accs = []
        for rng in rngs:
            mask = stratified_fraction_split(y, fraction, rng=rng)
            model = TMark(**params).fit(hin.masked(mask), operators=operators)
            accs.append(accuracy(y[~mask], model.predict()[~mask]))
        means.append(float(np.mean(accs)))
    return means


def run_fig6(
    *, scale: float = 1.0, seed=0, n_trials: int = 3, fraction: float = 0.3
) -> ExperimentReport:
    """Fig. 6: T-Mark accuracy vs alpha on DBLP."""
    hin = _scaled_dblp(scale, seed)
    means = _parameter_sweep(
        hin, "dblp", "alpha", ALPHA_SWEEP, fraction=fraction, n_trials=n_trials, seed=seed
    )
    text = format_series(
        {"accuracy": means}, ALPHA_SWEEP, title="Fig. 6 — accuracy vs alpha on DBLP", x_name="alpha"
    )
    return ExperimentReport(
        "fig6", "The accuracy of T-Mark vs parameter alpha on DBLP", text,
        data={"alphas": list(ALPHA_SWEEP), "accuracy": means},
    )


def run_fig7(
    *, scale: float = 1.0, seed=0, n_trials: int = 3, fraction: float = 0.3
) -> ExperimentReport:
    """Fig. 7: T-Mark accuracy vs alpha on NUS (Tagset1)."""
    hin = _scaled_nus("tagset1", scale, seed)
    means = _parameter_sweep(
        hin, "nus", "alpha", ALPHA_SWEEP, fraction=fraction, n_trials=n_trials, seed=seed
    )
    text = format_series(
        {"accuracy": means}, ALPHA_SWEEP, title="Fig. 7 — accuracy vs alpha on NUS", x_name="alpha"
    )
    return ExperimentReport(
        "fig7", "The accuracy of T-Mark vs parameter alpha on NUS", text,
        data={"alphas": list(ALPHA_SWEEP), "accuracy": means},
    )


def run_fig8(
    *, scale: float = 1.0, seed=0, n_trials: int = 3, fraction: float = 0.3
) -> ExperimentReport:
    """Fig. 8: T-Mark accuracy vs gamma on DBLP."""
    hin = _scaled_dblp(scale, seed)
    means = _parameter_sweep(
        hin, "dblp", "gamma", GAMMA_SWEEP, fraction=fraction, n_trials=n_trials, seed=seed
    )
    text = format_series(
        {"accuracy": means}, GAMMA_SWEEP, title="Fig. 8 — accuracy vs gamma on DBLP", x_name="gamma"
    )
    return ExperimentReport(
        "fig8", "The accuracy of T-Mark vs parameter gamma on DBLP", text,
        data={"gammas": list(GAMMA_SWEEP), "accuracy": means},
    )


def run_fig9(
    *, scale: float = 1.0, seed=0, n_trials: int = 3, fraction: float = 0.3
) -> ExperimentReport:
    """Fig. 9: T-Mark accuracy vs gamma on NUS (Tagset1)."""
    hin = _scaled_nus("tagset1", scale, seed)
    means = _parameter_sweep(
        hin, "nus", "gamma", GAMMA_SWEEP, fraction=fraction, n_trials=n_trials, seed=seed
    )
    text = format_series(
        {"accuracy": means}, GAMMA_SWEEP, title="Fig. 9 — accuracy vs gamma on NUS", x_name="gamma"
    )
    return ExperimentReport(
        "fig9", "The accuracy of T-Mark vs parameter gamma on NUS", text,
        data={"gammas": list(GAMMA_SWEEP), "accuracy": means},
    )


# ----------------------------------------------------------------------
# Fig. 10 — convergence curves on the four datasets
# ----------------------------------------------------------------------
def run_fig10(*, scale: float = 1.0, seed=0, fraction: float = 0.3) -> ExperimentReport:
    """Fig. 10: residual rho_t vs iteration on all four datasets."""
    datasets = {
        "DBLP": (_scaled_dblp(scale, seed), "dblp"),
        "Movies": (_scaled_movies(scale, seed), "movies"),
        "NUS": (_scaled_nus("tagset1", scale, seed), "nus"),
        "ACM": (_scaled_acm(scale, seed), "acm"),
    }
    curves: dict[str, list[float]] = {}
    converged: dict[str, bool] = {}
    for name, (hin, dataset) in datasets.items():
        model = _fit_tmark(hin, dataset, fraction, seed)
        # Plot the slowest class chain, as the paper's worst case.
        history = max(model.result_.histories, key=lambda h: h.n_iterations)
        curves[name] = list(history.residuals)
        converged[name] = all(h.converged for h in model.result_.histories)
    depth = max(len(c) for c in curves.values())
    xs = list(range(1, depth + 1))
    padded = {
        name: curve + [float("nan")] * (depth - len(curve))
        for name, curve in curves.items()
    }
    text = format_series(
        padded, xs, title="Fig. 10 — convergence (rho_t per iteration)", x_name="iter"
    )
    text += "\nall chains converged: " + ", ".join(
        f"{k}={v}" for k, v in converged.items()
    )
    return ExperimentReport(
        "fig10",
        "The convergence curve of T-Mark on four datasets",
        text,
        data={"curves": curves, "converged": converged},
    )


# ----------------------------------------------------------------------
# Auxiliary experiments (beyond the paper's artefacts)
# ----------------------------------------------------------------------
def run_example(
    *, scale: float = 1.0, seed=0, solver: str | None = None,
    store: str | None = None, shards: int | None = None,
) -> ExperimentReport:
    """The section 3.2 worked example: classify p3/p4 and rank relations.

    The smallest end-to-end exercise of the full pipeline (4 nodes,
    3 relations, 2 classes) — the CI observability smoke test traces
    this experiment, and the solver smoke compares its ``--solver
    anderson`` trace against the plain one.  ``scale`` and ``seed`` are
    accepted for CLI uniformity; the example is fixed and T-Mark is
    deterministic.

    ``store`` routes the fit through the out-of-core tier instead: the
    example HIN is saved into (or validated against) the
    :class:`~repro.ooc.store.GraphStore` at that directory and fitted
    with :func:`~repro.ooc.fit.fit_from_store` — the CI smoke that the
    store-backed path stays argmax-identical to the in-memory one.

    ``shards`` runs the fit sharded across fork workers (see
    :mod:`repro.shard`) — the CI shard-invariance smoke compares this
    experiment's sharded trace and report against the serial ones.
    """
    del scale, seed
    from repro.datasets.example import EXAMPLE_GROUND_TRUTH, make_worked_example

    hin = make_worked_example()
    if store is not None:
        import os

        from repro.ooc import GraphStore, fit_from_store

        if os.path.exists(os.path.join(store, "manifest.json")):
            graph_store = GraphStore.open(store)
        else:
            graph_store = GraphStore.save(hin, store)
        model = fit_from_store(
            graph_store, TMark(alpha=0.8, gamma=0.5), solver=solver,
            shards=shards,
        )
    else:
        model = TMark(alpha=0.8, gamma=0.5).fit(
            hin, solver=solver, shards=shards
        )
    predicted = {
        name: hin.label_names[model.predict()[idx]]
        for idx, name in enumerate(hin.node_names)
        if name in EXAMPLE_GROUND_TRUTH
    }
    correct = sum(
        predicted[name] == truth for name, truth in EXAMPLE_GROUND_TRUTH.items()
    )
    rankings = {
        label: model.result_.top_relations(label, count=hin.n_relations)
        for label in hin.label_names
    }
    lines = ["Worked example (section 3.2) — T-Mark on 4 publications"]
    for name, truth in EXAMPLE_GROUND_TRUTH.items():
        lines.append(f"{name}: predicted {predicted[name]}, ground truth {truth}")
    lines.append(f"correct: {correct}/{len(EXAMPLE_GROUND_TRUTH)}")
    lines.append("")
    lines.append(
        format_ranking_table(rankings, title="relation importance per class")
    )
    return ExperimentReport(
        "example",
        "The section 3.2 worked example",
        "\n".join(lines),
        data={
            "predicted": predicted,
            "ground_truth": dict(EXAMPLE_GROUND_TRUTH),
            "rankings": rankings,
            "correct": correct,
        },
    )



def run_extensions(
    *, scale: float = 1.0, seed=0, n_trials: int = 3, fractions=None,
    workers: int = 1,
) -> ExperimentReport:
    """Extension baselines vs T-Mark on DBLP.

    Compares the methods this library adds beyond the paper's roster —
    ZooBP [15] (linearised belief propagation), GNetMine [35] (the
    graph-regularised method behind the DBLP benchmark itself),
    RankClass [16] (ranking-based classification with class-conditional
    relation weights) and WeightedWvRN (homophily-estimated relation
    weights) — against wvRN+RL and T-Mark.
    """
    from repro.baselines import GNetMine, RankClass, WeightedWvRN, WvRNRL, ZooBP
    from repro.experiments.methods import tmark_params

    fractions = (0.1, 0.3, 0.5, 0.7, 0.9) if fractions is None else tuple(fractions)
    hin = _scaled_dblp(scale, seed)
    params = tmark_params("dblp")
    methods = [
        ("T-Mark", lambda: TMark(**params)),
        ("wvRN+RL", WvRNRL),
        ("WeightedWvRN", WeightedWvRN),
        ("ZooBP", ZooBP),
        ("GNetMine", GNetMine),
        ("RankClass", RankClass),
    ]
    grid = run_grid(hin, methods, fractions, n_trials=n_trials, seed=seed)
    title = "Extensions — ZooBP / GNetMine / WeightedWvRN vs T-Mark on DBLP"
    text = format_grid(grid, title=title)
    return ExperimentReport("extensions", title, text, data={"grid": grid})


def run_dataset_summary(*, scale: float = 1.0, seed=0) -> ExperimentReport:
    """Structural statistics of all four calibrated datasets.

    The generator-calibration companion to docs/datasets.md: node/link
    counts, per-relation density and homophily for each dataset at the
    requested scale.
    """
    from repro.hin.stats import hin_summary

    datasets = {
        "DBLP": _scaled_dblp(scale, seed),
        "Movies": _scaled_movies(scale, seed),
        "NUS-Tagset1": _scaled_nus("tagset1", scale, seed),
        "NUS-Tagset2": _scaled_nus("tagset2", scale, seed),
        "ACM": _scaled_acm(scale, seed),
    }
    sections = []
    data = {}
    for name, hin in datasets.items():
        summary = hin_summary(hin)
        sections.append(f"--- {name}\n{summary}")
        homophilies = [
            rel.homophily for rel in summary.relations if rel.homophily == rel.homophily
        ]
        data[name] = {
            "n_nodes": summary.n_nodes,
            "n_relations": summary.n_relations,
            "n_links": summary.n_links,
            "mean_homophily": float(np.mean(homophilies)) if homophilies else None,
        }
    title = "Dataset summary — calibrated generator statistics"
    return ExperimentReport("summary", title, "\n\n".join(sections), data=data)
