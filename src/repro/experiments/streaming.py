"""The ``stream`` experiment: delta replay with warm reconvergence.

Not a paper artefact — a demonstration of the :mod:`repro.stream`
subsystem on a synthetic evolving HIN.  A seed graph plus a generated
(or user-supplied) delta journal is replayed through a
:class:`~repro.stream.StreamingSession`; the report shows, per batch,
the delta mix, the operator-patch cost and the iterations the warm
chains needed to reconverge, and closes with the exactness check: the
final streamed state must agree with a cold fit on the final graph.

The ``stream`` CLI distinguishes its failure modes by exit code (the
serving smoke and CI gates branch on them):

* :data:`EXIT_DIVERGED` (2) — the exactness check failed: streamed and
  cold argmax predictions differ on the final graph.
* :data:`EXIT_UNHEALTHY` (4) — every prediction agrees but at least one
  reconvergence surfaced a non-``healthy``
  :class:`~repro.obs.health.ChainHealth` status (mirrors the ``health``
  CLI's exit 4).
* :data:`EXIT_UNREADABLE` (5) — a ``--journal`` / ``--hin`` input file
  is missing or malformed.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.tmark import TMark
from repro.datasets.synthetic import RelationSpec, make_synthetic_hin
from repro.errors import ValidationError
from repro.experiments.report import ExperimentReport
from repro.hin.graph import HIN
from repro.obs.health import worst_status
from repro.stream import DeltaLog, StreamingSession, synthetic_delta_log

#: ``stream`` CLI exit codes (documented in docs/api.md).
EXIT_OK = 0
EXIT_DIVERGED = 2
EXIT_UNHEALTHY = 4
EXIT_UNREADABLE = 5

#: Streaming model configuration.  ``update_labels=False`` keeps the
#: chain a contraction with one fixed point, so the warm/cold agreement
#: check at the end is well-defined.
MODEL_PARAMS = dict(alpha=0.85, gamma=0.4, update_labels=False)


def make_stream_seed_hin(*, scale: float = 1.0, seed=0) -> HIN:
    """The seed graph of the stream experiment (labels on 40% of nodes)."""
    n_nodes = max(40, int(round(120 * scale)))
    label_names = [f"c{c}" for c in range(4)]
    hin = make_synthetic_hin(
        n_nodes,
        label_names,
        [
            RelationSpec("cites", n_links=3 * n_nodes, homophily=0.85),
            RelationSpec("co_author", n_links=2 * n_nodes, homophily=0.75),
            RelationSpec("venue", n_links=n_nodes, homophily=0.6),
        ],
        seed=seed,
        metadata={"dataset": "stream-synthetic"},
    )
    rng = np.random.default_rng(seed)
    return hin.masked(rng.random(hin.n_nodes) < 0.4)


def run_stream(
    *,
    scale: float = 1.0,
    seed=0,
    n_deltas: int = 50,
    batch_size: int = 10,
    seed_hin: HIN | None = None,
    log: DeltaLog | None = None,
    solver: str | None = None,
) -> ExperimentReport:
    """Replay a delta journal through a streaming session and report.

    ``seed_hin`` / ``log`` override the synthetic defaults (the CLI
    passes loaded files through here).  ``solver`` selects the
    fixed-point solver for every fit in the replay — the seed fit, the
    per-batch reconvergences and the cold reference fit alike, so the
    exactness check compares like with like.
    """
    hin = make_stream_seed_hin(scale=scale, seed=seed) if seed_hin is None else seed_hin
    if log is None:
        log = synthetic_delta_log(
            hin, n_deltas, batch_size=batch_size, seed=None if seed is None else seed + 1
        )

    session = StreamingSession(hin, TMark(**MODEL_PARAMS))
    started = time.perf_counter()
    session.fit(solver=solver)
    cold_seed_seconds = time.perf_counter() - started
    updates = session.replay(log, solver=solver)

    cold = TMark(**MODEL_PARAMS)
    started = time.perf_counter()
    cold.fit(session.hin, solver=solver)
    cold_final_seconds = time.perf_counter() - started
    max_divergence = float(
        np.max(np.abs(session.result.node_scores - cold.result_.node_scores))
    )
    predictions_agree = bool(
        np.array_equal(
            np.argmax(session.result.node_scores, axis=1),
            np.argmax(cold.result_.node_scores, axis=1),
        )
    )
    cold_iterations = max(h.n_iterations for h in cold.result_.histories)

    header = (
        "batch".rjust(5)
        + "deltas".rjust(8)
        + "new nodes".rjust(11)
        + "iters".rjust(7)
        + "patch ms".rjust(10)
        + "refit ms".rjust(10)
    )
    lines = [
        f"Streaming replay — {hin.n_nodes} seed nodes, {len(log)} deltas "
        f"in {log.n_batches} batches",
        f"seed fit: {cold_seed_seconds * 1e3:.1f} ms (cold)",
        "",
        header,
        "-" * len(header),
    ]
    for update in updates:
        lines.append(
            f"{update.batch_index:5d}"
            + f"{update.n_deltas:8d}"
            + f"{update.n_new_nodes:11d}"
            + f"{update.iterations:7d}"
            + f"{update.apply_seconds * 1e3:10.1f}"
            + f"{update.fit_seconds * 1e3:10.1f}"
        )
    total_stream = sum(u.apply_seconds + u.fit_seconds for u in updates)
    lines += [
        "",
        f"final graph: {session.hin.n_nodes} nodes; streamed updates took "
        f"{total_stream * 1e3:.1f} ms total",
        f"cold fit on final graph: {cold_final_seconds * 1e3:.1f} ms, "
        f"{cold_iterations} iterations",
        f"exactness: max |x_stream - x_cold| = {max_divergence:.2e}; "
        f"predictions {'agree' if predictions_agree else 'DIVERGE'}",
    ]
    return ExperimentReport(
        "stream",
        "Incremental delta replay with warm reconvergence",
        "\n".join(lines),
        data={
            "n_seed_nodes": hin.n_nodes,
            "n_final_nodes": session.hin.n_nodes,
            "n_deltas": len(log),
            "n_batches": log.n_batches,
            "updates": [
                {
                    "batch_index": u.batch_index,
                    "n_deltas": u.n_deltas,
                    "op_counts": u.op_counts,
                    "n_new_nodes": u.n_new_nodes,
                    "iterations": u.iterations,
                    "converged": u.converged,
                    "warm": u.warm,
                    "apply_seconds": u.apply_seconds,
                    "fit_seconds": u.fit_seconds,
                    "worst_health": u.worst_health,
                }
                for u in updates
            ],
            "cold_iterations": cold_iterations,
            "max_divergence": max_divergence,
            "predictions_agree": predictions_agree,
            "worst_health": worst_status(u.worst_health for u in updates),
        },
    )


def build_streaming_session(
    *,
    hin_path=None,
    result_path=None,
    scale: float = 1.0,
    seed=0,
    solver: str | None = None,
    model: TMark | None = None,
) -> StreamingSession:
    """Build a fitted :class:`StreamingSession` — the serving entry hook.

    The seed graph comes from ``hin_path`` (a ``save_hin`` archive) or
    the synthetic stream workload at ``scale``/``seed``.  With
    ``result_path`` (a persisted :func:`~repro.core.persistence.save_result`
    archive) the session resumes from the saved stationary state — no
    refit, the snapshot serves immediately; otherwise the session is
    cold-fitted here (under ``solver`` when given).  Raises
    :class:`~repro.errors.ValidationError` for unreadable inputs — the
    CLIs map that to :data:`EXIT_UNREADABLE`.
    """
    from repro.hin.io import load_hin

    if hin_path:
        seed_hin = _load_input(load_hin, hin_path, "HIN archive")
    else:
        seed_hin = make_stream_seed_hin(scale=scale, seed=seed)
    model = TMark(**MODEL_PARAMS) if model is None else model
    if result_path:
        from repro.core.persistence import load_result

        result = _load_input(load_result, result_path, "result archive")
        return StreamingSession.resume(seed_hin, result, model)
    session = StreamingSession(seed_hin, model)
    session.fit(solver=solver)
    return session


def _load_input(loader, path, what: str):
    """Load an input file, folding OS/parse errors into ValidationError."""
    try:
        return loader(path)
    except ValidationError:
        raise
    except Exception as exc:  # unreadable / truncated / not this format
        raise ValidationError(f"unreadable {what} {path}: {exc}") from exc


def run_stream_cli(args) -> int:
    """Back the ``python -m repro.experiments stream`` subcommand.

    Exit codes: 0 ok, :data:`EXIT_DIVERGED` (2) when the exactness
    check fails, :data:`EXIT_UNHEALTHY` (4) when any reconvergence
    surfaced a non-healthy chain, :data:`EXIT_UNREADABLE` (5) when a
    ``--journal`` / ``--hin`` input cannot be read.  Divergence outranks
    ill health: a wrong answer is worse than a slow one.
    """
    from repro.hin.io import load_hin, save_hin

    try:
        if args.hin:
            seed_hin = _load_input(load_hin, args.hin, "HIN archive")
            print(f"[seed graph: {args.hin} ({seed_hin.n_nodes} nodes)]")
        else:
            seed_hin = make_stream_seed_hin(scale=args.scale, seed=args.seed)
        if args.journal:
            log = _load_input(DeltaLog.load, args.journal, "delta journal")
            print(f"[journal: {args.journal} ({len(log)} deltas)]")
        else:
            log = synthetic_delta_log(
                seed_hin, args.deltas, batch_size=args.batch_size, seed=args.seed + 1
            )
    except ValidationError as exc:
        print(f"error: {exc}")
        return EXIT_UNREADABLE
    report = run_stream(
        scale=args.scale, seed=args.seed, seed_hin=seed_hin, log=log,
        solver=getattr(args, "solver", None),
    )
    print(report)
    if args.save_journal:
        print(f"[wrote journal -> {log.save(args.save_journal)}]")
    if args.save_hin:
        final = log.replay(seed_hin)
        print(f"[wrote final graph -> {save_hin(final, args.save_hin)}]")
    if not report.data["predictions_agree"]:
        return EXIT_DIVERGED
    if report.data["worst_health"] != "healthy":
        print(f"[unhealthy reconvergence: {report.data['worst_health']}]")
        return EXIT_UNHEALTHY
    return EXIT_OK
