"""ICA — the classic iterative classification algorithm [7].

Following the paper's setup, all link types are merged ("aggregated into
one type of link") and a base classifier is trained on content features
plus the aggregated neighbour-label distribution.  Prediction and
relational-feature recomputation alternate for a fixed number of rounds,
labeled nodes staying clamped to their true labels throughout.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    CollectiveClassifier,
    clamp_labeled,
    label_scores,
    neighbor_label_features,
    stack_features,
    symmetric_adjacency,
    training_pairs,
)
from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.ml.logistic import LogisticRegression
from repro.ml.svm import LinearSVM
from repro.utils.validation import check_positive_int

#: Base-classifier factories selectable by name.
BASE_CLASSIFIERS = {
    "logistic": lambda q: LogisticRegression(n_classes=q),
    "svm": lambda q: LinearSVM(n_classes=q),
}


class ICA(CollectiveClassifier):
    """Iterative classification over the merged-relation graph.

    Parameters
    ----------
    n_iterations:
        Number of predict/re-aggregate rounds after the content-only
        bootstrap.
    base:
        Base classifier: ``"logistic"`` (default) or ``"svm"``.
    """

    def __init__(self, *, n_iterations: int = 5, base: str = "logistic"):
        self.n_iterations = check_positive_int(n_iterations, "n_iterations")
        if base not in BASE_CLASSIFIERS:
            raise ValidationError(
                f"base must be one of {sorted(BASE_CLASSIFIERS)}, got {base!r}"
            )
        self.base = base

    def fit_predict(self, hin: HIN, rng=None) -> np.ndarray:
        """Run bootstrap + ICA rounds; return ``(n, q)`` scores."""
        del rng  # deterministic given the HIN
        scores, _ = label_scores(hin)
        adjacency = symmetric_adjacency(hin)
        content = hin.features
        train_rows, train_classes = training_pairs(hin)

        # Bootstrap on content only.
        clf = BASE_CLASSIFIERS[self.base](hin.n_labels)
        clf.fit(content[train_rows], train_classes)
        scores = clamp_labeled(clf.predict_proba(content), hin)

        for _ in range(self.n_iterations):
            relational = neighbor_label_features(adjacency, scores)
            combined = stack_features(content, relational)
            clf = BASE_CLASSIFIERS[self.base](hin.n_labels)
            clf.fit(combined[train_rows], train_classes)
            scores = clamp_labeled(clf.predict_proba(combined), hin)
        return scores
