"""EMR — ensemble of per-link-type relational classifiers [6].

Preisach & Schmidt-Thieme's ensemble trains one collective classifier per
link type (the paper uses ICA with an SVM base) and combines their
predictions by voting, deliberately ignoring differences between link
types.  On dense, class-aligned relations this wastes information
(T-Mark wins); on very sparse relations — the Movies dataset — averaging
many weak per-relation views is robust, which is exactly the crossover
Table 4 reports.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    CollectiveClassifier,
    clamp_labeled,
    label_scores,
    neighbor_label_features,
    stack_features,
    training_pairs,
)
from repro.baselines.ica import BASE_CLASSIFIERS
from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.utils.validation import check_positive_int


class EMR(CollectiveClassifier):
    """Ensemble of single-relation ICA classifiers, soft-vote combined.

    Parameters
    ----------
    n_iterations:
        ICA rounds inside each per-relation member.
    base:
        Base classifier for the members; the paper uses SVM.
    vote:
        ``"soft"`` averages member probabilities, ``"hard"`` counts
        member argmax votes.
    svm_c:
        Margin hardness of the member SVMs (only used with
        ``base="svm"``); member SVMs see sparse bag-of-words features
        and benefit from harder margins than the library default.
    """

    def __init__(
        self,
        *,
        n_iterations: int = 3,
        base: str = "svm",
        vote: str = "soft",
        svm_c: float = 10.0,
    ):
        self.n_iterations = check_positive_int(n_iterations, "n_iterations")
        if base not in BASE_CLASSIFIERS:
            raise ValidationError(
                f"base must be one of {sorted(BASE_CLASSIFIERS)}, got {base!r}"
            )
        if vote not in ("soft", "hard"):
            raise ValidationError(f"vote must be 'soft' or 'hard', got {vote!r}")
        if svm_c <= 0:
            raise ValidationError(f"svm_c must be positive, got {svm_c}")
        self.base = base
        self.vote = vote
        self.svm_c = float(svm_c)

    def _make_base(self, n_labels: int):
        if self.base == "svm":
            from repro.ml.svm import LinearSVM

            return LinearSVM(n_classes=n_labels, c=self.svm_c)
        return BASE_CLASSIFIERS[self.base](n_labels)

    def _member_scores(self, hin: HIN, relation: int) -> np.ndarray:
        """One ICA member restricted to a single link type."""
        adjacency = hin.tensor.relation_slice(relation)
        adjacency = (adjacency + adjacency.T).tocsr()
        content = hin.features
        train_rows, train_classes = training_pairs(hin)

        clf = self._make_base(hin.n_labels)
        clf.fit(content[train_rows], train_classes)
        scores = clamp_labeled(clf.predict_proba(content), hin)
        for _ in range(self.n_iterations):
            relational = neighbor_label_features(adjacency, scores)
            combined = stack_features(content, relational)
            clf = self._make_base(hin.n_labels)
            clf.fit(combined[train_rows], train_classes)
            scores = clamp_labeled(clf.predict_proba(combined), hin)
        return scores

    def fit_predict(self, hin: HIN, rng=None) -> np.ndarray:
        """Train one member per non-empty relation and vote."""
        del rng  # deterministic given the HIN
        label_scores(hin)  # validates that supervision exists
        i, j, k = hin.tensor.coords
        del i, j
        active = [rel for rel in range(hin.n_relations) if np.any(k == rel)]
        if not active:
            raise ValidationError("EMR needs at least one relation with links")
        members = [self._member_scores(hin, rel) for rel in active]
        if self.vote == "soft":
            return np.mean(members, axis=0)
        votes = np.zeros((hin.n_nodes, hin.n_labels))
        for member in members:
            winners = np.argmax(member, axis=1)
            votes[np.arange(hin.n_nodes), winners] += 1.0
        return votes / len(members)
