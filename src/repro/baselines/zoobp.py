"""ZooBP-style linearised belief propagation [15].

Eswaran et al.'s ZooBP approximates loopy belief propagation on
heterogeneous graphs by a *linear* system over residual beliefs (beliefs
minus the uninformative uniform):

.. math::

    B = E + \\epsilon \\sum_k H\\, (A_k + A_k^T)\\, B

where ``E`` holds the residual priors of the labeled nodes, ``H`` is the
(homophily) coupling matrix — here the centering matrix
``I - (1/q) 11^T`` scaled per relation — and ``epsilon`` a small
interaction strength that guarantees convergence of the Jacobi
iteration.  Projected onto our one-node-type HIN it becomes a clean,
convergent relative of wvRN that (unlike wvRN) can carry *per-relation*
coupling strengths; by default all relations couple equally, matching
the paper's characterisation of the baselines T-Mark improves on.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import CollectiveClassifier, label_scores
from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.utils.validation import check_positive_int


class ZooBP(CollectiveClassifier):
    """Linearised belief propagation over typed links.

    Parameters
    ----------
    interaction_strength:
        The ``epsilon`` of the linear system.  Internally rescaled by
        the maximum node degree so the Jacobi iteration is a contraction
        for any input graph.
    n_iterations:
        Jacobi sweeps.
    relation_strengths:
        Optional per-relation coupling multipliers in [0, 1] (length
        ``m``); ``None`` couples all relations equally.
    """

    def __init__(
        self,
        *,
        interaction_strength: float = 0.5,
        n_iterations: int = 50,
        relation_strengths=None,
    ):
        if not 0 < interaction_strength <= 1:
            raise ValidationError(
                f"interaction_strength must be in (0, 1], got {interaction_strength}"
            )
        self.interaction_strength = float(interaction_strength)
        self.n_iterations = check_positive_int(n_iterations, "n_iterations")
        self.relation_strengths = (
            None
            if relation_strengths is None
            else np.asarray(relation_strengths, dtype=float)
        )
        if self.relation_strengths is not None and (
            self.relation_strengths.ndim != 1
            or np.any(self.relation_strengths < 0)
            or np.any(self.relation_strengths > 1)
        ):
            raise ValidationError(
                "relation_strengths must be a 1-D array of values in [0, 1]"
            )

    def fit_predict(self, hin: HIN, rng=None) -> np.ndarray:
        """Solve the linear system by Jacobi iteration; return scores."""
        del rng  # deterministic
        scores, labeled = label_scores(hin)
        q = hin.n_labels
        strengths = self.relation_strengths
        if strengths is None:
            strengths = np.ones(hin.n_relations)
        elif strengths.size != hin.n_relations:
            raise ValidationError(
                f"relation_strengths has {strengths.size} entries, "
                f"expected {hin.n_relations}"
            )

        # Residual priors: labeled nodes only, centred around uniform.
        priors = np.zeros((hin.n_nodes, q))
        priors[labeled] = scores[labeled] - 1.0 / q

        # Weighted symmetric adjacency summed over relations.
        adjacency = None
        for k in range(hin.n_relations):
            if strengths[k] == 0:
                continue
            slice_k = hin.tensor.relation_slice(k)
            sym = (slice_k + slice_k.T) * strengths[k]
            adjacency = sym if adjacency is None else adjacency + sym
        if adjacency is None:
            raise ValidationError("all relation strengths are zero")
        adjacency = adjacency.tocsr()

        # Contraction-safe epsilon: eps * max_degree < 1.
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        max_degree = float(degrees.max()) if degrees.size else 0.0
        eps = self.interaction_strength / max(max_degree, 1.0)

        # Centering matrix H = I - (1/q) 11^T applied on the class axis.
        def couple(beliefs):
            return beliefs - beliefs.mean(axis=1, keepdims=True)

        beliefs = priors.copy()
        for _ in range(self.n_iterations):
            beliefs = priors + eps * couple(np.asarray(adjacency @ beliefs))
        # Back to probability-like scores for the common interface.
        result = beliefs + 1.0 / q
        result = np.clip(result, 0.0, None)
        totals = result.sum(axis=1, keepdims=True)
        result = np.where(totals > 0, result / np.where(totals > 0, totals, 1.0), 1.0 / q)
        return result
