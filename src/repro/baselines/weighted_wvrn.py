"""Homophily-weighted wvRN — a diagnostic competitor.

wvRN+RL treats every link type equally; T-Mark's central claim is that
*learning* per-relation weights is what pays.  This variant isolates the
claim: it estimates each relation's homophily on the training labels
(the fraction of its train-train links joining same-class nodes, shrunk
toward chance by a Beta prior) and weights the merged graph by the
estimated *excess* homophily before running standard relaxation
labelling.  If relation weighting is the secret sauce, this method
should land between plain wvRN and T-Mark — which is exactly what the
``bench_ablation_relation_weighting`` bench checks.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import CollectiveClassifier, label_scores
from repro.baselines.wvrn import WvRNRL
from repro.hin.graph import HIN
from repro.utils.validation import check_positive_int


def estimate_relation_weights(
    hin: HIN, *, prior_strength: float = 4.0
) -> np.ndarray:
    """Per-relation excess homophily estimated from training labels.

    For relation ``k`` with ``s`` same-class and ``d`` different-class
    links among *labeled* node pairs, the homophily estimate is the
    posterior mean ``(s + a·c) / (s + d + a)`` with chance rate
    ``c = 1/q`` and prior strength ``a``; the returned weight is the
    positive part of ``estimate - c`` scaled to [0, 1].  Relations with
    no labeled links get weight 0 (nothing learned, nothing trusted).
    """
    labels = hin.label_matrix
    labeled = labels.any(axis=1)
    chance = 1.0 / hin.n_labels
    i, j, k = hin.tensor.coords
    weights = np.zeros(hin.n_relations)
    for rel in range(hin.n_relations):
        mask = k == rel
        src, dst = j[mask], i[mask]
        both = labeled[src] & labeled[dst]
        if not np.any(both):
            continue
        same = (labels[src[both]] & labels[dst[both]]).any(axis=1)
        s = float(same.sum())
        total = float(both.sum())
        estimate = (s + prior_strength * chance) / (total + prior_strength)
        weights[rel] = max(estimate - chance, 0.0) / (1.0 - chance)
    return weights


class WeightedWvRN(CollectiveClassifier):
    """Relaxation labelling over a homophily-weighted merged graph.

    Parameters
    ----------
    n_iterations, initial_step, decay, content_top_k:
        Forwarded to the underlying :class:`WvRNRL` mechanics.
    prior_strength:
        Shrinkage of the per-relation homophily estimates.
    floor:
        Minimum weight given to every relation (0 drops unhelpful
        relations entirely; a small floor keeps the graph connected).
    """

    def __init__(
        self,
        *,
        n_iterations: int = 50,
        initial_step: float = 1.0,
        decay: float = 0.95,
        content_top_k: int = 10,
        prior_strength: float = 4.0,
        floor: float = 0.02,
    ):
        self.n_iterations = check_positive_int(n_iterations, "n_iterations")
        self._wvrn = WvRNRL(
            n_iterations=n_iterations,
            initial_step=initial_step,
            decay=decay,
            content_top_k=content_top_k,
        )
        if prior_strength < 0:
            raise ValueError(f"prior_strength must be >= 0, got {prior_strength}")
        if not 0 <= floor <= 1:
            raise ValueError(f"floor must be in [0, 1], got {floor}")
        self.prior_strength = float(prior_strength)
        self.floor = float(floor)

    def fit_predict(self, hin: HIN, rng=None) -> np.ndarray:
        """Estimate relation weights, reweight the tensor, run wvRN."""
        label_scores(hin)  # validates supervision exists
        weights = estimate_relation_weights(hin, prior_strength=self.prior_strength)
        weights = np.maximum(weights, self.floor)
        # Rebuild the tensor with per-relation weights baked into the
        # link weights, then reuse the plain wvRN mechanics.
        from repro.tensor.sptensor import SparseTensor3

        i, j, k = hin.tensor.coords
        values = hin.tensor.values * weights[k]
        reweighted = SparseTensor3(i, j, k, values, shape=hin.tensor.shape)
        weighted_hin = HIN(
            reweighted,
            hin.relation_names,
            hin.features,
            hin.label_matrix,
            hin.label_names,
            node_names=hin.node_names,
            multilabel=hin.multilabel,
            metadata=hin.metadata,
        )
        return self._wvrn.fit_predict(weighted_hin, rng=rng)
