"""The paper's comparison methods (section 6), implemented from scratch.

Every baseline follows one transductive interface:
``fit_predict(hin, rng=None) -> (n, q) score matrix`` where ``hin`` carries
labels only on its training nodes.  The harness turns scores into
single-label predictions (argmax) or multi-label ones (prior matching).

* :class:`~repro.baselines.ica.ICA` — iterative classification with all
  link types merged into one [7].
* :class:`~repro.baselines.hcc.Hcc` — meta-path based collective
  classification: per-link-type label aggregates as features [3].
* :class:`~repro.baselines.hcc.HccSS` — Hcc with a semiICA self-training
  loop [8].
* :class:`~repro.baselines.wvrn.WvRNRL` — weighted-vote relational
  neighbour with relaxation labelling, content mapped to an extra
  similarity relation [37].
* :class:`~repro.baselines.emr.EMR` — ensemble of per-link-type
  relational classifiers with SVM bases [6].
* :class:`~repro.baselines.highway.HighwayNetwork` — gated deep net on
  content features [38].
* :class:`~repro.baselines.graph_inception.GraphInception` — multi-hop
  per-relation graph convolution features + neural head [39].
"""

from repro.baselines.base import CollectiveClassifier, clamp_labeled, training_pairs
from repro.baselines.emr import EMR
from repro.baselines.gnetmine import GNetMine
from repro.baselines.graph_inception import GraphInception
from repro.baselines.hcc import Hcc, HccSS
from repro.baselines.highway import HighwayNetwork
from repro.baselines.ica import ICA
from repro.baselines.rankclass import RankClass
from repro.baselines.weighted_wvrn import WeightedWvRN, estimate_relation_weights
from repro.baselines.wvrn import WvRNRL
from repro.baselines.zoobp import ZooBP

__all__ = [
    "CollectiveClassifier",
    "clamp_labeled",
    "training_pairs",
    "ICA",
    "Hcc",
    "HccSS",
    "WvRNRL",
    "WeightedWvRN",
    "estimate_relation_weights",
    "ZooBP",
    "GNetMine",
    "RankClass",
    "EMR",
    "HighwayNetwork",
    "GraphInception",
]
