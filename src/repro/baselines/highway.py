"""Highway Network baseline [38].

A feed-forward classifier on standardised content features whose hidden
stack is made of highway (gated) layers.  It sees no relational
information at all — in the paper's tables it serves as the "deep model
on attributes" reference point, strong on Movies (where links are weak)
and clearly behind the collective methods on DBLP/ACM.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import CollectiveClassifier, clamp_labeled, training_pairs
from repro.hin.graph import HIN
from repro.ml.mlp import DenseLayer, HighwayLayer, MLPClassifier
from repro.ml.preprocess import standardize
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


class HighwayNetwork(CollectiveClassifier):
    """Deep highway classifier on content features.

    Parameters
    ----------
    hidden_size:
        Width of the highway stack.
    n_highway_layers:
        Number of gated layers.
    epochs, lr, l2:
        Training schedule forwarded to
        :class:`~repro.ml.mlp.MLPClassifier`.
    """

    def __init__(
        self,
        *,
        hidden_size: int = 64,
        n_highway_layers: int = 2,
        epochs: int = 150,
        lr: float = 1e-2,
        l2: float = 1e-4,
    ):
        self.hidden_size = check_positive_int(hidden_size, "hidden_size")
        self.n_highway_layers = check_positive_int(n_highway_layers, "n_highway_layers")
        self.epochs = check_positive_int(epochs, "epochs")
        self.lr = float(lr)
        self.l2 = float(l2)

    def fit_predict(self, hin: HIN, rng=None) -> np.ndarray:
        """Train on labeled nodes' features; score every node."""
        rng = ensure_rng(rng)
        features = standardize(hin.features)
        train_rows, train_classes = training_pairs(hin)
        layers = [
            DenseLayer(features.shape[1], self.hidden_size, activation="relu", rng=rng)
        ]
        for _ in range(self.n_highway_layers):
            layers.append(HighwayLayer(self.hidden_size, rng=rng))
        layers.append(
            DenseLayer(self.hidden_size, hin.n_labels, activation="linear", rng=rng)
        )
        model = MLPClassifier(
            layers,
            hin.n_labels,
            epochs=self.epochs,
            lr=self.lr,
            l2=self.l2,
            rng=rng,
        )
        model.fit(features[train_rows], train_classes)
        return clamp_labeled(model.predict_proba(features), hin)
