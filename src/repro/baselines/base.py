"""Shared machinery for the baseline collective classifiers.

Defines the abstract transductive interface plus the relational-feature
helpers (neighbour label aggregation, label clamping, multi-label
training-pair expansion) every iterative baseline relies on.
"""

from __future__ import annotations

import abc

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.hin.graph import HIN


class CollectiveClassifier(abc.ABC):
    """Abstract transductive classifier over a HIN.

    Implementations read supervision from ``hin.label_matrix`` (labeled
    rows = training set) and return scores for *all* nodes.
    """

    @abc.abstractmethod
    def fit_predict(self, hin: HIN, rng=None) -> np.ndarray:
        """Return an ``(n, q)`` non-negative class-score matrix."""

    @property
    def name(self) -> str:
        """Display name used in experiment tables."""
        return type(self).__name__


def label_scores(hin: HIN) -> tuple[np.ndarray, np.ndarray]:
    """Initial score matrix and labeled mask from a HIN's supervision.

    Labeled nodes get their label rows normalised to sum to one (a node
    with two labels contributes half to each); unlabeled nodes get the
    labeled-set class prior — the standard wvRN initialisation, also a
    sensible bootstrap for the iterative methods.
    """
    labels = hin.label_matrix.astype(float)
    labeled = hin.labeled_mask
    if not np.any(labeled):
        raise ValidationError("the HIN has no labeled nodes to learn from")
    scores = np.empty((hin.n_nodes, hin.n_labels))
    row_sums = labels[labeled].sum(axis=1, keepdims=True)
    scores[labeled] = labels[labeled] / row_sums
    prior = labels[labeled].sum(axis=0)
    prior_total = prior.sum()
    prior = prior / prior_total if prior_total else np.full(hin.n_labels, 1.0 / hin.n_labels)
    scores[~labeled] = prior
    return scores, labeled


def clamp_labeled(scores: np.ndarray, hin: HIN) -> np.ndarray:
    """Overwrite labeled rows of ``scores`` with their true (normalised) labels."""
    result = np.asarray(scores, dtype=float).copy()
    labeled = hin.labeled_mask
    labels = hin.label_matrix.astype(float)
    row_sums = labels[labeled].sum(axis=1, keepdims=True)
    result[labeled] = labels[labeled] / row_sums
    return result


def training_pairs(hin: HIN) -> tuple[np.ndarray, np.ndarray]:
    """Expand the labeled nodes into ``(row_index, class_index)`` pairs.

    Single-label nodes appear once; a multi-label node appears once per
    label (the standard one-example-per-label reduction, so the same
    single-label base classifiers serve the ACM experiments).
    """
    rows, cols = np.nonzero(hin.label_matrix)
    if rows.size == 0:
        raise ValidationError("the HIN has no labeled nodes to learn from")
    return rows, cols


def symmetric_adjacency(hin: HIN, relation: int | None = None) -> sp.csr_matrix:
    """Symmetrised adjacency: one relation's slice or all merged.

    Neighbour aggregation should see a link regardless of its stored
    direction, hence ``A + A^T`` (weights added, duplicates merged).
    """
    if relation is None:
        adj = hin.tensor.aggregate_relations()
    else:
        adj = hin.tensor.relation_slice(relation)
    return (adj + adj.T).tocsr()


def neighbor_label_features(adjacency: sp.spmatrix, scores: np.ndarray) -> np.ndarray:
    """Row-normalised neighbour label distribution per node.

    ``result[u]`` is the weighted mean of ``scores`` over ``u``'s
    neighbours; isolated nodes get all-zero rows (no neighbourhood
    evidence).  This is the aggregation operator of ICA/Hcc [3], [7].
    """
    scores = np.asarray(scores, dtype=float)
    agg = np.asarray(adjacency @ scores)
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    safe = np.where(degrees > 0, degrees, 1.0)
    return agg / safe[:, None]


def stack_features(content, relational: np.ndarray):
    """Concatenate content features with relational aggregate features."""
    if sp.issparse(content):
        return sp.hstack([sp.csr_matrix(content), sp.csr_matrix(relational)]).tocsr()
    return np.hstack([np.asarray(content, dtype=float), relational])
