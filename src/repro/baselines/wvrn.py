"""wvRN+RL — weighted-vote relational neighbour with relaxation labelling.

Macskassy's wvRN [37] estimates a node's class distribution as the
weighted mean of its neighbours' estimates; relaxation labelling (RL)
updates all estimates simultaneously with an annealed step size.  As in
the paper's description, content is "transferred to the relationship
among nodes": a feature-similarity graph joins the explicit link types as
one extra relation, and all relations are merged with equal weight (the
method has no mechanism to weight them — exactly the deficiency T-Mark
targets).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import CollectiveClassifier, label_scores
from repro.core.features import cosine_similarity_matrix
from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.utils.validation import check_fraction, check_positive_int


class WvRNRL(CollectiveClassifier):
    """Weighted-vote relational neighbour + relaxation labelling.

    Parameters
    ----------
    n_iterations:
        Relaxation rounds.
    initial_step:
        Initial RL step size ``beta_0``; decayed geometrically.
    decay:
        Multiplicative step decay per round.
    content_top_k:
        Each node is linked to its ``content_top_k`` most similar nodes
        in the mined content relation (0 disables the content graph).
    """

    def __init__(
        self,
        *,
        n_iterations: int = 50,
        initial_step: float = 1.0,
        decay: float = 0.95,
        content_top_k: int = 10,
    ):
        self.n_iterations = check_positive_int(n_iterations, "n_iterations")
        self.initial_step = check_fraction(initial_step, "initial_step", inclusive_high=True)
        self.decay = check_fraction(decay, "decay")
        if content_top_k < 0:
            raise ValidationError(f"content_top_k must be >= 0, got {content_top_k}")
        self.content_top_k = int(content_top_k)

    def _content_graph(self, hin: HIN) -> sp.csr_matrix:
        """Mutual top-k cosine graph over node features."""
        sims = cosine_similarity_matrix(hin.features)
        np.fill_diagonal(sims, 0.0)
        n = hin.n_nodes
        k = min(self.content_top_k, n - 1)
        if k <= 0:
            return sp.csr_matrix((n, n))
        top = np.argpartition(-sims, k - 1, axis=1)[:, :k]
        rows = np.repeat(np.arange(n), k)
        cols = top.ravel()
        data = sims[rows, cols]
        keep = data > 0
        graph = sp.csr_matrix((data[keep], (rows[keep], cols[keep])), shape=(n, n))
        return (graph + graph.T).tocsr()

    def fit_predict(self, hin: HIN, rng=None) -> np.ndarray:
        """Run relaxation labelling; return ``(n, q)`` scores."""
        del rng  # deterministic given the HIN
        scores, labeled = label_scores(hin)
        adjacency = hin.tensor.aggregate_relations()
        weights = (adjacency + adjacency.T).tocsr()
        if self.content_top_k > 0:
            weights = (weights + self._content_graph(hin)).tocsr()
        degrees = np.asarray(weights.sum(axis=1)).ravel()
        safe = np.where(degrees > 0, degrees, 1.0)

        estimates = scores.copy()
        step = self.initial_step
        for _ in range(self.n_iterations):
            votes = np.asarray(weights @ estimates) / safe[:, None]
            isolated = degrees == 0
            if np.any(isolated):
                votes[isolated] = estimates[isolated]
            updated = step * votes + (1.0 - step) * estimates
            updated[labeled] = scores[labeled]
            estimates = updated
            step *= self.decay
        return estimates
