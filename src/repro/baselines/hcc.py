"""Hcc and Hcc-ss — meta-path based collective classification [3], [8].

Kong et al.'s Hcc treats each meta-path linkage as its own relation and
feeds the base classifier one neighbour-label aggregate *per link type*
(rather than ICA's single merged aggregate), letting the learner weight
link types via its trained coefficients.  Our HIN already projects
meta-paths onto typed node-node links, so every tensor slice is one
meta-path; callers can add composed paths with
:func:`repro.hin.metapath.with_metapath_relations` first.

Hcc-ss replaces the base learner with a semiICA-style self-training loop
[8]: after each round, the most confident unlabeled predictions join the
training set for the next round.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    CollectiveClassifier,
    clamp_labeled,
    label_scores,
    neighbor_label_features,
    stack_features,
    symmetric_adjacency,
    training_pairs,
)
from repro.baselines.ica import BASE_CLASSIFIERS
from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.utils.validation import check_fraction, check_positive_int


class Hcc(CollectiveClassifier):
    """Meta-path collective classification: per-relation label aggregates.

    Parameters
    ----------
    n_iterations:
        Predict / re-aggregate rounds after the content bootstrap.
    base:
        Base classifier: ``"logistic"`` (default) or ``"svm"``.
    """

    def __init__(self, *, n_iterations: int = 5, base: str = "logistic"):
        self.n_iterations = check_positive_int(n_iterations, "n_iterations")
        if base not in BASE_CLASSIFIERS:
            raise ValidationError(
                f"base must be one of {sorted(BASE_CLASSIFIERS)}, got {base!r}"
            )
        self.base = base

    def _relational_features(self, adjacencies, scores: np.ndarray) -> np.ndarray:
        blocks = [neighbor_label_features(adj, scores) for adj in adjacencies]
        return np.hstack(blocks)

    def fit_predict(self, hin: HIN, rng=None) -> np.ndarray:
        """Run bootstrap + Hcc rounds; return ``(n, q)`` scores."""
        del rng  # deterministic given the HIN
        scores, _ = label_scores(hin)
        adjacencies = [symmetric_adjacency(hin, k) for k in range(hin.n_relations)]
        content = hin.features
        train_rows, train_classes = training_pairs(hin)

        clf = BASE_CLASSIFIERS[self.base](hin.n_labels)
        clf.fit(content[train_rows], train_classes)
        scores = clamp_labeled(clf.predict_proba(content), hin)

        for _ in range(self.n_iterations):
            relational = self._relational_features(adjacencies, scores)
            combined = stack_features(content, relational)
            clf = BASE_CLASSIFIERS[self.base](hin.n_labels)
            clf.fit(combined[train_rows], train_classes)
            scores = clamp_labeled(clf.predict_proba(combined), hin)
        return scores


class HccSS(Hcc):
    """Hcc with semiICA self-training (the paper's Hcc-ss).

    Parameters
    ----------
    confidence_fraction:
        Fraction of unlabeled nodes promoted to pseudo-labels each round
        (the most confident ones).
    """

    def __init__(
        self,
        *,
        n_iterations: int = 5,
        base: str = "logistic",
        confidence_fraction: float = 0.1,
    ):
        super().__init__(n_iterations=n_iterations, base=base)
        self.confidence_fraction = check_fraction(
            confidence_fraction, "confidence_fraction", inclusive_high=True
        )

    def fit_predict(self, hin: HIN, rng=None) -> np.ndarray:
        """Run Hcc rounds with confident pseudo-labels joining training."""
        del rng  # deterministic given the HIN
        scores, labeled = label_scores(hin)
        adjacencies = [symmetric_adjacency(hin, k) for k in range(hin.n_relations)]
        content = hin.features
        base_rows, base_classes = training_pairs(hin)

        clf = BASE_CLASSIFIERS[self.base](hin.n_labels)
        clf.fit(content[base_rows], base_classes)
        scores = clamp_labeled(clf.predict_proba(content), hin)

        unlabeled = np.flatnonzero(~labeled)
        n_promote = int(round(self.confidence_fraction * unlabeled.size))
        for _ in range(self.n_iterations):
            relational = self._relational_features(adjacencies, scores)
            combined = stack_features(content, relational)
            rows, classes = base_rows, base_classes
            if n_promote > 0 and unlabeled.size:
                confidence = scores[unlabeled].max(axis=1)
                promoted = unlabeled[np.argsort(-confidence, kind="stable")[:n_promote]]
                rows = np.concatenate([base_rows, promoted])
                classes = np.concatenate(
                    [base_classes, np.argmax(scores[promoted], axis=1)]
                )
            clf = BASE_CLASSIFIERS[self.base](hin.n_labels)
            clf.fit(combined[rows], classes)
            scores = clamp_labeled(clf.predict_proba(combined), hin)
        return scores
