"""RankClass-style ranking-based classification (Ji et al. [16]).

RankClass maintains, per class, an authority ranking of nodes together
with class-conditional relation weights, alternating between (a) ranking
nodes by a restart walk on the class's weighted graph and (b) raising
the weight of relations that concentrate the class's ranking mass.  The
paper discusses it directly ("assumed that the important node within
each class played more important roles for classification") and T-Mark
differs by using node features and a tensor stationary distribution.

This implementation keeps the alternation on the projected one-node-type
HIN:

1. per class ``c``, a personalised-PageRank vector ``x_c`` on the
   relation-weighted merged graph, restarting on the class's labeled
   nodes;
2. relation weights ``w_c[k]`` proportional to the ``x_c``-mass flowing
   over relation ``k``'s links (smoothed), renormalised each round.

Classification is argmax over the per-class ranking vectors — exactly
T-Mark's decision rule, which makes the two directly comparable.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import CollectiveClassifier, label_scores
from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.utils.validation import check_fraction, check_positive_int


class RankClass(CollectiveClassifier):
    """Per-class authority ranking with class-conditional relation weights.

    Parameters
    ----------
    restart:
        Restart probability toward the class's labeled nodes.
    n_rounds:
        Outer alternations between ranking and weight updates.
    n_walk_iterations:
        Power iterations per ranking step.
    smoothing:
        Additive smoothing on the relation-weight update.
    """

    def __init__(
        self,
        *,
        restart: float = 0.15,
        n_rounds: int = 3,
        n_walk_iterations: int = 30,
        smoothing: float = 0.1,
    ):
        self.restart = check_fraction(restart, "restart")
        self.n_rounds = check_positive_int(n_rounds, "n_rounds")
        self.n_walk_iterations = check_positive_int(
            n_walk_iterations, "n_walk_iterations"
        )
        if smoothing <= 0:
            raise ValidationError(f"smoothing must be positive, got {smoothing}")
        self.smoothing = float(smoothing)

    @staticmethod
    def _column_stochastic(matrix: sp.spmatrix) -> sp.csr_matrix:
        mat = sp.csc_matrix(matrix, dtype=float)
        col_sums = np.asarray(mat.sum(axis=0)).ravel()
        scale = np.where(col_sums > 0, 1.0 / np.where(col_sums > 0, col_sums, 1.0), 0.0)
        return (mat @ sp.diags(scale)).tocsr()

    def _rank(self, walk: sp.csr_matrix, seed_vector: np.ndarray) -> np.ndarray:
        x = seed_vector.copy()
        for _ in range(self.n_walk_iterations):
            x = (1.0 - self.restart) * np.asarray(walk @ x).ravel()
            # Leaked mass (dangling columns) returns to the seeds too.
            x = x + (1.0 - x.sum()) * seed_vector
        return x

    def fit_predict(self, hin: HIN, rng=None) -> np.ndarray:
        """Alternate ranking and relation-weight updates; return scores."""
        del rng  # deterministic
        label_scores(hin)  # validates supervision exists
        n, q, m = hin.n_nodes, hin.n_labels, hin.n_relations
        slices = []
        for k in range(m):
            slice_k = hin.tensor.relation_slice(k)
            slices.append((slice_k + slice_k.T).tocsr())

        scores = np.zeros((n, q))
        labels = hin.label_matrix
        for c in range(q):
            class_nodes = np.flatnonzero(labels[:, c])
            if class_nodes.size == 0:
                scores[:, c] = 1.0 / n
                continue
            seed_vector = np.zeros(n)
            seed_vector[class_nodes] = 1.0 / class_nodes.size
            weights = np.full(m, 1.0 / m)
            x = seed_vector
            for _ in range(self.n_rounds):
                merged = None
                for k in range(m):
                    if weights[k] == 0:
                        continue
                    term = slices[k] * weights[k]
                    merged = term if merged is None else merged + term
                walk = self._column_stochastic(merged)
                x = self._rank(walk, seed_vector)
                # Relation weights: x-mass flowing over each link type.
                mass = np.empty(m)
                for k in range(m):
                    mass[k] = float(x @ (slices[k] @ x))
                mass = mass + self.smoothing * mass.sum() / max(m, 1)
                total = mass.sum()
                weights = mass / total if total > 0 else np.full(m, 1.0 / m)
            scores[:, c] = x
        return scores
