"""Graph Inception baseline [39].

GraphInception learns "deep relational features" by mixing simple and
complex dependencies: per-relation graph convolutions at several hop
depths, concatenated inception-style, feeding a neural classifier head.
This reproduction:

1. projects content features to a compact basis with a truncated SVD
   (keeps the inception feature block tractable for many relations);
2. for every relation ``k`` and hop ``h`` computes
   ``(D_k^{-1} (A_k + A_k^T))^h  P`` where ``P`` is the projected content
   — the ``h``-hop convolution of relation ``k``;
3. concatenates ``[P, conv_{k,h} ...]`` and trains a one-hidden-layer
   neural head with softmax cross-entropy (manual backprop).

With scant labels the many-parameter head overfits, matching the paper's
observation that GI degrades (or is erratic) at low label fractions.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import CollectiveClassifier, clamp_labeled, training_pairs
from repro.hin.graph import HIN
from repro.ml.mlp import DenseLayer, MLPClassifier
from repro.ml.preprocess import standardize
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


class GraphInception(CollectiveClassifier):
    """Per-relation multi-hop graph convolution features + neural head.

    Parameters
    ----------
    n_components:
        Dimension of the SVD content projection.
    n_hops:
        Convolution depths per relation (1..n_hops).
    hidden_size, epochs, lr, l2:
        Neural head architecture and training schedule.
    """

    def __init__(
        self,
        *,
        n_components: int = 16,
        n_hops: int = 2,
        hidden_size: int = 32,
        epochs: int = 150,
        lr: float = 1e-2,
        l2: float = 1e-4,
    ):
        self.n_components = check_positive_int(n_components, "n_components")
        self.n_hops = check_positive_int(n_hops, "n_hops")
        self.hidden_size = check_positive_int(hidden_size, "hidden_size")
        self.epochs = check_positive_int(epochs, "epochs")
        self.lr = float(lr)
        self.l2 = float(l2)

    def _project_content(self, hin: HIN, rng) -> np.ndarray:
        """Truncated-SVD projection of the content features."""
        features = hin.features
        dense = features.toarray() if sp.issparse(features) else np.asarray(features, float)
        rank = min(self.n_components, min(dense.shape) - 1)
        if rank < 1:
            return standardize(dense)
        if sp.issparse(features) and min(features.shape) > rank + 1:
            u, s, _ = sp.linalg.svds(
                sp.csr_matrix(features, dtype=float),
                k=rank,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
        else:
            u_full, s_full, _ = np.linalg.svd(dense, full_matrices=False)
            u, s = u_full[:, :rank], s_full[:rank]
        return u * s

    def _inception_features(self, hin: HIN, projected: np.ndarray) -> np.ndarray:
        """Concatenate content with per-relation multi-hop convolutions."""
        blocks = [projected]
        for k in range(hin.n_relations):
            adj = hin.tensor.relation_slice(k)
            adj = (adj + adj.T).tocsr()
            degrees = np.asarray(adj.sum(axis=1)).ravel()
            scale = np.where(degrees > 0, 1.0 / np.where(degrees > 0, degrees, 1.0), 0.0)
            walk = sp.diags(scale) @ adj
            conv = projected
            for _ in range(self.n_hops):
                conv = np.asarray(walk @ conv)
                blocks.append(conv)
        return np.hstack(blocks)

    def fit_predict(self, hin: HIN, rng=None) -> np.ndarray:
        """Build inception features, train the head, score all nodes."""
        rng = ensure_rng(rng)
        projected = self._project_content(hin, rng)
        features = standardize(self._inception_features(hin, projected))
        train_rows, train_classes = training_pairs(hin)
        layers = [
            DenseLayer(features.shape[1], self.hidden_size, activation="relu", rng=rng),
            DenseLayer(self.hidden_size, hin.n_labels, activation="linear", rng=rng),
        ]
        model = MLPClassifier(
            layers,
            hin.n_labels,
            epochs=self.epochs,
            lr=self.lr,
            l2=self.l2,
            rng=rng,
        )
        model.fit(features[train_rows], train_classes)
        return clamp_labeled(model.predict_proba(features), hin)
