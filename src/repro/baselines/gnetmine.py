"""GNetMine-style graph-regularised transductive classification [35].

Ji et al.'s GNetMine — the method that introduced the paper's DBLP
four-area benchmark — minimises a graph-regularised objective: predicted
class scores should vary smoothly along every link type while staying
close to the known labels.  With symmetric degree normalisation
``S_k = D_k^{-1/2} (A_k + A_k^T) D_k^{-1/2}`` the minimiser is the fixed
point of

.. math::

    F \\leftarrow (1 - \\mu)\\, \\bar S F + \\mu Y, \\qquad
    \\bar S = \\sum_k \\lambda_k S_k \\Big/ \\sum_k \\lambda_k

— the classic learning-with-local-and-global-consistency iteration
extended to multiple link types with fixed importance weights
``lambda_k``.  Like ICA/EMR it has no mechanism to *learn* those weights
(they default to uniform), which is the gap T-Mark targets; passing
per-relation weights makes it a useful diagnostic competitor.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import CollectiveClassifier, label_scores
from repro.errors import ValidationError
from repro.hin.graph import HIN
from repro.utils.validation import check_fraction, check_positive_int


class GNetMine(CollectiveClassifier):
    """Graph-regularised transductive classifier over typed links.

    Parameters
    ----------
    mu:
        Label-fitting weight in (0, 1): larger keeps predictions closer
        to the seeds, smaller propagates further.
    n_iterations:
        Fixed-point sweeps (the iteration contracts at rate ``1 - mu``).
    relation_weights:
        Optional per-relation ``lambda_k`` (non-negative, length ``m``);
        uniform when omitted.
    """

    def __init__(
        self,
        *,
        mu: float = 0.2,
        n_iterations: int = 60,
        relation_weights=None,
    ):
        self.mu = check_fraction(mu, "mu")
        self.n_iterations = check_positive_int(n_iterations, "n_iterations")
        self.relation_weights = (
            None
            if relation_weights is None
            else np.asarray(relation_weights, dtype=float)
        )
        if self.relation_weights is not None and (
            self.relation_weights.ndim != 1 or np.any(self.relation_weights < 0)
        ):
            raise ValidationError(
                "relation_weights must be a 1-D non-negative array"
            )

    def _normalized_graph(self, hin: HIN) -> sp.csr_matrix:
        """The lambda-weighted mixture of symmetric-normalised slices."""
        weights = self.relation_weights
        if weights is None:
            weights = np.ones(hin.n_relations)
        elif weights.size != hin.n_relations:
            raise ValidationError(
                f"relation_weights has {weights.size} entries, "
                f"expected {hin.n_relations}"
            )
        total = weights.sum()
        if total <= 0:
            raise ValidationError("relation_weights must have positive mass")
        mixture = None
        for k in range(hin.n_relations):
            if weights[k] == 0:
                continue
            slice_k = hin.tensor.relation_slice(k)
            sym = (slice_k + slice_k.T).tocsr()
            degrees = np.asarray(sym.sum(axis=1)).ravel()
            inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(np.where(degrees > 0, degrees, 1.0)), 0.0)
            scaling = sp.diags(inv_sqrt)
            normalised = (scaling @ sym @ scaling) * (weights[k] / total)
            mixture = normalised if mixture is None else mixture + normalised
        return mixture.tocsr()

    def fit_predict(self, hin: HIN, rng=None) -> np.ndarray:
        """Iterate the consistency fixed point; return ``(n, q)`` scores."""
        del rng  # deterministic
        scores, labeled = label_scores(hin)
        seeds = np.zeros_like(scores)
        seeds[labeled] = scores[labeled]
        graph = self._normalized_graph(hin)

        current = seeds.copy()
        for _ in range(self.n_iterations):
            current = (1.0 - self.mu) * np.asarray(graph @ current) + self.mu * seeds
        # Normalise rows into probability-like scores; isolated unlabeled
        # nodes (all-zero rows) fall back to the training prior.
        totals = current.sum(axis=1, keepdims=True)
        prior = scores[labeled].mean(axis=0) if np.any(labeled) else None
        result = np.where(totals > 0, current / np.where(totals > 0, totals, 1.0), 0.0)
        zero_rows = (totals <= 0).ravel()
        if np.any(zero_rows) and prior is not None:
            result[zero_rows] = prior
        return result
