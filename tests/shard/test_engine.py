"""Tests for the sharded chain runner (repro.shard.engine).

The contract under test: ``shards=K`` buys wall-clock only — under the
rows policy the stationary scores are bit-identical to the serial fit
for *any* shard count (including warm starts and every gamma branch),
accelerated solvers stay argmax-identical, worker failures surface the
remote traceback as :class:`WorkerError` instead of hanging the fit, and
platforms without ``fork`` fall back to the serial path with a warning
and unchanged results.
"""

import os

import numpy as np
import pytest

from repro.core import TMark
from repro.datasets import make_worked_example
from repro.experiments.parallel import WorkerError, fork_available
from repro.obs import ListRecorder
from repro.shard import run_chains_sharded, shard_fallback_reason
from tests.conftest import small_labeled_hin

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="sharded fit requires the fork start method"
)


@pytest.fixture(scope="module")
def hin():
    return small_labeled_hin(seed=7, n=30, q=3)


def fitted(hin, *, gamma=0.4, top_k=None, solver=None, **fit_kwargs):
    model = TMark(alpha=0.8, gamma=gamma, similarity_top_k=top_k, max_iter=80)
    model.fit(hin, solver=solver, **fit_kwargs)
    return model


def assert_same_scores(serial, sharded):
    assert np.array_equal(
        serial.result_.node_scores, sharded.result_.node_scores
    )
    assert np.array_equal(
        serial.result_.relation_scores, sharded.result_.relation_scores
    )
    assert [h.n_iterations for h in serial.result_.histories] == [
        h.n_iterations for h in sharded.result_.histories
    ]


class TestBitIdentity:
    @pytest.mark.parametrize("shards", [2, 3])
    @pytest.mark.parametrize(
        "gamma,top_k",
        [(0.0, None), (0.4, None), (0.4, 5)],
        ids=["no-walk", "dense-walk", "sparse-walk"],
    )
    def test_scores_identical(self, hin, shards, gamma, top_k):
        serial = fitted(hin, gamma=gamma, top_k=top_k)
        sharded = fitted(
            hin, gamma=gamma, top_k=top_k, shards=shards, workers=2
        )
        assert_same_scores(serial, sharded)

    def test_single_shard_runs_serial(self, hin):
        # shards=1 short-circuits to the serial runner.
        assert_same_scores(fitted(hin), fitted(hin, shards=1))

    def test_warm_starts_identical(self, hin):
        cold = fitted(hin)
        starts = (cold.result_.node_scores, cold.result_.relation_scores)
        serial = fitted(hin, starts=starts)
        sharded = fitted(hin, starts=starts, shards=3, workers=2)
        assert_same_scores(serial, sharded)

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_worked_example(self, shards):
        hin = make_worked_example()
        serial = TMark(alpha=0.8, gamma=0.5).fit(hin)
        sharded = TMark(alpha=0.8, gamma=0.5).fit(hin, shards=shards)
        assert_same_scores(serial, sharded)
        assert np.array_equal(serial.predict(), sharded.predict())

    def test_direct_engine_single_shard(self, hin):
        # The engine itself (not the fit() shortcut) at K=1 is also exact.
        model = TMark(alpha=0.8, gamma=0.4, max_iter=80)
        operators = model_operators(hin, model)
        scores, relations, histories = run_chains_sharded(
            model, *operators, hin.label_matrix, shards=1, workers=1
        )
        serial = fitted(hin)
        assert np.array_equal(scores, serial.result_.node_scores)
        assert np.array_equal(relations, serial.result_.relation_scores)
        assert len(histories) == hin.n_labels


class TestSolvers:
    def test_anderson_argmax_identical(self, hin):
        serial = fitted(hin, solver="anderson")
        for shards in (2, 4):
            sharded = fitted(hin, solver="anderson", shards=shards, workers=2)
            assert np.array_equal(serial.predict(), sharded.predict())
            assert np.allclose(
                serial.result_.node_scores,
                sharded.result_.node_scores,
                atol=1e-8,
            )


class TestTelemetry:
    def test_shard_events(self, hin):
        recorder = ListRecorder()
        fitted(hin, shards=3, workers=2, recorder=recorder)
        dispatches = recorder.events_of("shard_dispatch")
        assert len(dispatches) >= 2
        assert {d["index"] for d in dispatches} == set(range(len(dispatches)))
        for dispatch in dispatches:
            assert dispatch["policy"] == "rows"
            assert 0 <= dispatch["start"] < dispatch["stop"] <= hin.n_nodes
            assert dispatch["worker"] < 2
        exchanges = recorder.events_of("boundary_exchange")
        iterations = max(
            e["t"] for e in recorder.events_of("chain_iteration")
        )
        assert len(exchanges) == iterations
        for exchange in exchanges:
            assert exchange["policy"] == "rows"
            assert exchange["bytes_exchanged"] > 0
            assert exchange["seconds"] >= 0.0
        spans = [
            e for e in recorder.events_of("span") if e["name"] == "shard_pool"
        ]
        assert len(spans) == 1
        assert recorder.counters["shard_dispatches"] == len(dispatches)
        assert recorder.counters["boundary_exchanges"] == len(exchanges)

    def test_serial_chain_events_preserved(self, hin):
        serial_rec, sharded_rec = ListRecorder(), ListRecorder()
        fitted(hin, recorder=serial_rec)
        fitted(hin, shards=2, workers=2, recorder=sharded_rec)
        for event in ("chain_iteration", "chain_class", "chain_health"):
            assert len(sharded_rec.events_of(event)) == len(
                serial_rec.events_of(event)
            )
        # Residual streams match exactly: same convergence trajectory.
        serial_residuals = [
            e["residual"] for e in serial_rec.events_of("chain_class")
        ]
        sharded_residuals = [
            e["residual"] for e in sharded_rec.events_of("chain_class")
        ]
        assert serial_residuals == sharded_residuals


class TestFallback:
    def test_no_fork_warns_and_matches_serial(self, hin, monkeypatch):
        import repro.shard.engine as engine

        monkeypatch.setattr(engine, "fork_available", lambda: False)
        assert shard_fallback_reason() is not None
        serial = fitted(hin)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            fallback = fitted(hin, shards=2, workers=2)
        assert_same_scores(serial, fallback)

    def test_nested_worker_warns_and_matches_serial(self, hin, monkeypatch):
        import repro.shard.engine as engine

        monkeypatch.setattr(engine, "in_worker", lambda: True)
        serial = fitted(hin)
        with pytest.warns(RuntimeWarning, match="inside a worker"):
            fallback = fitted(hin, shards=2, workers=2)
        assert_same_scores(serial, fallback)

    def test_no_fallback_reason_on_capable_platform(self):
        assert shard_fallback_reason() is None


class _ExplodingTensor:
    """Delegates to a real tensor, but raises in any forked child."""

    def __init__(self, inner):
        self._inner = inner
        self._parent_pid = os.getpid()

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def row_blocks(self, start, stop):
        if os.getpid() != self._parent_pid:
            raise RuntimeError("operator exploded in the worker")
        return self._inner.row_blocks(start, stop)


class TestFailurePropagation:
    def test_worker_exception_raises_workererror(self, hin):
        model = TMark(alpha=0.8, gamma=0.0, max_iter=80)
        o_tensor, r_tensor, w_matrix = model_operators(hin, model)
        with pytest.raises(WorkerError) as excinfo:
            run_chains_sharded(
                model,
                _ExplodingTensor(o_tensor),
                r_tensor,
                w_matrix,
                hin.label_matrix,
                shards=2,
                workers=2,
            )
        message = str(excinfo.value)
        assert "operator exploded in the worker" in message
        assert "remote traceback" in message
        assert "RuntimeError" in message


def model_operators(hin, model):
    """The ``(O, R, W)`` triple exactly as ``TMark.fit`` builds it."""
    from repro.core.features import feature_transition_matrix
    from repro.tensor.transition import build_transition_tensors

    o_tensor, r_tensor = build_transition_tensors(hin.tensor)
    w_matrix = feature_transition_matrix(
        hin.features,
        top_k=model.similarity_top_k,
        metric=model.similarity_metric,
    )
    return o_tensor, r_tensor, w_matrix
