"""Tests for shard planning (repro.shard.plan).

The contract under test: a plan covers the node axis with contiguous,
non-overlapping, non-empty ranges in index order; the halo of a rows
shard is exactly the out-of-range node set its operator blocks read; and
degenerate requests (more shards than nodes, unknown operator kinds)
degrade or fail loudly instead of producing broken partitions.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.features import feature_transition_matrix
from repro.errors import ValidationError
from repro.shard import SHARD_POLICIES, plan_shards
from repro.tensor.transition import build_transition_tensors
from tests.conftest import small_labeled_hin


@pytest.fixture(scope="module")
def operators():
    hin = small_labeled_hin(seed=3, n=40, q=3)
    o_tensor, r_tensor = build_transition_tensors(hin.tensor)
    w_dense = feature_transition_matrix(hin.features)
    w_sparse = feature_transition_matrix(hin.features, top_k=5)
    return o_tensor, r_tensor, w_dense, w_sparse


class TestRowsPolicy:
    def test_policies_constant(self):
        assert SHARD_POLICIES == ("rows", "columns")

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 7])
    def test_covers_node_axis_contiguously(self, operators, k):
        o_tensor, r_tensor, _, w_sparse = operators
        plan = plan_shards(o_tensor, r_tensor, w_sparse, k)
        assert plan.policy == "rows"
        assert plan.n == o_tensor.shape[0]
        assert 1 <= plan.n_shards <= k
        assert plan.boundaries[0] == 0
        assert plan.boundaries[-1] == plan.n
        for index, shard in enumerate(plan.shards):
            assert shard.index == index
            assert shard.start < shard.stop  # non-empty
            assert shard.stop == plan.boundaries[index + 1]
            assert shard.size == shard.stop - shard.start

    def test_more_shards_than_nodes_caps(self, operators):
        o_tensor, r_tensor, _, w_sparse = operators
        plan = plan_shards(o_tensor, r_tensor, w_sparse, 1000)
        assert plan.n_shards <= o_tensor.shape[0]
        assert plan.boundaries[-1] == plan.n

    def test_nnz_balance(self, operators):
        o_tensor, r_tensor, _, w_sparse = operators
        plan = plan_shards(o_tensor, r_tensor, w_sparse, 4)
        loads = [shard.nnz for shard in plan.shards]
        # Contiguous balanced-prefix splits cannot be perfect, but on a
        # near-uniform graph no shard should carry twice the mean load.
        assert max(loads) <= 2 * sum(loads) / len(loads)
        assert min(loads) > 0

    def test_halo_is_out_of_range_block_columns(self, operators):
        o_tensor, r_tensor, _, w_sparse = operators
        plan = plan_shards(o_tensor, r_tensor, w_sparse, 3)
        assert plan.halo_total == sum(s.halo_size for s in plan.shards)
        for shard in plan.shards:
            halo = shard.halo
            assert np.array_equal(halo, np.unique(halo))  # sorted, unique
            in_range = (halo >= shard.start) & (halo < shard.stop)
            assert not in_range.any()
            # Recompute the reference set from the raw blocks.
            columns = []
            for block in o_tensor.row_blocks(shard.start, shard.stop):
                columns.append(block.indices)
            for block in r_tensor.row_blocks(shard.start, shard.stop):
                columns.append(block.indices)
            columns.append(r_tensor.pair_rows(shard.start, shard.stop).indices)
            w_block = w_sparse.tocsr()[shard.start : shard.stop]
            columns.append(w_block.indices)
            reference = np.unique(np.concatenate(columns))
            reference = reference[
                (reference < shard.start) | (reference >= shard.stop)
            ]
            assert np.array_equal(halo, reference)

    def test_dense_w_halo_is_everything_else(self, operators):
        o_tensor, r_tensor, w_dense, _ = operators
        assert not sp.issparse(w_dense)
        plan = plan_shards(o_tensor, r_tensor, w_dense, 2)
        n = plan.n
        for shard in plan.shards:
            assert shard.halo_size == n - shard.size

    def test_no_w_shrinks_halo(self, operators):
        o_tensor, r_tensor, w_dense, _ = operators
        with_w = plan_shards(o_tensor, r_tensor, w_dense, 2)
        without = plan_shards(o_tensor, r_tensor, None, 2)
        assert without.halo_total <= with_w.halo_total


class TestValidation:
    def test_zero_shards_rejected(self, operators):
        o_tensor, r_tensor, _, w_sparse = operators
        with pytest.raises(ValidationError):
            plan_shards(o_tensor, r_tensor, w_sparse, 0)

    def test_unknown_operator_kind_rejected(self):
        class Mystery:
            shape = (4, 4, 2)

        with pytest.raises(ValidationError, match="neither row_blocks"):
            plan_shards(Mystery(), Mystery(), None, 2)
