"""End-to-end sharded fits: store-backed, streaming and CLI surfaces.

The contract under test: every entry point that grew a ``shards``
parameter — ``fit_from_store``, ``StreamingSession`` refits and the
``run example`` experiment — produces the same answer as its serial
twin.  Store-backed shards use the ``"columns"`` policy (chunk-aligned
partial products, argmax-identical); the in-memory surfaces stay
bit-identical.
"""

import numpy as np
import pytest

from repro.datasets import make_worked_example
from repro.datasets.synthetic import RelationSpec, make_synthetic_hin
from repro.experiments.parallel import fork_available
from repro.ooc import GraphStore, fit_from_store
from repro.ooc.build import build_chunked_operators
from repro.shard import plan_shards
from repro.stream import StreamingSession
from repro.stream.delta import GraphDelta

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="sharded fit requires the fork start method"
)


@pytest.fixture(scope="module")
def synthetic_hin():
    return make_synthetic_hin(
        48,
        ["a", "b", "c"],
        [
            RelationSpec("strong", n_links=150, homophily=0.9),
            RelationSpec("weak", n_links=60, homophily=0.6),
        ],
        seed=11,
    )


class TestColumnsPlan:
    def test_store_operators_get_column_policy(self, tmp_path, synthetic_hin):
        store = GraphStore.save(synthetic_hin, tmp_path / "store")
        operators = build_chunked_operators(
            store, chunk_size=8, build_w=False
        )
        plan = plan_shards(operators.o_tensor, operators.r_tensor, None, 3)
        assert plan.policy == "columns"
        assert plan.boundaries[0] == 0
        assert plan.boundaries[-1] == store.n_nodes
        for shard in plan.shards:
            assert shard.halo_size == 0  # columns consume the full iterate
        # Inner boundaries align to whole mmap chunks when possible.
        for boundary in plan.boundaries[1:-1]:
            assert boundary % 8 == 0


class TestStoreBackedFit:
    @pytest.mark.parametrize("gamma", [0.0, 0.4], ids=["no-walk", "walk"])
    def test_sharded_store_fit_matches_serial(
        self, tmp_path, synthetic_hin, gamma
    ):
        store = GraphStore.save(synthetic_hin, tmp_path / "store")
        serial = fit_from_store(
            store, alpha=0.8, gamma=gamma, chunk_size=8
        )
        sharded = fit_from_store(
            store, alpha=0.8, gamma=gamma, chunk_size=8, shards=2, workers=2
        )
        assert np.array_equal(serial.predict(), sharded.predict())
        assert np.allclose(
            serial.result_.node_scores,
            sharded.result_.node_scores,
            atol=1e-8,
        )
        assert np.allclose(
            serial.result_.relation_scores,
            sharded.result_.relation_scores,
            atol=1e-8,
        )

    def test_worked_example_store_fit(self, tmp_path):
        hin = make_worked_example()
        store = GraphStore.save(hin, tmp_path / "store")
        serial = fit_from_store(store, alpha=0.8, gamma=0.5, chunk_size=2)
        sharded = fit_from_store(
            store, alpha=0.8, gamma=0.5, chunk_size=2, shards=2
        )
        assert np.array_equal(serial.predict(), sharded.predict())


class TestStreaming:
    def test_reconverge_sharded_bit_identical(self):
        serial = StreamingSession(make_worked_example())
        sharded = StreamingSession(make_worked_example())
        serial.fit()
        sharded.fit(shards=2, workers=2)
        assert np.array_equal(
            serial.result.node_scores, sharded.result.node_scores
        )
        u_serial = serial.reconverge()
        u_sharded = sharded.reconverge(shards=2, workers=2)
        assert u_serial.iterations == u_sharded.iterations
        assert u_sharded.warm
        assert np.array_equal(
            serial.result.node_scores, sharded.result.node_scores
        )
        assert np.array_equal(
            serial.result.relation_scores, sharded.result.relation_scores
        )

    def test_apply_sharded_bit_identical(self):
        serial = StreamingSession(make_worked_example())
        sharded = StreamingSession(make_worked_example())
        serial.fit()
        sharded.fit()
        deltas = [GraphDelta.set_label("p2", ["DM"])]
        serial.apply(deltas)
        sharded.apply(deltas, shards=2, workers=2)
        assert np.array_equal(
            serial.result.node_scores, sharded.result.node_scores
        )


class TestExperimentSurface:
    def test_run_example_sharded_matches_serial(self):
        from repro.experiments.runners import run_example

        serial = run_example()
        sharded = run_example(shards=2)
        assert sharded.data["predicted"] == serial.data["predicted"]
        assert sharded.data["rankings"] == serial.data["rankings"]
        assert sharded.data["correct"] == serial.data["correct"]

    def test_run_example_sharded_store(self, tmp_path):
        from repro.experiments.runners import run_example

        serial = run_example()
        sharded = run_example(shards=2, store=str(tmp_path / "store"))
        assert sharded.data["predicted"] == serial.data["predicted"]
